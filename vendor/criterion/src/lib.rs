//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no network access, so this vendored crate
//! implements a minimal wall-clock harness behind the criterion API surface
//! the workspace's benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Throughput`], [`criterion_group!`] and
//! [`criterion_main!`]. Each benchmark warms up for `warm_up_time`, then
//! collects `sample_size` timed samples (each sample running as many
//! iterations as fit a slice of `measurement_time`) and prints
//! median / mean / min to stdout.
//!
//! No statistical analysis, HTML reports, or baseline comparison — for
//! publication-quality numbers swap the real criterion back in when
//! building online.

use std::fmt;
use std::time::{Duration, Instant};

/// A benchmark identifier, e.g. `cube/build` or `scalability/800`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying just a parameter (grouped benches).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { label: s.clone() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation (recorded, printed alongside the timing).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, measuring the
        // per-iteration cost to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1);

        // Each sample runs as many iterations as fit its share of the
        // measurement budget (at least one).
        let budget = self.measurement_time / self.sample_size.max(1) as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }
}

/// Prevents the optimizer from eliding a value (re-export of
/// `std::hint::black_box` for criterion API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Clone, Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, id.into(), None, self.settings, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            Some(&self.name),
            id.into(),
            self.throughput,
            self.settings,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            Some(&self.name),
            id.into(),
            self.throughput,
            self.settings,
            |b| f(b, input),
        );
        self
    }

    /// Closes the group (printing nothing extra; provided for API parity).
    pub fn finish(self) {}
}

fn run_one<F>(
    group: Option<&str>,
    id: BenchmarkId,
    throughput: Option<Throughput>,
    settings: Settings,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: settings.sample_size,
        warm_up_time: settings.warm_up_time,
        measurement_time: settings.measurement_time,
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label,
    };
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples — closure never called Bencher::iter)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  ({per_sec:.0} elem/s)")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  ({per_sec:.0} B/s)")
        }
        None => String::new(),
    };
    println!("{label:<48} median {median:>12?}  mean {mean:>12?}  min {min:>12?}{extra}");
}

/// Declares a benchmark group function (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = quick();
        c.bench_function("trivial", |b| b.iter(|| black_box(2 + 2)));
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = quick();
        let mut group = c.benchmark_group("group");
        group.sample_size(2);
        group.throughput(Throughput::Elements(4));
        group.bench_function("inner", |b| b.iter(|| black_box(1)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    criterion_group!(simple_group, noop_bench);

    criterion_group! {
        name = configured_group;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = noop_bench
    }

    fn noop_bench(_c: &mut Criterion) {
        // Keep test runtime tiny regardless of the group's defaults.
        let mut fast = quick();
        fast.bench_function("noop", |b| b.iter(|| black_box(0)));
    }

    #[test]
    fn group_macros_expand() {
        simple_group();
        configured_group();
    }
}
