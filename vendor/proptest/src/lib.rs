//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/proptest).
//!
//! The build environment has no network access, so this vendored crate
//! implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait over ranges, tuples, [`Just`] and the
//! [`collection`] combinators, the [`proptest!`]/[`prop_assert!`]/
//! [`prop_assert_eq!`] macros, and [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its seed and values but is
//!   not minimized,
//! * **deterministic seeding** — case `i` of test `name` always draws from
//!   `StdRng::seed_from_u64(fnv1a(name) ^ i)`, so failures reproduce
//!   without a persistence file.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to [`Strategy::generate`].
pub type TestRng = StdRng;

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A test-case failure raised by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's assertions did not hold.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy whose output feeds a function producing a second strategy
    /// (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// A strategy mapping generated values through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let intermediate = self.inner.generate(rng);
        (self.f)(intermediate).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size band for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.random_range(self.size.min..=self.size.max);
            let mut set = BTreeSet::new();
            // Collisions shrink the set; bound the retries so a small value
            // domain degrades to a smaller set instead of spinning.
            let mut attempts = 0;
            while set.len() < target && attempts < 100 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// A strategy for `BTreeSet`s with size in `size` and elements from
    /// `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Runs `config.cases` random cases of `case`, panicking (with the seed and
/// case number) on the first failure. Used by the [`proptest!`] expansion.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    for i in 0..config.cases {
        let seed = base ^ u64::from(i);
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(e) = case(&mut rng) {
            panic!("proptest `{name}` failed on case {i} (seed {seed}): {e}");
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The `proptest!` macro: wraps `fn name(pattern in strategy, …) { body }`
/// items into `#[test]` functions running [`run_cases`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal item muncher behind [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                #[allow(unused_mut)]
                let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(pair in (0u8..4, 1u8..5), xs in crate::collection::vec(0u32..100, 2..6)) {
            prop_assert!(pair.0 < 4 && (1..5).contains(&pair.1));
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_dependent_generation((n, k) in (2usize..10).prop_flat_map(|n| (Just(n), 0usize..n))) {
            prop_assert!(k < n, "k {} must stay below n {}", k, n);
        }

        #[test]
        fn btree_sets_have_bounded_size(s in crate::collection::btree_set(0usize..50, 1..5)) {
            prop_assert!(!s.is_empty() && s.len() < 5);
        }

        #[test]
        fn early_return_is_allowed(n in 0usize..10) {
            if n == 0 {
                return Ok(());
            }
            prop_assert!(n > 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        super::run_cases(&ProptestConfig::with_cases(8), "det", |rng| {
            first.push(Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        super::run_cases(&ProptestConfig::with_cases(8), "det", |rng| {
            second.push(Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "proptest `failing` failed")]
    fn failures_panic_with_context() {
        super::run_cases(&ProptestConfig::with_cases(4), "failing", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
