//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Provides the JSON text encoding for the vendored `serde` data model:
//! [`to_string`]/[`to_string_pretty`] on anything implementing
//! `serde::Serialize`, and [`from_str`] for anything implementing
//! `serde::Deserialize`. The parser is a strict recursive-descent JSON
//! reader (RFC 8259 grammar: no trailing commas, no comments, `\uXXXX`
//! escapes including surrogate pairs).

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serializes `value` into its document tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Reconstructs a `T` from a document tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(x) => write_number(*x, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, member)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(member, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        // serde's data model already maps non-finite to null; this is a
        // second line of defence for hand-built Value trees.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        // Integral and exactly representable: write without the ".0" so
        // counts and indices read as JSON integers.
        out.push_str(&format!("{}", x as i64));
    } else {
        // Rust's shortest round-trip float formatting is valid JSON.
        out.push_str(&format!("{x}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses JSON text into a document tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("number span is ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid code point"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.error("invalid code point"))?
                            };
                            out.push(c);
                            // hex4 advanced past the digits; compensate for
                            // the `self.pos += 1` after the match below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits starting at `self.pos`, advancing past them.
    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let span = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(span, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-12", "3.5", "1e3", "\"hi\""] {
            let v = parse(text).unwrap();
            let back = to_string(&v).unwrap();
            assert_eq!(parse(&back).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn integral_floats_print_without_decimal() {
        assert_eq!(to_string(&Value::Number(42.0)).unwrap(), "42");
        assert_eq!(to_string(&Value::Number(2.5)).unwrap(), "2.5");
        assert_eq!(to_string(&Value::Number(-3.0)).unwrap(), "-3");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":{"e":true}}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&to_string(&v).unwrap()).unwrap(), v);
        assert_eq!(parse(&to_string_pretty(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""line\nbreak \u0041 \"q\" \\ \u00e9""#).unwrap(),
            Value::String("line\nbreak A \"q\" \\ é".to_string())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::String("😀".to_string())
        );
        // Escaping round-trips.
        let tricky = "quote \" slash \\ tab \t newline \n unicode é";
        let encoded = to_string(&Value::String(tricky.to_string())).unwrap();
        assert_eq!(parse(&encoded).unwrap(), Value::String(tricky.to_string()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1],",
            "{\"a\":}",
            "nulll",
            "\"\\u12\"",
            "\"\\ud800x\"",
        ] {
            assert!(parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn typed_roundtrip_via_api() {
        let xs = vec![(1usize, 0.5f64), (2, 1.25)];
        let text = to_string(&xs).unwrap();
        let back: Vec<(usize, f64)> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
    }
}
