//! Offline stand-in for the [`serde`](https://serde.rs) framework.
//!
//! The build environment has no network access, so this vendored crate
//! provides the serialization contract the TSExplain workspace needs to
//! move requests and responses across a service boundary: a JSON-shaped
//! [`Value`] tree plus [`Serialize`]/[`Deserialize`] traits that convert to
//! and from it. The sibling `serde_json` stand-in supplies the actual text
//! encoding ([`serde_json::to_string`]/[`serde_json::from_str`]).
//!
//! Differences from real serde, by design:
//!
//! * no derive macros — the workspace hand-implements the traits for its
//!   response types (they are few and stable),
//! * the data model is a concrete tree ([`Value`]) rather than a visitor
//!   pair, which is all a JSON boundary requires,
//! * unrepresentable numbers (`NaN`, `±inf`) serialize as `null`, matching
//!   `serde_json`'s lossy default.
//!
//! [`serde_json::to_string`]: ../serde_json/fn.to_string.html
//! [`serde_json::from_str`]: ../serde_json/fn.from_str.html

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// A JSON-shaped document tree — the serialization data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`, like `serde_json`'s arbitrary
    /// precision off mode).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with deterministically ordered keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(pairs: I) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The member of an object by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if any.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// True for JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Deserializes a required object member, with a path-aware error.
    pub fn field<T: Deserialize>(&self, key: &str) -> Result<T, Error> {
        let member = self
            .get(key)
            .ok_or_else(|| Error::new(format!("missing field `{key}`")))?;
        T::deserialize(member).map_err(|e| e.contextualize(key))
    }

    /// A short name for the value's JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A serialization or deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Prefixes the error with the field it occurred under.
    pub fn contextualize(self, field: &str) -> Self {
        Error {
            message: format!("in field `{field}`: {}", self.message),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a document tree.
    fn serialize(&self) -> Value;
}

/// Conversion back from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a document tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::new(format!("expected boolean, got {}", value.type_name())))
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            Value::Number(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::new(format!("expected number, got {}", value.type_name())))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let x = value.as_f64().ok_or_else(|| {
                    Error::new(format!("expected number, got {}", value.type_name()))
                })?;
                if x.fract() != 0.0 {
                    return Err(Error::new(format!("expected integer, got {x}")));
                }
                if x < <$t>::MIN as f64 || x > <$t>::MAX as f64 {
                    return Err(Error::new(format!(
                        "integer {x} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(x as $t)
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new(format!("expected string, got {}", value.type_name())))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::new(format!("expected array, got {}", value.type_name())))?;
        items.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::deserialize(value).map(Some)
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b]) => Ok((A::deserialize(a)?, B::deserialize(b)?)),
            _ => Err(Error::new("expected a two-element array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let map = value
            .as_object()
            .ok_or_else(|| Error::new(format!("expected object, got {}", value.type_name())))?;
        map.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Duration {
    fn serialize(&self) -> Value {
        // Matches real serde's {secs, nanos} encoding of Duration.
        Value::object([
            ("secs", Value::Number(self.as_secs() as f64)),
            ("nanos", Value::Number(self.subsec_nanos() as f64)),
        ])
    }
}

impl Deserialize for Duration {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let secs: u64 = value.field("secs")?;
        let nanos: u32 = value.field("nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(u32::deserialize(&7u32.serialize()), Ok(7));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert!(f64::NAN.serialize().is_null());
        assert!(f64::INFINITY.serialize().is_null());
    }

    #[test]
    fn integers_reject_fractions_and_overflow() {
        assert!(u8::deserialize(&Value::Number(1.5)).is_err());
        assert!(u8::deserialize(&Value::Number(300.0)).is_err());
        assert!(u8::deserialize(&Value::Number(255.0)).is_ok());
        assert!(i64::deserialize(&Value::Number(-3.0)).is_ok());
        assert!(usize::deserialize(&Value::Number(-1.0)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()), Ok(v));
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::deserialize(&o.serialize()), Ok(None));
        let p = (4usize, 2.5f64);
        assert_eq!(<(usize, f64)>::deserialize(&p.serialize()), Ok(p));
    }

    #[test]
    fn duration_matches_serde_encoding() {
        let d = Duration::new(3, 250);
        let v = d.serialize();
        assert_eq!(v.get("secs").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("nanos").and_then(Value::as_f64), Some(250.0));
        assert_eq!(Duration::deserialize(&v), Ok(d));
    }

    #[test]
    fn field_errors_carry_context() {
        let v = Value::object([("k", Value::String("x".into()))]);
        let err = v.field::<u32>("k").unwrap_err();
        assert!(err.to_string().contains("`k`"));
        let err = v.field::<u32>("missing").unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }
}
