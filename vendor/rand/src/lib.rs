//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements exactly the deterministic subset of the rand 0.9 API that the
//! TSExplain workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`RngExt`] sampling helpers
//! (`random`, `random_range`, `random_bool`) and
//! [`seq::index::sample`]. Everything is pure Rust with no dependencies and
//! fully reproducible across platforms — which is all the seeded workload
//! generators require (see `tsexplain-datagen`'s DESIGN notes).
//!
//! It is **not** a cryptographic or statistically audited generator; the
//! core is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014), which passes the
//! moment checks the workspace's tests perform.

/// The low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Marker trait mirroring `rand::Rng`; every [`RngCore`] is an [`Rng`].
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// Extension methods for sampling typed values, mirroring the inherent
/// sampling API of `rand 0.9`'s `Rng`.
pub trait RngExt: Rng {
    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the type).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their "standard" distribution via [`RngExt::random`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64 + 1;
                // span == 0 only when the range covers the whole u64 domain.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = hi.wrapping_sub(lo) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f32 = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let u: f64 = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng` this makes **no** algorithm-
    /// stability disclaimers — the sequence for a given seed is part of the
    /// workspace's reproducibility contract (seeded dataset generators).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain reference implementation).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    /// Index sampling (mirrors `rand::seq::index`).
    pub mod index {
        use crate::Rng;

        /// A set of sampled indices (mirrors `rand::seq::index::IndexVec`).
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices in selection order.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> std::slice::Iter<'_, usize> {
                self.0.iter()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True when no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly,
        /// via a partial Fisher–Yates shuffle.
        ///
        /// # Panics
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (length - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.random_range(5i64..=9);
            assert!((5..=9).contains(&j));
            let f = rng.random_range(-2.0f64..4.5);
            assert!((-2.0..4.5).contains(&f));
        }
    }

    #[test]
    fn random_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let v = sample(&mut rng, 20, 7).into_vec();
            assert_eq!(v.len(), 7);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 7, "indices must be distinct");
            assert!(v.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn full_sample_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v = sample(&mut rng, 9, 9).into_vec();
        v.sort_unstable();
        assert_eq!(v, (0..9).collect::<Vec<_>>());
    }
}
