//! The §8 extensions end to end: streaming refresh vs. batch, and
//! seasonal decomposition feeding the explainer.

use tsexplain::{
    classical_decompose, AggQuery, Datum, ExplainRequest, ExplainSession, Field, Optimizations,
    Relation, Schema, StreamingExplainer,
};

fn schema() -> Schema {
    Schema::new(vec![
        Field::dimension("t"),
        Field::dimension("state"),
        Field::measure("v"),
    ])
    .unwrap()
}

/// Two-phase KPI rows: NY drives 0..15, CA drives 15..n.
fn rows_for(range: std::ops::Range<i64>) -> Vec<Vec<Datum>> {
    let mut rows = Vec::new();
    for t in range {
        let ny = if t <= 15 { 10.0 * t as f64 } else { 150.0 };
        let ca = if t <= 15 {
            5.0
        } else {
            5.0 + 12.0 * (t - 15) as f64
        };
        rows.push(vec![Datum::Attr(t.into()), "NY".into(), ny.into()]);
        rows.push(vec![Datum::Attr(t.into()), "CA".into(), ca.into()]);
    }
    rows
}

fn request() -> ExplainRequest {
    ExplainRequest::new(["state"]).with_optimizations(Optimizations::none())
}

#[test]
fn streaming_replay_matches_batch() {
    let mut batch = StreamingExplainer::new(request(), schema(), AggQuery::sum("t", "v")).unwrap();
    batch.append_rows(rows_for(0..30)).unwrap();
    let full = batch.refresh().unwrap();

    let mut live = StreamingExplainer::new(request(), schema(), AggQuery::sum("t", "v")).unwrap();
    for chunk in [0..10i64, 10..18, 18..25, 25..30] {
        live.append_rows(rows_for(chunk)).unwrap();
        live.refresh().unwrap();
    }
    let replayed = live.refresh().unwrap();
    assert_eq!(replayed.stats.n_points, 30);
    assert_eq!(replayed.segmentation.cuts(), full.segmentation.cuts());
    assert_eq!(
        replayed.segments[0].explanations[0].label,
        full.segments[0].explanations[0].label
    );
}

#[test]
fn streaming_keeps_top_explanations_current() {
    let mut live = StreamingExplainer::new(request(), schema(), AggQuery::sum("t", "v")).unwrap();
    live.append_rows(rows_for(0..12)).unwrap();
    let early = live.refresh().unwrap();
    // Only the NY phase is visible so far.
    assert!(early
        .segments
        .iter()
        .all(|s| s.explanations[0].label == "state=NY"));

    live.append_rows(rows_for(12..30)).unwrap();
    let later = live.refresh().unwrap();
    let last = later.segments.last().unwrap();
    assert_eq!(last.explanations[0].label, "state=CA");
}

#[test]
fn seasonal_trend_feeds_the_explainer() {
    // A seasonal KPI whose *trend* has a contributor change at t = 24:
    // decompose, rebuild a relation from the trend, explain it.
    let n = 48i64;
    let period = 6;
    let schema = schema();
    let mut b = Relation::builder(schema.clone());
    let mut aggregate = Vec::new();
    for t in 0..n {
        let season = 8.0 * ((t % period) as f64 / period as f64 * std::f64::consts::TAU).sin();
        let ny = if t <= 24 { 4.0 * t as f64 } else { 96.0 };
        let ca = if t <= 24 {
            2.0
        } else {
            2.0 + 6.0 * (t - 24) as f64
        };
        b.push_row(vec![
            Datum::Attr(t.into()),
            "NY".into(),
            (ny + season / 2.0).into(),
        ])
        .unwrap();
        b.push_row(vec![
            Datum::Attr(t.into()),
            "CA".into(),
            (ca + season / 2.0).into(),
        ])
        .unwrap();
        aggregate.push(ny + ca + season);
    }
    let relation = b.finish();
    let query = AggQuery::sum("t", "v");
    let ts = query.run(&relation).unwrap();
    for (a, b) in ts.values.iter().zip(&aggregate) {
        assert!((a - b).abs() < 1e-9);
    }

    // The seasonal component is recovered and periodic.
    let decomposition = classical_decompose(&ts.values, period as usize).unwrap();
    for t in 0..(n as usize - period as usize) {
        assert!(
            (decomposition.seasonal[t] - decomposition.seasonal[t + period as usize]).abs() < 1e-9
        );
    }

    // Explaining the raw (seasonal) series still finds the regime change,
    // because the explanation signal lives in the slices, not the shape.
    let mut session = ExplainSession::new(relation, query).unwrap();
    let result = session.explain(&request().with_fixed_k(2)).unwrap();
    let cut = result.segmentation.cuts()[0];
    assert!((22..=26).contains(&cut), "cut at {cut}");
}
