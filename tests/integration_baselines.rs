//! The paper's quality comparison (Fig. 10) in miniature: on the synthetic
//! corpus with the oracle K, explanation-aware TSExplain must beat the
//! explanation-agnostic shape baselines on average.

use tsexplain::{ExplainRequest, ExplainSession, Optimizations, Segmentation};
use tsexplain_baselines::{bottom_up, fluss, nnsegment};
use tsexplain_datagen::synthetic::{SyntheticConfig, SyntheticDataset};
use tsexplain_eval::distance_percent;

fn corpus(snr_db: f64, seeds: &[u64]) -> Vec<SyntheticDataset> {
    seeds
        .iter()
        .map(|&seed| {
            SyntheticDataset::generate(SyntheticConfig {
                snr_db: Some(snr_db),
                seed,
                ..SyntheticConfig::default()
            })
        })
        .collect()
}

fn tsexplain_cuts(dataset: &SyntheticDataset) -> Segmentation {
    let workload = dataset.workload();
    let mut session =
        ExplainSession::new(workload.relation.clone(), workload.query.clone()).unwrap();
    session
        .explain(
            &ExplainRequest::new(workload.explain_by.clone())
                .with_optimizations(Optimizations::none())
                .with_fixed_k(dataset.ground_truth_k()),
        )
        .unwrap()
        .segmentation
}

#[test]
fn tsexplain_beats_every_baseline_on_average() {
    // A mildly noisy corpus (Fig. 10's mid band): at very high SNR the
    // piecewise-linear aggregate lets Bottom-Up tie TSExplain at 0, and
    // under heavy noise all methods drift; 30 dB over ten seeds separates
    // the explanation-aware method from every shape-only baseline.
    let datasets = corpus(30.0, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    let mut ours = 0.0;
    let mut bu = 0.0;
    let mut fl = 0.0;
    let mut nn = 0.0;
    for dataset in &datasets {
        let n = dataset.config.n_points;
        let k = dataset.ground_truth_k();
        let gt = &dataset.ground_truth_cuts;
        let aggregate = dataset.aggregate();
        ours += distance_percent(&tsexplain_cuts(dataset), gt);
        bu += distance_percent(&Segmentation::new(n, bottom_up(&aggregate, k)).unwrap(), gt);
        fl += distance_percent(&Segmentation::new(n, fluss(&aggregate, k, 10)).unwrap(), gt);
        nn += distance_percent(
            &Segmentation::new(n, nnsegment(&aggregate, k, 10)).unwrap(),
            gt,
        );
    }
    let m = datasets.len() as f64;
    let (ours, bu, fl, nn) = (ours / m, bu / m, fl / m, nn / m);
    assert!(
        ours < bu && ours < fl && ours < nn,
        "TSExplain {ours:.2}% vs Bottom-Up {bu:.2}%, FLUSS {fl:.2}%, NNSegment {nn:.2}%"
    );
}

#[test]
fn baselines_produce_valid_schemes_on_all_workloads() {
    let datasets = corpus(20.0, &[5, 6]);
    for dataset in &datasets {
        let n = dataset.config.n_points;
        let k = dataset.ground_truth_k();
        let aggregate = dataset.aggregate();
        for (name, cuts) in [
            ("bottom-up", bottom_up(&aggregate, k)),
            ("fluss", fluss(&aggregate, k, 10)),
            ("nnsegment", nnsegment(&aggregate, k, 10)),
        ] {
            let scheme = Segmentation::new(n, cuts).unwrap_or_else(|e| {
                panic!("{name} produced an invalid scheme: {e}");
            });
            assert!(scheme.k() <= k, "{name} returned more segments than asked");
        }
    }
}

#[test]
fn explanation_agnostic_baselines_miss_compensating_contributors() {
    // Two categories that swap roles while the aggregate stays on one
    // straight line: shape baselines see nothing, TSExplain cuts at the
    // swap (the motivating failure mode of §1 / §3.2).
    use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};
    let n = 40i64;
    let schema = Schema::new(vec![
        Field::dimension("t"),
        Field::dimension("c"),
        Field::measure("v"),
    ])
    .unwrap();
    let mut b = Relation::builder(schema);
    for t in 0..n {
        // Aggregate is exactly 2t; before t=20 category x rises and y is
        // flat, afterwards they swap.
        let (x, y) = if t < 20 {
            (2.0 * t as f64, 0.0)
        } else {
            (40.0, 2.0 * (t - 20) as f64)
        };
        b.push_row(vec![Datum::Attr(t.into()), "x".into(), x.into()])
            .unwrap();
        b.push_row(vec![Datum::Attr(t.into()), "y".into(), y.into()])
            .unwrap();
    }
    let relation = b.finish();
    let query = AggQuery::sum("t", "v");

    // The aggregate is a straight line: Bottom-Up has no shape signal.
    let ts = query.run(&relation).unwrap();
    let bu_cuts = bottom_up(&ts.values, 2);
    // TSExplain cuts at the contributor swap.
    let mut session = ExplainSession::new(relation, query.clone()).unwrap();
    let ours = session
        .explain(
            &ExplainRequest::new(["c"])
                .with_optimizations(Optimizations::none())
                .with_fixed_k(2),
        )
        .unwrap();
    let our_cut = ours.segmentation.cuts()[0];
    assert!(
        (19..=21).contains(&our_cut),
        "TSExplain cut at {our_cut}, expected ~20 (baseline said {bu_cuts:?})"
    );
    let tops: Vec<&str> = ours
        .segments
        .iter()
        .map(|s| s.explanations[0].label.as_str())
        .collect();
    assert_eq!(tops, vec!["c=x", "c=y"]);
}
