//! End-to-end acceptance of admission control: a flooded server must
//! shed load with well-formed 429s (retry-after + x-request-id), stay
//! responsive while shedding, reap idle connections from accept time,
//! enforce per-tenant rate limits, and recover to 2xx once the flood
//! passes — instead of queueing unboundedly until clients give up.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use serde::{Serialize, Value};
use tsexplain::{AggQuery, Datum, ExplainRequest, Field, Schema};
use tsexplain_server::http::read_response;
use tsexplain_server::{Client, Server, ServerConfig};

/// A tiny dataset: enough to register a tenant and run real explains.
fn schema() -> Schema {
    Schema::new(vec![
        Field::dimension("t"),
        Field::dimension("state"),
        Field::measure("v"),
    ])
    .expect("schema")
}

fn rows(n: i64) -> Vec<Vec<Datum>> {
    (0..n)
        .flat_map(|t| {
            [("NY", 2.0 * t as f64), ("CA", 40.0 - t as f64)]
                .map(|(s, v)| vec![Datum::Attr(t.into()), Datum::from(s), Datum::from(v)])
        })
        .collect()
}

fn query() -> AggQuery {
    AggQuery::sum("t", "v")
}

/// Reads a JSON number out of the `/metrics` document's
/// `server.admission` block.
fn admission_stat(metrics: &Value, key: &str) -> f64 {
    metrics
        .get("server")
        .and_then(|s| s.get("admission"))
        .and_then(|a| a.get(key))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("metrics lack server.admission.{key}"))
}

/// A connection that has sent only a partial request: it is readable (so
/// the reactor dispatches it) but never completes, pinning the worker
/// that picks it up until the read timeout or a client-side close.
fn stalled_connection(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    (&stream)
        .write_all(b"POST /datasets HTT")
        .expect("partial write");
    stream
}

/// The overload drill from the issue: flood a 2-worker server past its
/// queue bound and assert it sheds — bounded queue, well-formed 429s,
/// accurate counters — then recovers to 2xx the moment the flood ends.
#[test]
fn queue_overflow_sheds_429_and_recovers() {
    let handle = Server::bind(ServerConfig {
        workers: 2,
        queue_depth: 2,
        max_conns: 64,
        // Generous: recovery in this test comes from closing the stalled
        // connections, not from waiting out the timeout.
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr();

    // Pin both workers on connections that never finish their request.
    let pinned: Vec<TcpStream> = (0..2).map(|_| stalled_connection(addr)).collect();
    std::thread::sleep(Duration::from_millis(200));
    // Fill both queue slots the same way.
    let queued: Vec<TcpStream> = (0..2).map(|_| stalled_connection(addr)).collect();
    std::thread::sleep(Duration::from_millis(200));

    // Workers pinned + queue full: every further readable connection must
    // be shed with a complete, well-formed 429 — the server answers
    // immediately instead of queueing the request behind a stalled pile.
    let floods = 6;
    for _ in 0..floods {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        (&stream)
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: tsx\r\n\r\n")
            .expect("write");
        let mut reader = BufReader::new(stream);
        let started = Instant::now();
        let response = read_response(&mut reader).expect("shed responses parse");
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "sheds must be immediate, took {:?}",
            started.elapsed()
        );
        assert_eq!(response.status, 429, "expected a shed");
        let retry: u64 = response
            .header("retry-after")
            .expect("429s carry retry-after")
            .parse()
            .expect("retry-after is whole seconds");
        assert!(retry >= 1);
        assert!(
            response.header("x-request-id").is_some(),
            "sheds are stamped like every other response"
        );
        let body: Value = serde_json::from_str(std::str::from_utf8(&response.body).expect("utf-8"))
            .expect("429 bodies are JSON");
        assert_eq!(
            body.get("kind").and_then(Value::as_str),
            Some("overloaded"),
            "queue sheds report kind=overloaded"
        );
        // Shed connections are closed after the response — as EOF, or as
        // a reset when the server discards the unread request bytes.
        let mut rest = Vec::new();
        let closed = reader.get_mut().read_to_end(&mut rest);
        assert!(
            matches!(closed, Ok(0) | Err(_)),
            "shed connections must close, read {} more bytes",
            rest.len()
        );
    }

    // End the flood: closing the stalled connections frees the workers
    // (EOF) and drains the queue.
    drop(pinned);
    drop(queued);
    std::thread::sleep(Duration::from_millis(300));

    // Recovery: plain requests answer 2xx again.
    let mut client = Client::new(addr);
    let healthz = client.raw("GET", "/healthz", None, &[]).expect("healthz");
    assert_eq!(healthz.status, 200, "server recovers after the flood");

    // The counters agree with what the wire saw.
    let metrics = client.metrics().expect("metrics");
    assert_eq!(admission_stat(&metrics, "shed") as u64, floods);
    assert_eq!(admission_stat(&metrics, "queue_depth") as u64, 0);
    assert_eq!(admission_stat(&metrics, "queue_capacity") as u64, 2);
    assert_eq!(admission_stat(&metrics, "max_connections") as u64, 64);
    let text = client.metrics_prometheus().expect("exposition");
    assert!(
        text.contains(&format!("tsx_shed_total {floods}")),
        "exposition must report the sheds: {text}"
    );
}

/// While workers are pinned but the queue still has room, requests wait
/// their turn and get answered — overload degrades to queueing before it
/// degrades to shedding, and `/healthz` keeps answering throughout.
#[test]
fn healthz_answers_while_workers_are_pinned() {
    let handle = Server::bind(ServerConfig {
        workers: 2,
        queue_depth: 4,
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr();
    let pinned: Vec<TcpStream> = (0..2).map(|_| stalled_connection(addr)).collect();
    std::thread::sleep(Duration::from_millis(150));

    // Queue depth 4, nothing else queued: healthz lands in the queue and
    // is answered as soon as a pinned worker times out (300ms).
    let mut client = Client::new(addr);
    let started = Instant::now();
    let healthz = client.raw("GET", "/healthz", None, &[]).expect("healthz");
    assert_eq!(healthz.status, 200);
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "healthz during the pile-up took {:?}",
        started.elapsed()
    );
    drop(pinned);
}

/// Per-tenant token buckets: a tenant over its rate gets 429
/// `throttled` with an honest retry-after; other tenants and tenant-less
/// routes are untouched; the tenant recovers after the advertised wait.
#[test]
fn tenant_rate_limits_throttle_and_recover() {
    let handle = Server::bind(ServerConfig {
        workers: 2,
        tenant_rps: 1.0,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::new(handle.local_addr());

    // Registration addresses no tenant — never throttled.
    let a = client
        .register(&schema(), &query(), &rows(30))
        .expect("register a");
    let b = client
        .register(&schema(), &query(), &rows(30))
        .expect("register b");

    // Burst = 1 token at 1 rps: the first explain passes, the immediate
    // second one throttles.
    let request = ExplainRequest::new(["state"]);
    client
        .explain(a.dataset_id, &request)
        .expect("first explain");
    let body = serde_json::to_string(&request.serialize()).expect("encode");
    let throttled = client
        .raw(
            "POST",
            &format!("/datasets/{}/explain", a.dataset_id),
            Some(&body),
            &[],
        )
        .expect("throttled response parses");
    assert_eq!(throttled.status, 429);
    let parsed: Value =
        serde_json::from_str(std::str::from_utf8(&throttled.body).expect("utf-8")).expect("json");
    assert_eq!(
        parsed.get("kind").and_then(Value::as_str),
        Some("throttled"),
        "tenant limits report kind=throttled, not overloaded"
    );
    let retry: u64 = throttled
        .header("retry-after")
        .expect("throttles carry retry-after")
        .parse()
        .expect("whole seconds");
    assert!(retry >= 1);
    assert!(throttled.header("x-request-id").is_some());

    // Tenant b has its own bucket; tenant-less routes are never billed.
    client
        .explain(b.dataset_id, &request)
        .expect("tenant b is unaffected");
    client.metrics().expect("metrics is not throttled");
    assert_eq!(
        client
            .raw("GET", "/healthz", None, &[])
            .expect("healthz")
            .status,
        200
    );

    // The counters line up, per tenant and in total.
    let metrics = client.metrics().expect("metrics");
    assert_eq!(admission_stat(&metrics, "throttled") as u64, 1);
    let text = client.metrics_prometheus().expect("exposition");
    assert!(text.contains("tsx_throttled_total 1"), "{text}");
    assert!(
        text.contains(&format!(
            "tsx_tenant_throttled_total{{tenant=\"{}\"}} 1",
            a.dataset_id
        )),
        "throttles are attributed to the tenant: {text}"
    );

    // Recovery: after the advertised wait the tenant is admitted again.
    std::thread::sleep(Duration::from_millis(1100));
    client
        .explain(a.dataset_id, &request)
        .expect("tenant a recovers after retry-after");
}

/// Idle connections are reaped on the reactor's clock, which starts at
/// accept — a connection that never sends a byte is closed after the
/// idle timeout even if no worker ever touched it.
#[test]
fn idle_connections_are_reaped_from_accept_time() {
    let handle = Server::bind(ServerConfig {
        workers: 1,
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    })
    .expect("bind");
    let idler = TcpStream::connect(handle.local_addr()).expect("connect");
    idler
        .set_read_timeout(Some(Duration::from_secs(3)))
        .expect("timeout");
    // Send nothing. The reactor must close this connection on its own.
    let mut buf = [0u8; 16];
    let started = Instant::now();
    let n = (&idler).read(&mut buf).expect("reaped close reads as EOF");
    assert_eq!(n, 0, "reap closes without writing anything");
    assert!(
        started.elapsed() >= Duration::from_millis(150),
        "reaped before the idle timeout: {:?}",
        started.elapsed()
    );
    let reaped = handle
        .shared()
        .metrics_value()
        .get("server")
        .and_then(|s| s.get("admission"))
        .and_then(|a| a.get("idle_reaped"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    assert!(reaped >= 1.0, "idle_reaped must count the reap");
}

/// Shutdown must not manufacture traffic: the old implementation
/// unblocked its accept loop with a no-op TCP connect, inflating
/// `tsx_connections_total` by one per shutdown.
#[test]
fn shutdown_does_not_inflate_connection_counts() {
    let mut handle = Server::bind(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::new(handle.local_addr());
    assert_eq!(
        client
            .raw("GET", "/healthz", None, &[])
            .expect("healthz")
            .status,
        200
    );
    drop(client);
    handle.shutdown();
    let connections = handle
        .shared()
        .metrics_value()
        .get("server")
        .and_then(|s| s.get("connections"))
        .and_then(Value::as_f64)
        .expect("connections counter");
    assert_eq!(
        connections as u64, 1,
        "shutdown must not count a phantom connection"
    );
}
