//! Scoring-scan regression guards for the columnar hot-path engine.
//!
//! Wall-clock assertions flake under CI noise; *call counts* do not. The
//! pipeline reports two deterministic counters per request — the logical
//! top-m workload (`stats.ca_calls`, memo- and thread-independent) and the
//! memo traffic (`latency.memo`) — and `ca_calls − memo.hits` is exactly
//! the number of centroid derivations performed under the default (Tse)
//! variance metric. This suite pins those counts for the `/compare`-shaped
//! auto-K fan-out on the liquor workload (Table 6's densest): a change
//! that quietly reintroduces redundant γ scans fails here, loudly, on any
//! machine.

use tsexplain::{
    ExplainRequest, ExplainResult, ExplainSession, Optimizations, SegmenterSpec, STRATEGIES,
};
use tsexplain_datagen::liquor;

/// Derivations actually performed: the logical workload minus what the
/// segment-cost memo served (one avoided derivation per hit under the
/// centroid metric the default request uses).
fn derivations(result: &ExplainResult) -> u64 {
    result.stats.ca_calls - result.latency.memo.hits
}

/// The auto-K `/compare` fan-out, in-process: one liquor request served
/// by all four strategies from one session (one shared cube), exactly
/// what the server route does per tenant.
fn compare_results() -> Vec<ExplainResult> {
    let workload = liquor::generate(0).workload();
    let mut session =
        ExplainSession::new(workload.relation.clone(), workload.query.clone()).unwrap();
    let base =
        ExplainRequest::new(workload.explain_by.clone()).with_optimizations(Optimizations::all());
    SegmenterSpec::all_for(128)
        .into_iter()
        .map(|spec| session.explain(&base.clone().with_segmenter(spec)).unwrap())
        .collect()
}

#[test]
fn auto_k_compare_on_liquor_stays_under_the_call_budget() {
    let results = compare_results();
    assert_eq!(results.len(), STRATEGIES.len());

    let mut total_logical = 0u64;
    let mut total_derived = 0u64;
    let mut total_hits = 0u64;
    for result in &results {
        total_logical += result.stats.ca_calls;
        total_derived += derivations(result);
        total_hits += result.latency.memo.hits;
        assert!(
            result.latency.memo.misses > 0,
            "{}: a priced request must record memo misses",
            result.strategy
        );
    }

    // The memo must be visibly working on this workload: the auto-K
    // sweeps of the shape strategies share most of their segments, and
    // the DP's final per-segment description re-prices matrix cells.
    assert!(
        total_hits > 0,
        "memo hits must be > 0 across the /compare fan-out"
    );
    assert!(
        total_derived < total_logical,
        "derived {total_derived} must be < logical {total_logical}"
    );

    // Pinned budgets (deterministic: counts, not wall-clock). Observed:
    // logical 3489 (dp 2727, bottom_up 330, nnsegment 243, fluss 189) and
    // derived 3011 — the memo serves 478 repeat pricings, over half of
    // every shape strategy's sweep. The small margin is headroom for
    // intentional workload-shape changes, not for scan regressions: a
    // reintroduced per-k re-pricing multiplies the counts well past it.
    const DERIVED_BUDGET: u64 = 3_100;
    const LOGICAL_BUDGET: u64 = 3_600;
    assert!(
        total_derived <= DERIVED_BUDGET,
        "derived top-m calls {total_derived} blew the {DERIVED_BUDGET} budget"
    );
    assert!(
        total_logical <= LOGICAL_BUDGET,
        "logical ca_calls {total_logical} blew the {LOGICAL_BUDGET} budget"
    );
}

#[test]
fn memo_counters_reach_the_serving_surface() {
    // The memo's effect must be readable from a result without touching
    // internals: hits + misses in the latency block, the unchanged
    // workload metric in stats.
    let results = compare_results();
    for result in &results {
        assert!(result.stats.ca_calls >= result.latency.memo.hits);
        assert!(derivations(result) > 0, "{}", result.strategy);
    }
    // At least the shape strategies' auto-K sweeps must hit (nested
    // proposals share segments across k).
    let shape_hits: u64 = results
        .iter()
        .filter(|r| r.strategy != "dp")
        .map(|r| r.latency.memo.hits)
        .sum();
    assert!(shape_hits > 0);
}
