//! End-to-end pipeline tests over the simulated real-world workloads:
//! relation → cube → Cascading Analysts → K-Segmentation → evolving
//! explanations, with the paper's narrative as the oracle.

use tsexplain::{ExplainRequest, ExplainSession, Optimizations};
use tsexplain_datagen::{covid, covid_deaths, sp500};

/// Registers a workload in a fresh serving session.
fn session_for(workload: &tsexplain_datagen::Workload) -> ExplainSession {
    ExplainSession::new(workload.relation.clone(), workload.query.clone()).unwrap()
}

/// Collects all explanation labels of segments overlapping `[lo, hi]`.
fn labels_in_range(result: &tsexplain::ExplainResult, lo: usize, hi: usize) -> Vec<String> {
    result
        .segments
        .iter()
        .filter(|s| s.start < hi && s.end > lo)
        .flat_map(|s| s.explanations.iter().map(|e| e.label.clone()))
        .collect()
}

#[test]
fn covid_total_narrative() {
    let data = covid::generate(0);
    let workload = data.total_workload();
    let mut session = session_for(&workload);
    let result = session
        .explain(
            &ExplainRequest::new(workload.explain_by.clone())
                .with_optimizations(Optimizations::all()),
        )
        .unwrap();

    // The paper reports K = 6 for this series; the elbow must land nearby.
    assert!(
        (4..=9).contains(&result.chosen_k),
        "chosen K = {}",
        result.chosen_k
    );
    assert_eq!(result.stats.epsilon, 58);
    assert_eq!(result.stats.n_points, 345);

    // Spring (≈ day 50..90): NY among the top explanations.
    let spring = labels_in_range(&result, 50, 90);
    assert!(
        spring.iter().any(|l| l == "state=NY"),
        "spring explanations {spring:?}"
    );
    // Winter (≈ day 320..345): CA among the top explanations.
    let winter = labels_in_range(&result, 320, 345);
    assert!(
        winter.iter().any(|l| l == "state=CA"),
        "winter explanations {winter:?}"
    );
}

#[test]
fn covid_daily_smoothed_pipeline_runs_interactively() {
    let data = covid::generate(0);
    let workload = data.daily_workload();
    let mut session = session_for(&workload);
    let result = session
        .explain(
            &ExplainRequest::new(workload.explain_by.clone())
                .with_optimizations(Optimizations::all())
                .with_smoothing(7),
        )
        .unwrap();
    assert!((4..=10).contains(&result.chosen_k));
    // Every segment of a K-segmentation is non-degenerate and labelled.
    for seg in &result.segments {
        assert!(seg.end > seg.start);
        assert!(!seg.explanations.is_empty(), "{} ~ {}", seg.start, seg.end);
        assert!(seg.explanations.len() <= 3);
    }
    // Neighbouring segments should not share an identical explanation list
    // — the failure mode the paper shows for the baselines (§7.4.1). Note
    // labels alone may repeat with flipped effects (Table 3: NY+ NJ+ then
    // NY− NJ−), so the comparison includes the effect.
    let lists: Vec<Vec<String>> = result
        .segments
        .iter()
        .map(|s| {
            s.explanations
                .iter()
                .map(|e| format!("{}{}", e.label, e.effect))
                .collect()
        })
        .collect();
    let identical_neighbours = lists.windows(2).filter(|w| w[0] == w[1]).count();
    assert!(
        identical_neighbours == 0,
        "identical neighbouring explanation lists: {lists:?}"
    );
}

#[test]
fn sp500_crash_attribution() {
    let data = sp500::generate(0);
    let workload = data.workload();
    let mut session = session_for(&workload);
    let result = session
        .explain(
            &ExplainRequest::new(workload.explain_by.clone())
                .with_optimizations(Optimizations::all()),
        )
        .unwrap();
    assert!(
        (3..=7).contains(&result.chosen_k),
        "K = {}",
        result.chosen_k
    );

    // Locate the crash window (2020-02-19 .. 2020-03-23) in point indices.
    let day_of = |date: &str| -> usize {
        result
            .timestamps
            .iter()
            .position(|t| t.as_str().is_some_and(|s| s >= date))
            .unwrap()
    };
    let crash_labels = labels_in_range(&result, day_of("2020-02-19"), day_of("2020-03-23"));
    assert!(
        crash_labels
            .iter()
            .any(|l| l.contains("technology") || l.contains("financial")),
        "crash explanations {crash_labels:?}"
    );
    // Technology must surface with a negative effect somewhere in the
    // crash and a positive one in the recovery.
    let effects: Vec<(String, String)> = result
        .segments
        .iter()
        .flat_map(|s| {
            s.explanations
                .iter()
                .map(|e| (e.label.clone(), e.effect.to_string()))
        })
        .collect();
    assert!(effects
        .iter()
        .any(|(l, e)| l.contains("technology") && e == "-"));
    assert!(effects
        .iter()
        .any(|(l, e)| l.contains("technology") && e == "+"));
}

#[test]
fn time_varying_attribute_case_study() {
    // Paper §8 / Fig. 18: the top contributor flips from vaccinated=NO to
    // age-group=50+ around week 31.
    // Fig. 18 shows a single contributor per phase (m = 1); with larger m
    // the age-wise and vaccination-wise partitions tie on total γ.
    let data = covid_deaths::generate(0);
    let workload = data.workload();
    let mut session = session_for(&workload);
    let result = session
        .explain(
            &ExplainRequest::new(workload.explain_by.clone())
                .with_optimizations(Optimizations::none())
                .with_fixed_k(2)
                .with_top_m(1),
        )
        .unwrap();
    assert_eq!(result.segments.len(), 2);
    let early_top = &result.segments[0].explanations[0].label;
    let late_top = &result.segments[1].explanations[0].label;
    assert!(
        early_top.contains("vaccinated=NO"),
        "early phase driven by {early_top}"
    );
    assert!(
        late_top.contains("age-group=50+"),
        "late phase driven by {late_top}"
    );
}

#[test]
fn latency_breakdown_accounts_for_all_modules() {
    let data = covid::generate(0);
    let workload = data.total_workload();
    let mut session = session_for(&workload);
    let request =
        ExplainRequest::new(workload.explain_by.clone()).with_optimizations(Optimizations::all());
    let result = session.explain(&request).unwrap();
    assert!(result.latency.precompute.as_nanos() > 0);
    assert!(result.latency.cascading.as_nanos() > 0);
    assert!(result.latency.segmentation.as_nanos() > 0);
    assert!(result.stats.ca_calls > 0);

    // A second request on the same session skips the precompute module.
    let cached = session.explain(&request).unwrap();
    assert!(cached.stats.cube_from_cache);
    assert!(
        cached.latency.precompute < result.latency.precompute,
        "cache hit precompute {:?} vs cold {:?}",
        cached.latency.precompute,
        result.latency.precompute
    );
}
