//! Ground-truth recovery on the synthetic corpus (the §7.3 protocol):
//! with the oracle K, TSExplain's cuts must land near the true cuts on
//! clean data, and the `tse` objective must prefer the ground truth.

use tsexplain::{ExplainRequest, ExplainSession, Optimizations, Segmentation, VarianceMetric};
use tsexplain_cube::{CubeConfig, ExplanationCube};
use tsexplain_datagen::synthetic::{SyntheticConfig, SyntheticDataset};
use tsexplain_diff::{DiffMetric, TopExplStrategy};
use tsexplain_eval::{distance_percent, ground_truth_rank, random_segmentation, CachedObjective};
use tsexplain_segment::SegmentationContext;

fn explain_with_oracle_k(dataset: &SyntheticDataset) -> Segmentation {
    let workload = dataset.workload();
    let mut session =
        ExplainSession::new(workload.relation.clone(), workload.query.clone()).unwrap();
    session
        .explain(
            &ExplainRequest::new(workload.explain_by.clone())
                .with_optimizations(Optimizations::none())
                .with_fixed_k(dataset.ground_truth_k()),
        )
        .unwrap()
        .segmentation
}

#[test]
fn clean_data_recovers_ground_truth_nearly_exactly() {
    for seed in [0, 1, 2] {
        let dataset = SyntheticDataset::generate(SyntheticConfig {
            snr_db: Some(50.0),
            seed,
            ..SyntheticConfig::default()
        });
        let ours = explain_with_oracle_k(&dataset);
        let dp = distance_percent(&ours, &dataset.ground_truth_cuts);
        assert!(
            dp < 1.0,
            "seed {seed}: distance percent {dp} (cuts {:?} vs gt {:?})",
            ours.cuts(),
            dataset.ground_truth_cuts
        );
    }
}

#[test]
fn noisy_data_stays_reasonable() {
    let mut total = 0.0;
    let seeds = [0u64, 1, 2, 3];
    for &seed in &seeds {
        let dataset = SyntheticDataset::generate(SyntheticConfig {
            snr_db: Some(25.0),
            seed,
            ..SyntheticConfig::default()
        });
        let ours = explain_with_oracle_k(&dataset);
        total += distance_percent(&ours, &dataset.ground_truth_cuts);
    }
    let avg = total / seeds.len() as f64;
    assert!(avg < 8.0, "average distance percent {avg} at 25 dB");
}

#[test]
fn ground_truth_ranks_first_among_samples_on_clean_data() {
    // The §4.2.2 effectiveness protocol in miniature: on a clean dataset
    // the ground truth should beat (or tie) every randomly sampled scheme
    // under the tse metric.
    let dataset = SyntheticDataset::generate(SyntheticConfig {
        snr_db: Some(50.0),
        seed: 5,
        ..SyntheticConfig::default()
    });
    let relation = dataset.to_relation();
    let cube = ExplanationCube::build(&relation, &dataset.query(), &CubeConfig::new(["category"]))
        .unwrap();
    let mut ctx = SegmentationContext::new(
        &cube,
        DiffMetric::AbsoluteChange,
        3,
        TopExplStrategy::Exact,
        VarianceMetric::Tse,
    );
    let mut objective = CachedObjective::new(&mut ctx);
    let gt = Segmentation::new(dataset.config.n_points, dataset.ground_truth_cuts.clone()).unwrap();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);
    let samples: Vec<Segmentation> = (0..500)
        .map(|_| random_segmentation(&mut rng, dataset.config.n_points, gt.k()))
        .collect();
    let rank = ground_truth_rank(&mut objective, &gt, &samples);
    assert!(rank <= 5, "ground truth rank {rank} of 501");
}

#[test]
fn auto_k_lands_near_ground_truth_k_on_clean_data() {
    let dataset = SyntheticDataset::generate(SyntheticConfig {
        snr_db: Some(45.0),
        seed: 7,
        ..SyntheticConfig::default()
    });
    let workload = dataset.workload();
    let mut session =
        ExplainSession::new(workload.relation.clone(), workload.query.clone()).unwrap();
    let result = session
        .explain(
            &ExplainRequest::new(workload.explain_by.clone())
                .with_optimizations(Optimizations::none()),
        )
        .unwrap();
    let gt_k = dataset.ground_truth_k();
    assert!(
        result.chosen_k.abs_diff(gt_k) <= 2,
        "elbow K {} vs ground truth {gt_k}",
        result.chosen_k
    );
}
