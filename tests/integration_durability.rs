//! End-to-end acceptance of the durable storage engine through the HTTP
//! boundary: demoted cubes rehydrate bit-identically (pinned against the
//! same golden `/compare` the in-memory server must reproduce, at thread
//! counts 1/2/8), deleted datasets stay deleted across reboots, and a
//! SIGKILL'd server recovers every acknowledged mutation on the next
//! boot — warm answers byte-identical to the pre-crash ones.

use std::io::BufRead;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::Value;
use tsexplain::{DiffMetric, ExplainRequest, Optimizations};
use tsexplain_datagen::synthetic::{SyntheticConfig, SyntheticDataset};
use tsexplain_server::{Client, ClientError, Server, ServerConfig};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tsx-durability-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The same synthetic corpus dataset `integration_server` pins its golden
/// against.
fn dataset() -> SyntheticDataset {
    SyntheticDataset::generate(SyntheticConfig {
        n_points: 60,
        seed: 7,
        ..SyntheticConfig::default()
    })
}

fn base_request() -> ExplainRequest {
    ExplainRequest::new(["category"]).with_optimizations(Optimizations::none())
}

fn durable_config(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        workers: 4,
        data_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

/// Serializes a result with the latency block removed (wall-clock is the
/// one legitimately nondeterministic part of a response).
fn canonical(value: &Value) -> Value {
    match value {
        Value::Object(map) => {
            let mut map = map.clone();
            map.remove("latency");
            Value::Object(map)
        }
        other => other.clone(),
    }
}

/// Canonicalizes a `/compare` response the way the golden file does: the
/// latency block of every strategy row removed, everything else intact.
fn canonical_compare(response: &Value) -> Value {
    let Value::Object(map) = response else {
        return response.clone();
    };
    let mut map = map.clone();
    if let Some(Value::Array(rows)) = map.get("strategies").cloned() {
        let rows = rows
            .into_iter()
            .map(|row| match row {
                Value::Object(mut row) => {
                    if let Some(result) = row.remove("result") {
                        row.insert("result".into(), canonical(&result));
                    }
                    Value::Object(row)
                }
                other => other,
            })
            .collect();
        map.insert("strategies".into(), Value::Array(rows));
    }
    Value::Object(map)
}

fn read_counter(metrics: &Value, block: &str, key: &str) -> f64 {
    metrics
        .get(block)
        .and_then(|b| b.get(key))
        .and_then(Value::as_f64)
        .unwrap_or(0.0)
}

/// Satellite (d): a demoted-then-rehydrated cube serves byte-identical
/// responses. The budget admits exactly one cube, so asking for a second
/// cube key demotes the first to disk; asking for the first again
/// rehydrates it — decode, not rebuild — and the subsequent `/compare`
/// must reproduce the *same* pinned golden the in-memory server does, at
/// thread counts 1, 2 and 8.
#[test]
fn rehydrated_cube_reproduces_the_golden_compare_at_thread_counts_1_2_8() {
    let data = dataset();

    // Probe one cube's footprint on a throwaway in-memory server.
    let one_cube = {
        let mut handle = Server::bind(ServerConfig::default()).unwrap();
        let mut client = Client::new(handle.local_addr());
        let created = client
            .register(&data.schema(), &data.query(), &data.rows_between(0, 60))
            .unwrap();
        client
            .explain_value(created.dataset_id, &base_request())
            .unwrap();
        let stats = client.stats(created.dataset_id).unwrap();
        let bytes = stats.get("cache_bytes").and_then(Value::as_f64).unwrap() as usize;
        drop(client);
        handle.shutdown();
        bytes
    };
    assert!(one_cube > 0);

    let dir = temp_dir("golden");
    let mut handle = Server::bind(ServerConfig {
        memory_budget: one_cube, // exactly one resident cube
        ..durable_config(&dir)
    })
    .unwrap();
    let mut client = Client::new(handle.local_addr());
    let created = client
        .register(&data.schema(), &data.query(), &data.rows_between(0, 60))
        .unwrap();

    // Cube A, then cube B (different key): A is demoted, not dropped.
    client
        .explain_value(created.dataset_id, &base_request())
        .unwrap();
    let reference = client
        .explain_value(created.dataset_id, &base_request())
        .unwrap();
    client
        .explain_value(created.dataset_id, &base_request().with_max_order(1))
        .unwrap();
    let metrics = client.metrics().unwrap();
    assert!(
        read_counter(&metrics, "store", "demotions") >= 1.0,
        "budget pressure must demote, got {metrics:?}"
    );

    // Asking for A again decodes the demoted snapshot back into memory…
    let rehydrated = client
        .explain_value(created.dataset_id, &base_request())
        .unwrap();
    let metrics = client.metrics().unwrap();
    assert!(read_counter(&metrics, "store", "rehydrations") >= 1.0);
    let totals = metrics
        .get("registry")
        .and_then(|r| r.get("totals"))
        .cloned()
        .unwrap();
    assert!(
        totals
            .get("cube_rehydrations")
            .and_then(Value::as_f64)
            .unwrap()
            >= 1.0
    );
    assert_eq!(
        totals.get("cubes_built").and_then(Value::as_f64),
        Some(2.0),
        "rehydration must not rebuild"
    );
    // …bit-identically: the full response (minus wall-clock and cache
    // provenance, which differ by construction) matches the pre-demotion
    // cache-hit reference.
    let strip = |value: &Value| {
        let mut value = canonical(value);
        if let Value::Object(map) = &mut value {
            if let Some(Value::Object(mut stats)) = map.get("stats").cloned() {
                stats.remove("cube_from_cache");
                map.insert("stats".into(), Value::Object(stats));
            }
        }
        value
    };
    assert_eq!(strip(&rehydrated), strip(&reference));

    // The rehydrated cube is now warm: `/compare` over it must reproduce
    // the pinned golden — the same bytes the in-memory server produces —
    // at every thread count.
    let golden = include_str!("golden_compare.jsonl")
        .lines()
        .next()
        .expect("golden file has the canonical /compare JSON on line 1");
    for threads in [1usize, 2, 8] {
        let value = client
            .compare_value(
                created.dataset_id,
                &base_request().with_threads(threads),
                None,
            )
            .unwrap();
        assert_eq!(
            serde_json::to_string(&canonical_compare(&value)).unwrap(),
            golden,
            "threads={threads}: rehydrated /compare diverged from the golden"
        );
    }
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite (a): DELETE removes durable state too — a reboot over the
/// same data dir must not resurrect the dataset, and its id is never
/// recycled.
#[test]
fn deleted_datasets_stay_deleted_across_reboots() {
    let data = dataset();
    let dir = temp_dir("delete");
    let (doomed, survivor) = {
        let mut handle = Server::bind(durable_config(&dir)).unwrap();
        let mut client = Client::new(handle.local_addr());
        let doomed = client
            .register(&data.schema(), &data.query(), &data.rows_between(0, 30))
            .unwrap()
            .dataset_id;
        let survivor = client
            .register(&data.schema(), &data.query(), &data.rows_between(0, 60))
            .unwrap()
            .dataset_id;
        client.remove(doomed).unwrap();
        drop(client);
        handle.shutdown();
        (doomed, survivor)
    };

    let mut handle = Server::bind(durable_config(&dir)).unwrap();
    let mut client = Client::new(handle.local_addr());
    // The tombstone held: the deleted tenant is gone, the other serves.
    match client.stats(doomed).unwrap_err() {
        ClientError::Api(e) => assert_eq!((e.status, e.kind.as_str()), (404, "unknown_dataset")),
        other => panic!("expected a 404, got {other}"),
    }
    let answer = client.explain(survivor, &base_request()).unwrap();
    assert_eq!(answer.stats.n_points, 60);
    // No durable residue: neither a tenant snapshot nor cube blobs.
    assert!(!dir.join("tenants").join(format!("t{doomed}.snap")).exists());
    // New registrations never recycle the deleted id.
    let fresh = client
        .register(&data.schema(), &data.query(), &data.rows_between(0, 10))
        .unwrap()
        .dataset_id;
    assert_ne!(fresh, doomed);
    assert!(fresh > survivor);
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Boots the real `tsx-server` binary on an ephemeral port with
/// `--data-dir` and returns the child plus its parsed address.
fn spawn_server(dir: &std::path::Path) -> (std::process::Child, SocketAddr) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_tsx-server"))
        .args(["--addr", "127.0.0.1:0", "--data-dir", dir.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn tsx-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("tsx-server exited before listening")
            .expect("read tsx-server stdout");
        if let Some(rest) = line.split("http://").nth(1) {
            let addr = rest.split_whitespace().next().unwrap();
            break addr.parse().expect("parse the printed address");
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

/// Satellite (f): kill -9 mid-flight, reboot on the same data dir, and
/// every acknowledged mutation — registration and streamed rows — is
/// back, with warm answers byte-identical to the pre-crash ones.
#[test]
fn sigkilled_server_recovers_acknowledged_state_on_reboot() {
    let data = dataset();
    let dir = temp_dir("sigkill");

    let (mut child, addr) = spawn_server(&dir);
    let mut client = Client::new(addr);
    let created = client
        .register(&data.schema(), &data.query(), &data.rows_between(0, 40))
        .unwrap();
    // Stream the rest in two acknowledged batches.
    client
        .append_rows(created.dataset_id, &data.rows_between(40, 50))
        .unwrap();
    client
        .append_rows(created.dataset_id, &data.rows_between(50, 60))
        .unwrap();
    let requests = [
        base_request(),
        base_request().with_fixed_k(3),
        base_request()
            .with_top_m(1)
            .with_diff_metric(DiffMetric::RelativeChange),
    ];
    let before: Vec<Value> = requests
        .iter()
        .map(|r| canonical(&client.explain_value(created.dataset_id, r).unwrap()))
        .collect();
    drop(client);

    // No goodbyes: SIGKILL, as a crash would.
    child.kill().expect("kill tsx-server");
    child.wait().expect("reap tsx-server");

    let (mut child, addr) = spawn_server(&dir);
    let mut client = Client::new(addr);
    // The dataset survives under its original id with all 60 points…
    let stats = client.stats(created.dataset_id).unwrap();
    assert_eq!(stats.get("n_points").and_then(Value::as_f64), Some(60.0));
    // …and warm answers are byte-identical to the pre-crash ones (both
    // sides are first-touch cube builds, so even the stats block agrees).
    for (request, expected) in requests.iter().zip(&before) {
        let after = canonical(&client.explain_value(created.dataset_id, request).unwrap());
        assert_eq!(&after, expected, "post-reboot answer diverged");
    }
    // Recovery is visible in the store metrics.
    let metrics = client.metrics().unwrap();
    assert!(read_counter(&metrics, "store", "recoveries") >= 1.0);
    drop(client);
    child.kill().expect("kill tsx-server");
    child.wait().expect("reap tsx-server");
    let _ = std::fs::remove_dir_all(&dir);
}
