//! End-to-end acceptance of the observability subsystem: a booted
//! `tsx-server` must echo (or mint) `X-Request-Id` on every response,
//! capture slow requests in the flight recorder with a real span tree,
//! serve a valid Prometheus text exposition at
//! `/metrics?format=prometheus`, and keep the JSON `/metrics` document
//! byte-identical whether or not a `format` parameter spelled it out.

use serde::Value;
use tsexplain::ExplainRequest;
use tsexplain_datagen::synthetic::{SyntheticConfig, SyntheticDataset};
use tsexplain_server::{Client, Server, ServerConfig};

fn dataset() -> SyntheticDataset {
    SyntheticDataset::generate(SyntheticConfig {
        n_points: 60,
        seed: 7,
        ..SyntheticConfig::default()
    })
}

/// Boots a server whose flight recorder captures *every* request
/// (`slow_ms: 0`), registers the corpus dataset, and runs one explain.
fn boot() -> (tsexplain_server::ServerHandle, Client, u64) {
    let handle = Server::bind(ServerConfig {
        workers: 2,
        slow_ms: 0,
        ..ServerConfig::default()
    })
    .unwrap();
    let data = dataset();
    let mut client = Client::new(handle.local_addr());
    let created = client
        .register(&data.schema(), &data.query(), &data.rows_between(0, 60))
        .unwrap();
    (handle, client, created.dataset_id)
}

/// Collects every span name in a flight-recorded span forest.
fn span_names(spans: &Value, into: &mut Vec<String>) {
    let Value::Array(spans) = spans else { return };
    for span in spans {
        if let Some(name) = span.get("name").and_then(Value::as_str) {
            into.push(name.to_string());
        }
        if let Some(children) = span.get("children") {
            span_names(children, into);
        }
    }
}

#[test]
fn request_ids_are_echoed_or_minted() {
    let (mut handle, mut client, id) = boot();
    let body = serde_json::to_string(&serde::Serialize::serialize(&ExplainRequest::new([
        "category",
    ])))
    .unwrap();

    // A client-supplied id comes back verbatim.
    let response = client
        .raw(
            "POST",
            &format!("/datasets/{id}/explain"),
            Some(&body),
            &[("x-request-id", "trace-abc-123")],
        )
        .unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-request-id"), Some("trace-abc-123"));

    // Without one, the server mints a process-unique id — on errors too.
    for (method, path, expect_2xx) in [
        ("GET", "/healthz".to_string(), true),
        ("GET", "/nope".to_string(), false),
        ("DELETE", format!("/datasets/{id}/explain"), false),
    ] {
        let response = client.raw(method, &path, None, &[]).unwrap();
        assert_eq!((200..300).contains(&response.status), expect_2xx, "{path}");
        let minted = response
            .header("x-request-id")
            .expect("id on every response");
        assert!(minted.starts_with("tsx-"), "minted id {minted:?}");
    }

    // The flight recorder (slow_ms = 0 records everything) carries the
    // client-supplied id on its entry.
    let flight = client.debug_requests().unwrap();
    let requests = flight.get("requests").and_then(Value::as_array).unwrap();
    assert!(requests
        .iter()
        .any(|entry| { entry.get("request_id").and_then(Value::as_str) == Some("trace-abc-123") }));
    drop(client);
    handle.shutdown();
}

#[test]
fn flight_recorder_captures_the_explain_span_tree() {
    let (mut handle, mut client, id) = boot();
    client
        .explain_value(id, &ExplainRequest::new(["category"]))
        .unwrap();
    client
        .compare_value(id, &ExplainRequest::new(["category"]), None)
        .unwrap();

    let flight = client.debug_requests().unwrap();
    assert_eq!(
        flight.get("slow_threshold_ms").and_then(Value::as_f64),
        Some(0.0)
    );
    let requests = flight.get("requests").and_then(Value::as_array).unwrap();
    assert!(!requests.is_empty(), "slow_ms=0 must record every request");

    let explain_entry = requests
        .iter()
        .find(|e| {
            e.get("path")
                .and_then(Value::as_str)
                .is_some_and(|p| p.ends_with("/explain"))
        })
        .expect("the explain request was recorded");
    let mut names = Vec::new();
    span_names(explain_entry.get("spans").unwrap(), &mut names);
    for expected in ["cube_acquire", "segmentation", "cascading"] {
        assert!(
            names.contains(&expected.to_string()),
            "missing {expected} in {names:?}"
        );
    }
    // Spans carry real timings and the entry carries the breakdown.
    assert!(explain_entry
        .get("duration_nanos")
        .and_then(Value::as_f64)
        .is_some_and(|d| d > 0.0));
    let latency = explain_entry
        .get("annotations")
        .and_then(|a| a.get("latency"))
        .expect("the explain latency breakdown is annotated");
    for module in ["precompute", "cascading", "segmentation"] {
        assert!(latency.get(module).is_some(), "latency lacks {module}");
    }

    let compare_entry = requests
        .iter()
        .find(|e| {
            e.get("path")
                .and_then(Value::as_str)
                .is_some_and(|p| p.ends_with("/compare"))
        })
        .expect("the compare request was recorded");
    let mut names = Vec::new();
    span_names(compare_entry.get("spans").unwrap(), &mut names);
    assert!(names.contains(&"parallel_fanout".to_string()), "{names:?}");

    // The ring is bounded: entries report monotonically increasing seq.
    let seqs: Vec<f64> = requests
        .iter()
        .map(|e| e.get("seq").and_then(Value::as_f64).unwrap())
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
    drop(client);
    handle.shutdown();
}

#[test]
fn prometheus_exposition_is_well_formed_and_json_metrics_unchanged() {
    let (mut handle, mut client, id) = boot();
    client
        .explain_value(id, &ExplainRequest::new(["category"]))
        .unwrap();
    let _ = client.raw("GET", "/nope", None, &[]); // one 404 for the 4xx class

    let text = client.metrics_prometheus().unwrap();
    assert!(text.contains("tsx_requests_total "), "{text}");
    assert!(
        text.contains("tsx_request_duration_seconds_bucket{route=\"explain\""),
        "{text}"
    );
    assert!(
        text.contains("tsx_explain_duration_seconds_bucket{strategy=\"dp\""),
        "{text}"
    );
    assert!(
        text.contains("tsx_responses_total{class=\"4xx\"}"),
        "{text}"
    );
    // The deadline counters are additive members of the stable exposition:
    // present (with headers) from boot, zero until a deadline trips.
    assert!(text.contains("tsx_deadline_exceeded_total "), "{text}");
    assert!(text.contains("tsx_cancelled_inflight_total "), "{text}");

    // Line-wise validity: every line is a comment or `name{labels} value`
    // with a parseable finite value.
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect(line);
        assert!(
            series
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_'),
            "{line}"
        );
        let value: f64 = value.parse().expect(line);
        assert!(value.is_finite(), "{line}");
    }

    // Histogram sanity on one family: cumulative buckets end at +Inf ==
    // _count, and _count >= 1 for the explain route.
    let count = text
        .lines()
        .find(|l| l.starts_with("tsx_request_duration_seconds_count{route=\"explain\"}"))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse::<f64>().ok())
        .expect("explain route count series");
    assert!(count >= 1.0);
    let inf = text
        .lines()
        .find(|l| {
            l.starts_with("tsx_request_duration_seconds_bucket{route=\"explain\",le=\"+Inf\"}")
        })
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse::<f64>().ok())
        .expect("+Inf bucket");
    assert_eq!(inf, count);

    // The JSON document is the same bytes with or without ?format=json,
    // and gained no new keys for the scrape formats.
    let bare = client.raw("GET", "/metrics", None, &[]).unwrap();
    let explicit = client
        .raw("GET", "/metrics?format=json", None, &[])
        .unwrap();
    assert_eq!(bare.status, 200);
    // The two scrapes may legitimately differ (requests_total advanced
    // between them), so compare shapes, not bytes: same top-level keys.
    let bare: Value = serde_json::from_str(std::str::from_utf8(&bare.body).unwrap()).unwrap();
    let explicit: Value =
        serde_json::from_str(std::str::from_utf8(&explicit.body).unwrap()).unwrap();
    let keys = |v: &Value| -> Vec<String> {
        v.as_object()
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default()
    };
    assert_eq!(keys(&bare), keys(&explicit));
    assert_eq!(
        keys(&bare.get("server").cloned().unwrap()),
        keys(&explicit.get("server").cloned().unwrap())
    );
    // The JSON document stayed additive: every pre-deadline block is
    // still present, and the new `deadlines` block carries exactly its
    // documented keys.
    let server = bare.get("server").cloned().unwrap();
    for block in ["admission", "parallel", "memo", "deadlines"] {
        assert!(server.get(block).is_some(), "server metrics lack {block}");
    }
    let deadlines = server.get("deadlines").cloned().unwrap();
    assert_eq!(
        keys(&deadlines), // JSON objects serialize key-sorted
        vec![
            "cancelled_inflight".to_string(),
            "deadline_exceeded".to_string(),
            "request_timeout_ms".to_string(),
        ]
    );
    // No server cap configured: the cap reports null, the counters zero.
    assert!(matches!(
        deadlines.get("request_timeout_ms"),
        Some(Value::Null)
    ));
    assert_eq!(
        deadlines.get("deadline_exceeded").and_then(Value::as_f64),
        Some(0.0)
    );

    // An unknown format is a 400, not a panic or a silent JSON fallback.
    let bad = client.raw("GET", "/metrics?format=xml", None, &[]).unwrap();
    assert_eq!(bad.status, 400);
    drop(client);
    handle.shutdown();
}
