//! The paper's optimization-quality guarantees (§5.3, Table 7):
//! guess-and-verify is exact; filter and sketching may approximate, but
//! the end-to-end variance must stay within a whisker of Vanilla's.

use tsexplain::{ExplainRequest, ExplainSession, Optimizations};
use tsexplain_cube::{CubeConfig, ExplanationCube};
use tsexplain_datagen::{covid_deaths, sp500, synthetic};
use tsexplain_diff::{CascadingAnalysts, DiffMetric, GuessVerify};

#[test]
fn guess_verify_is_exact_on_sp500_segments() {
    let data = sp500::generate(0);
    let workload = data.workload();
    let cube = ExplanationCube::build(
        &workload.relation,
        &workload.query,
        &CubeConfig::new(workload.explain_by.iter().map(String::as_str)).with_filter_ratio(0.001),
    )
    .unwrap();
    let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 3);
    let mut gv = GuessVerify::new(&cube, 30);
    let n = cube.n_points();
    // A spread of segments, including the crash and the recovery.
    let segments = [
        (0usize, 24usize),
        (24, 56),
        (33, 56),
        (56, 120),
        (120, n - 1),
        (0, n - 1),
    ];
    for seg in segments {
        let exact = ca.top_m(seg);
        let (approx, stats) = gv.top_m(&mut ca, seg);
        assert!(
            (approx.total_score() - exact.total_score()).abs()
                <= 1e-9 * exact.total_score().abs().max(1.0),
            "segment {seg:?}: gv {} vs exact {} ({stats:?})",
            approx.total_score(),
            exact.total_score()
        );
    }
}

#[test]
fn optimization_bundles_preserve_result_quality() {
    // Table 7's property on a mid-sized workload: the variance of the
    // O1+O2 segmentation stays within 1% of Vanilla's (the paper observes
    // < 1% on Covid, exact equality on S&P 500 and Liquor).
    let dataset = synthetic::SyntheticDataset::generate(synthetic::SyntheticConfig {
        n_points: 120,
        snr_db: Some(30.0),
        seed: 11,
        ..Default::default()
    });
    let workload = dataset.workload();
    let mut session =
        ExplainSession::new(workload.relation.clone(), workload.query.clone()).unwrap();

    let mut run = |optimizations: Optimizations| {
        session
            .explain(
                &ExplainRequest::new(workload.explain_by.clone())
                    .with_optimizations(optimizations)
                    .with_fixed_k(5),
            )
            .unwrap()
    };
    let vanilla = run(Optimizations::none());
    let optimized = run(Optimizations::all());
    let rel_diff = (optimized.total_variance - vanilla.total_variance).abs()
        / vanilla.total_variance.max(1e-9);
    assert!(
        rel_diff < 0.05,
        "variance drift {rel_diff:.4} (vanilla {}, optimized {})",
        vanilla.total_variance,
        optimized.total_variance
    );
    // Cut positions may shift slightly (the paper sees ≤ 4-day shifts on
    // Covid); most optimized cuts must sit near some vanilla cut. On noisy
    // data with a non-oracle K several near-optimal schemes coexist, so
    // one divergent cut is tolerated.
    let near_misses = optimized
        .segmentation
        .cuts()
        .iter()
        .filter(|&&b| {
            !vanilla
                .segmentation
                .cuts()
                .iter()
                .any(|&a| a.abs_diff(b) <= 6)
        })
        .count();
    assert!(
        near_misses <= 1,
        "cuts diverge: vanilla {:?} vs optimized {:?}",
        vanilla.segmentation.cuts(),
        optimized.segmentation.cuts()
    );
}

#[test]
fn filter_reduces_candidates_without_losing_headline_explanations() {
    let data = covid_deaths::generate(0);
    let workload = data.workload();
    let mut session =
        ExplainSession::new(workload.relation.clone(), workload.query.clone()).unwrap();
    let mut run = |optimizations: Optimizations| {
        session
            .explain(
                &ExplainRequest::new(workload.explain_by.clone())
                    .with_optimizations(optimizations)
                    .with_fixed_k(2),
            )
            .unwrap()
    };
    let vanilla = run(Optimizations::none());
    let filtered = run(Optimizations::filter_only());
    assert!(filtered.stats.filtered_epsilon <= vanilla.stats.epsilon);
    let tops = |r: &tsexplain::ExplainResult| -> Vec<String> {
        r.segments
            .iter()
            .map(|s| s.explanations[0].label.clone())
            .collect()
    };
    assert_eq!(tops(&vanilla), tops(&filtered));
}

#[test]
fn sketching_reduces_candidate_positions_and_ca_calls() {
    let dataset = synthetic::SyntheticDataset::generate(synthetic::SyntheticConfig {
        n_points: 400,
        snr_db: Some(35.0),
        seed: 2,
        ..Default::default()
    });
    let workload = dataset.workload();
    let mut session =
        ExplainSession::new(workload.relation.clone(), workload.query.clone()).unwrap();
    let mut run = |optimizations: Optimizations| {
        session
            .explain(
                &ExplainRequest::new(workload.explain_by.clone())
                    .with_optimizations(optimizations)
                    .with_fixed_k(dataset.ground_truth_k()),
            )
            .unwrap()
    };
    let vanilla = run(Optimizations::none());
    let sketched = run(Optimizations::o2());
    assert_eq!(vanilla.stats.candidate_positions, 400);
    assert!(
        sketched.stats.candidate_positions < 100,
        "sketch kept {} positions",
        sketched.stats.candidate_positions
    );
    assert!(
        sketched.stats.ca_calls < vanilla.stats.ca_calls,
        "sketch CA calls {} vs vanilla {}",
        sketched.stats.ca_calls,
        vanilla.stats.ca_calls
    );
}
