//! Acceptance tests for the session-oriented serving API: one registered
//! dataset serving many requests from a single prepared cube, the
//! `Explainer` trait unifying batch and streaming, upfront request
//! validation, and JSON-serializable responses.

use tsexplain::{
    AggQuery, AttrValue, Datum, DiffMetric, ExplainRequest, ExplainResult, ExplainSession,
    Explainer, Field, InvalidRequest, Optimizations, Relation, Schema, StreamingExplainer,
    TsExplainError,
};

fn schema() -> Schema {
    Schema::new(vec![
        Field::dimension("t"),
        Field::dimension("state"),
        Field::measure("v"),
    ])
    .unwrap()
}

/// Three-phase KPI rows: NY drives 0..10, CA 10..20, TX 20..30.
fn rows_for(range: std::ops::Range<i64>) -> Vec<Vec<Datum>> {
    let mut rows = Vec::new();
    for t in range {
        let ny = if t <= 10 { 8.0 * t as f64 } else { 80.0 };
        let ca = if t <= 10 {
            2.0
        } else if t <= 20 {
            2.0 + 9.0 * (t - 10) as f64
        } else {
            92.0
        };
        let tx = if t <= 20 {
            5.0
        } else {
            5.0 + 10.0 * (t - 20) as f64
        };
        for (s, v) in [("NY", ny), ("CA", ca), ("TX", tx)] {
            rows.push(vec![Datum::Attr(t.into()), Datum::from(s), Datum::from(v)]);
        }
    }
    rows
}

fn relation(range: std::ops::Range<i64>) -> Relation {
    let mut b = Relation::builder(schema());
    for row in rows_for(range) {
        b.push_row(row).unwrap();
    }
    b.finish()
}

fn request() -> ExplainRequest {
    ExplainRequest::new(["state"]).with_optimizations(Optimizations::none())
}

#[test]
fn one_session_serves_many_requests_with_one_precompute() {
    let mut session = ExplainSession::new(relation(0..30), AggQuery::sum("t", "v")).unwrap();

    // Three requests with differing K / top-m / difference metric.
    let auto = session.explain(&request()).unwrap();
    let fixed = session.explain(&request().with_fixed_k(2)).unwrap();
    let relative = session
        .explain(
            &request()
                .with_top_m(1)
                .with_diff_metric(DiffMetric::RelativeChange),
        )
        .unwrap();

    // The explanation cube was built exactly once.
    let stats = session.stats();
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.cubes_built, 1, "cube must be built exactly once");
    assert_eq!(stats.cube_cache_hits, 2);
    assert!(!auto.stats.cube_from_cache);
    assert!(fixed.stats.cube_from_cache);
    assert!(relative.stats.cube_from_cache);

    // And every request still got its own knobs.
    assert_eq!(auto.chosen_k, 3);
    assert_eq!(fixed.chosen_k, 2);
    assert!(relative.segments.iter().all(|s| s.explanations.len() <= 1));
    let tops: Vec<&str> = auto
        .segments
        .iter()
        .map(|s| s.explanations[0].label.as_str())
        .collect();
    assert_eq!(tops, vec!["state=NY", "state=CA", "state=TX"]);
}

#[test]
fn cache_hits_are_bit_identical_to_cold_runs() {
    let mut warm = ExplainSession::new(relation(0..30), AggQuery::sum("t", "v")).unwrap();
    let miss = warm.explain(&request()).unwrap();
    let hit = warm.explain(&request()).unwrap();
    let mut cold = ExplainSession::new(relation(0..30), AggQuery::sum("t", "v")).unwrap();
    let fresh = cold.explain(&request()).unwrap();

    for (name, other) in [("cache hit", &hit), ("cold run", &fresh)] {
        assert_eq!(other.segmentation, miss.segmentation, "{name}");
        assert_eq!(other.chosen_k, miss.chosen_k, "{name}");
        assert_eq!(other.total_variance, miss.total_variance, "{name}");
        assert_eq!(other.k_variance_curve, miss.k_variance_curve, "{name}");
        assert_eq!(other.aggregate, miss.aggregate, "{name}");
        assert_eq!(other.timestamps, miss.timestamps, "{name}");
        for (a, b) in miss.segments.iter().zip(&other.segments) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.end, b.end);
            assert_eq!(a.variance, b.variance, "{name}");
            let labels = |s: &tsexplain::SegmentExplanation| -> Vec<(String, f64)> {
                s.explanations
                    .iter()
                    .map(|e| (e.label.clone(), e.gamma))
                    .collect()
            };
            assert_eq!(labels(a), labels(b), "{name}");
        }
    }
    assert!(hit.stats.cube_from_cache);
    assert!(!fresh.stats.cube_from_cache);
}

#[test]
fn batch_and_streaming_agree_through_the_explainer_trait() {
    // The same replayed data served by both Explainer implementations.
    let mut batch = ExplainSession::new(relation(0..30), AggQuery::sum("t", "v")).unwrap();
    let mut streaming =
        StreamingExplainer::new(request(), schema(), AggQuery::sum("t", "v")).unwrap();
    for chunk in [0..12i64, 12..22, 22..30] {
        streaming.append_rows(rows_for(chunk)).unwrap();
        streaming.refresh().unwrap();
    }

    let explainers: [&mut dyn Explainer; 2] = [&mut batch, &mut streaming];
    let mut cuts = Vec::new();
    let mut labels = Vec::new();
    for explainer in explainers {
        let result = explainer.explain(&request()).unwrap();
        assert_eq!(result.stats.n_points, 30);
        cuts.push(result.segmentation.cuts().to_vec());
        labels.push(
            result
                .segments
                .iter()
                .map(|s| s.explanations[0].label.clone())
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(cuts[0], cuts[1], "batch and streaming must agree on cuts");
    assert_eq!(labels[0], labels[1]);
}

#[test]
fn invalid_requests_are_rejected_upfront() {
    let mut session = ExplainSession::new(relation(0..30), AggQuery::sum("t", "v")).unwrap();

    // Unknown explain-by attribute.
    let err = session
        .explain(&ExplainRequest::new(["country"]))
        .unwrap_err();
    assert!(matches!(
        err,
        TsExplainError::InvalidRequest(InvalidRequest::UnknownAttribute(a)) if a == "country"
    ));
    // Empty explain-by set.
    let err = session
        .explain(&ExplainRequest::new(Vec::<String>::new()))
        .unwrap_err();
    assert!(matches!(
        err,
        TsExplainError::InvalidRequest(InvalidRequest::EmptyExplainBy)
    ));
    // The time attribute cannot explain itself.
    let err = session.explain(&ExplainRequest::new(["t"])).unwrap_err();
    assert!(matches!(
        err,
        TsExplainError::InvalidRequest(InvalidRequest::TimeAttrInExplainBy(_))
    ));
    // No pipeline work happened for any rejected request.
    assert_eq!(session.stats().cubes_built, 0);

    // Infeasible fixed K: n = 30 admits at most 29 segments.
    let err = session.explain(&request().with_fixed_k(30)).unwrap_err();
    assert!(matches!(
        err,
        TsExplainError::InvalidRequest(InvalidRequest::InfeasibleK { k: 30, n: 30 })
    ));
    assert!(session.explain(&request().with_fixed_k(29)).is_ok());

    // The error is also printable for a service boundary.
    let message =
        TsExplainError::InvalidRequest(InvalidRequest::UnknownAttribute("country".into()))
            .to_string();
    assert!(message.contains("country"), "{message}");
}

#[test]
fn responses_roundtrip_as_json() {
    let mut session = ExplainSession::new(relation(0..30), AggQuery::sum("t", "v")).unwrap();
    let result = session.explain(&request().with_fixed_k(3)).unwrap();

    let json = serde_json::to_string(&result).unwrap();
    let back: ExplainResult = serde_json::from_str(&json).unwrap();

    // Cuts, labels and stats survive the service boundary.
    assert_eq!(back.segmentation, result.segmentation);
    assert_eq!(back.chosen_k, result.chosen_k);
    assert_eq!(back.stats, result.stats);
    assert_eq!(back.timestamps, result.timestamps);
    assert_eq!(back.aggregate, result.aggregate);
    assert_eq!(back.total_variance, result.total_variance);
    assert_eq!(back.segments.len(), result.segments.len());
    for (a, b) in result.segments.iter().zip(&back.segments) {
        assert_eq!(a.start, b.start);
        assert_eq!(a.end, b.end);
        assert_eq!(a.start_time, b.start_time);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.variance, b.variance);
        for (x, y) in a.explanations.iter().zip(&b.explanations) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.gamma, y.gamma);
            assert_eq!(x.effect, y.effect);
            assert_eq!(x.series, y.series);
        }
    }

    // Requests cross the boundary too (e.g. a thin HTTP front-end).
    let wire = serde_json::to_string(&request().with_fixed_k(3)).unwrap();
    let parsed: ExplainRequest = serde_json::from_str(&wire).unwrap();
    let replayed = session.explain(&parsed).unwrap();
    assert_eq!(replayed.segmentation, result.segmentation);
}

#[test]
fn time_windows_reuse_the_full_horizon_cube() {
    let mut session = ExplainSession::new(relation(0..30), AggQuery::sum("t", "v")).unwrap();
    let full = session.explain(&request()).unwrap();
    let windowed = session
        .explain(&request().with_time_range(10i64, 20i64).with_fixed_k(1))
        .unwrap();
    assert_eq!(windowed.stats.n_points, 11);
    assert_eq!(windowed.timestamps[0], AttrValue::from(10));
    assert_eq!(*windowed.timestamps.last().unwrap(), AttrValue::from(20));
    // CA drives exactly that window.
    assert_eq!(windowed.segments[0].explanations[0].label, "state=CA");
    // One cube serves both the full horizon and the window.
    assert_eq!(session.stats().cubes_built, 1);
    assert!(full.stats.n_points > windowed.stats.n_points);
}

#[test]
fn live_appends_flow_through_both_explainers() {
    let query = AggQuery::sum("t", "v");
    let mut session = ExplainSession::new(relation(0..15), query.clone()).unwrap();
    session.explain(&request()).unwrap();
    session.append_rows(rows_for(15..30)).unwrap();
    let batch = session.explain(&request()).unwrap();
    assert_eq!(batch.stats.n_points, 30);
    assert_eq!(session.stats().cubes_built, 1, "append must not rebuild");

    let mut streaming =
        StreamingExplainer::with_history(request(), relation(0..15), query).unwrap();
    streaming.refresh().unwrap();
    streaming.append_rows(rows_for(15..30)).unwrap();
    let live = streaming.refresh().unwrap();
    assert_eq!(live.stats.n_points, 30);
    assert_eq!(live.segmentation.cuts(), batch.segmentation.cuts());
}
