//! End-to-end acceptance of the HTTP serving subsystem: a booted
//! `tsx-server` must answer register/append/explain/stats/metrics over the
//! wire with responses identical (modulo latency timings) to what an
//! in-process [`ExplainSession`] produces, map failures to structured
//! 4xx/5xx bodies, and survive concurrent clients.

use serde::Value;
use tsexplain::{Datum, DiffMetric, ExplainRequest, ExplainSession, Optimizations, Relation};
use tsexplain_datagen::synthetic::{SyntheticConfig, SyntheticDataset};
use tsexplain_server::{Client, ClientError, Server, ServerConfig};

/// The synthetic paper corpus dataset this whole test serves.
fn dataset() -> SyntheticDataset {
    SyntheticDataset::generate(SyntheticConfig {
        n_points: 60,
        seed: 7,
        ..SyntheticConfig::default()
    })
}

fn relation_until(data: &SyntheticDataset, hi: usize) -> Relation {
    let mut b = Relation::builder(data.schema());
    for row in data.rows_between(0, hi) {
        b.push_row(row).unwrap();
    }
    b.finish()
}

fn requests() -> Vec<ExplainRequest> {
    let base = ExplainRequest::new(["category"]).with_optimizations(Optimizations::none());
    vec![
        base.clone(),
        base.clone().with_fixed_k(3),
        base.clone()
            .with_top_m(1)
            .with_diff_metric(DiffMetric::RelativeChange),
        base.clone().with_smoothing(5),
        base.with_time_range(10i64, 40i64),
    ]
}

/// Serializes a result with the latency block removed — wall-clock timings
/// (and the thread count recorded inside them) are the one legitimately
/// nondeterministic part of a response.
fn canonical(result_value: &Value) -> Value {
    match result_value {
        Value::Object(map) => {
            let mut map = map.clone();
            map.remove("latency");
            Value::Object(map)
        }
        other => other.clone(),
    }
}

/// [`canonical`] plus `stats.cube_from_cache` removed — eviction churn
/// legitimately flips whether an answer came from a cached cube, never
/// what the answer is.
fn strip_cache_flag(value: &Value) -> Value {
    let mut value = canonical(value);
    if let Value::Object(map) = &mut value {
        if let Some(Value::Object(stats)) = map.get("stats") {
            let mut stats = stats.clone();
            stats.remove("cube_from_cache");
            map.insert("stats".into(), Value::Object(stats));
        }
    }
    value
}

/// [`canonical_compare`] plus cube provenance stripped from every
/// strategy row (the stress test's comparison under eviction churn).
fn strip_compare(value: &Value) -> Value {
    let mut value = canonical_compare(value);
    if let Value::Object(map) = &mut value {
        if let Some(Value::Array(rows)) = map.get("strategies").cloned() {
            let rows = rows
                .into_iter()
                .map(|row| match row {
                    Value::Object(mut row) => {
                        if let Some(result) = row.remove("result") {
                            row.insert("result".into(), strip_cache_flag(&result));
                        }
                        Value::Object(row)
                    }
                    other => other,
                })
                .collect();
            map.insert("strategies".into(), Value::Array(rows));
        }
    }
    value
}

/// Canonicalizes a `/compare` response: the latency block of every
/// strategy row is removed, everything else — cuts, chosen K, curves,
/// distances, ranks, stats — stays byte-comparable.
fn canonical_compare(response: &Value) -> Value {
    let Value::Object(map) = response else {
        return response.clone();
    };
    let mut map = map.clone();
    if let Some(Value::Array(rows)) = map.get("strategies").cloned() {
        let rows = rows
            .into_iter()
            .map(|row| match row {
                Value::Object(mut row) => {
                    if let Some(result) = row.remove("result") {
                        row.insert("result".into(), canonical(&result));
                    }
                    Value::Object(row)
                }
                other => other,
            })
            .collect();
        map.insert("strategies".into(), Value::Array(rows));
    }
    Value::Object(map)
}

#[test]
fn http_responses_equal_in_process_results() {
    let mut handle = Server::bind(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let data = dataset();

    // Wire side: register over HTTP with the first 40 timestamps.
    let mut client = Client::new(handle.local_addr());
    let created = client
        .register(&data.schema(), &data.query(), &data.rows_between(0, 40))
        .unwrap();
    assert_eq!(created.n_points, 40);
    assert_eq!(created.n_rows, 40 * data.categories.len());

    // In-process side: the same data and the same request sequence.
    let mut session = ExplainSession::new(relation_until(&data, 40), data.query()).unwrap();

    for (i, request) in requests().iter().enumerate() {
        let wire = client.explain_value(created.dataset_id, request).unwrap();
        let local = session.explain(request).unwrap();
        assert_eq!(
            canonical(&wire),
            canonical(&serde_json::to_value(&local)),
            "request #{i} diverged between HTTP and in-process"
        );
    }

    // Streaming append over HTTP, mirrored locally, stays identical.
    let ack = client
        .append_rows(created.dataset_id, &data.rows_between(40, 60))
        .unwrap();
    assert_eq!(ack.n_points, 60);
    session.append_rows(data.rows_between(40, 60)).unwrap();
    let request = requests().remove(0);
    let wire = client.explain_value(created.dataset_id, &request).unwrap();
    let local = session.explain(&request).unwrap();
    assert_eq!(canonical(&wire), canonical(&serde_json::to_value(&local)));

    // The decoded result is the engine's own type, not a lookalike.
    let decoded = client.explain(created.dataset_id, &request).unwrap();
    assert_eq!(decoded.segmentation, local.segmentation);
    assert_eq!(decoded.chosen_k, local.chosen_k);
    assert_eq!(decoded.aggregate, local.aggregate);

    // Stats reflect the shared history: registration + appends + explains.
    let stats = client.stats(created.dataset_id).unwrap();
    assert_eq!(stats.get("n_points").and_then(Value::as_f64), Some(60.0));
    let session_stats = stats.get("session").cloned().unwrap();
    assert_eq!(
        session_stats.get("rows_appended").and_then(Value::as_f64),
        Some((20 * data.categories.len()) as f64)
    );
    drop(client);
    handle.shutdown();
}

#[test]
fn compare_fans_out_across_all_strategies() {
    let mut handle = Server::bind(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let data = dataset();
    let mut client = Client::new(handle.local_addr());
    let created = client
        .register(&data.schema(), &data.query(), &data.rows_between(0, 60))
        .unwrap();
    let request = requests().remove(0);

    // Warm the cube, then take a cache-hit reference for the DP.
    client.explain_value(created.dataset_id, &request).unwrap();
    let reference = canonical(&client.explain_value(created.dataset_id, &request).unwrap());

    let comparison = client.compare(created.dataset_id, &request, None).unwrap();
    assert_eq!(comparison.reference, "dp");
    assert!(comparison.window >= 2);
    let names: Vec<&str> = comparison
        .strategies
        .iter()
        .map(|s| s.strategy.as_str())
        .collect();
    assert_eq!(names, tsexplain::STRATEGIES.to_vec());

    // The DP row is byte-identical (modulo latency) to a plain /explain
    // and is its own distance reference.
    let dp = &comparison.strategies[0];
    assert_eq!(dp.distance_percent_vs_dp, 0.0);
    assert_eq!(
        canonical(&serde_json::to_value(&dp.result)),
        reference,
        "/compare's dp row diverged from /explain"
    );
    // Metrics are well-formed: ranks are a 1-based permutation with ties,
    // distances are finite and nonnegative.
    for row in &comparison.strategies {
        assert!(row.distance_percent_vs_dp >= 0.0);
        assert!(row.distance_percent_vs_dp.is_finite());
        assert!((1.0..=4.0).contains(&row.objective_rank));
        assert_eq!(row.result.strategy, row.strategy);
    }
    assert!(comparison
        .strategies
        .iter()
        .any(|row| row.objective_rank == 1.0));

    // All four strategies shared the tenant's one cube.
    let stats = client.stats(created.dataset_id).unwrap();
    let session_stats = stats.get("session").cloned().unwrap();
    assert_eq!(
        session_stats.get("cubes_built").and_then(Value::as_f64),
        Some(1.0)
    );

    // An explicit window is honoured; an infeasible one is a 400.
    let windowed = client
        .compare(created.dataset_id, &request, Some(5))
        .unwrap();
    assert_eq!(windowed.window, 5);

    // A time-sliced compare auto-sizes its window from the *sliced*
    // horizon: 16 points admit only small windows, and the fan-out must
    // still answer with all four strategies rather than 400.
    let sliced = client
        .compare(
            created.dataset_id,
            &request.clone().with_time_range(10i64, 25i64),
            None,
        )
        .unwrap();
    assert_eq!(sliced.strategies.len(), 4);
    assert!(
        2 * sliced.window + 2 <= 16,
        "window {} must fit the 16-point slice",
        sliced.window
    );
    assert!(sliced
        .strategies
        .iter()
        .all(|row| row.result.stats.n_points == 16));
    let err = client
        .compare_value(created.dataset_id, &request, Some(40))
        .unwrap_err();
    match err {
        ClientError::Api(e) => {
            assert_eq!((e.status, e.kind.as_str()), (400, "invalid_request"));
            assert!(e.message.contains("window"), "{}", e.message);
        }
        other => panic!("expected an API error, got {other}"),
    }
    drop(client);
    handle.shutdown();
}

/// Golden acceptance of the parallel `/compare` fan-out: the canonical
/// response (all four strategies' cuts, chosen K, K-variance curves,
/// distance percents and objective ranks on the synthetic corpus dataset)
/// is pinned byte-for-byte in `tests/golden_compare.jsonl` and must
/// reproduce at thread counts 1, 2 and 8 — the determinism contract of
/// the intra-query parallel layer, end-to-end through the server.
///
/// Regenerate after an intentional engine change with
/// `TSX_REGEN_GOLDEN=1 cargo test --test integration_server golden`.
#[test]
fn golden_compare_response_reproduces_at_thread_counts_1_2_8() {
    let mut handle = Server::bind(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let data = dataset();
    let mut client = Client::new(handle.local_addr());
    let created = client
        .register(&data.schema(), &data.query(), &data.rows_between(0, 60))
        .unwrap();
    let request = requests().remove(0);
    // Warm the cube so every compare (any thread count) reports identical
    // cache provenance.
    client.explain_value(created.dataset_id, &request).unwrap();

    let lines: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let value = client
                .compare_value(
                    created.dataset_id,
                    &request.clone().with_threads(threads),
                    None,
                )
                .unwrap();
            serde_json::to_string(&canonical_compare(&value)).unwrap()
        })
        .collect();
    assert_eq!(lines[0], lines[1], "threads=2 diverged from sequential");
    assert_eq!(lines[0], lines[2], "threads=8 diverged from sequential");

    if std::env::var("TSX_REGEN_GOLDEN").is_ok() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/golden_compare.jsonl"
        );
        std::fs::write(path, format!("{}\n", lines[0])).unwrap();
        panic!("golden_compare.jsonl regenerated; rerun without TSX_REGEN_GOLDEN");
    }
    let golden = include_str!("golden_compare.jsonl")
        .lines()
        .next()
        .expect("golden file has the canonical /compare JSON on line 1");
    assert_eq!(
        lines[0], golden,
        "/compare response diverged from the pinned golden"
    );
    drop(client);
    handle.shutdown();
}

/// Concurrency stress: 8 keep-alive HTTP clients hammering `/explain` +
/// `/compare` against a registry whose global budget admits ~2 cubes,
/// with intra-query parallelism active (server default 2 threads) — the
/// server worker pool and `ParallelCtx`'s scoped threads nest without
/// deadlock, evictions churn and are counted, and every response matches
/// a single-threaded (`threads = 1`) replay computed upfront.
#[test]
fn stress_parallel_clients_with_evictions_match_sequential_replay() {
    let data = dataset();
    // Size one cube by probing a throwaway server.
    let probe = {
        let mut handle = Server::bind(ServerConfig::default()).unwrap();
        let mut client = Client::new(handle.local_addr());
        let created = client
            .register(&data.schema(), &data.query(), &data.rows_between(0, 60))
            .unwrap();
        client
            .explain_value(created.dataset_id, &requests()[0])
            .unwrap();
        let stats = client.stats(created.dataset_id).unwrap();
        let bytes = stats.get("cache_bytes").and_then(Value::as_f64).unwrap() as usize;
        drop(client);
        handle.shutdown();
        bytes
    };
    assert!(probe > 0);

    let mut handle = Server::bind(ServerConfig {
        workers: 4,
        memory_budget: probe * 2, // ~2 cubes: eviction pressure is real
        threads: Some(2),         // intra-query parallelism active
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let mut client = Client::new(addr);
    let created = client
        .register(&data.schema(), &data.query(), &data.rows_between(0, 60))
        .unwrap();

    // Three cube keys in play (default, max_order 1, smoothing) exceed
    // the 2-cube budget; the rotation forces rebuild/eviction churn.
    let mix: Vec<ExplainRequest> = vec![
        requests()[0].clone(),
        requests()[0].clone().with_max_order(1),
        requests()[0].clone().with_smoothing(5),
    ];

    // Single-threaded replays, computed before any concurrency. Eviction
    // churn legitimately flips cube provenance, so `cube_from_cache` is
    // stripped along with latency (see `strip_cache_flag`).
    let explain_refs: Vec<Value> = mix
        .iter()
        .map(|request| {
            let value = client
                .explain_value(created.dataset_id, &request.clone().with_threads(1))
                .unwrap();
            strip_cache_flag(&value)
        })
        .collect();
    let compare_ref = strip_compare(
        &client
            .compare_value(
                created.dataset_id,
                &requests()[0].clone().with_threads(1),
                None,
            )
            .unwrap(),
    );

    let joins: Vec<_> = (0..8)
        .map(|i| {
            let mix = mix.clone();
            let explain_refs = explain_refs.clone();
            let compare_ref = compare_ref.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                for round in 0..3 {
                    let request = &mix[(i + round) % mix.len()];
                    let got = client.explain_value(created.dataset_id, request).unwrap();
                    assert_eq!(
                        strip_cache_flag(&got),
                        explain_refs[(i + round) % mix.len()],
                        "client {i} round {round}: /explain diverged from replay"
                    );
                    let got = client
                        .compare_value(created.dataset_id, &mix[0], None)
                        .unwrap();
                    assert_eq!(
                        strip_compare(&got),
                        compare_ref,
                        "client {i} round {round}: /compare diverged from replay"
                    );
                }
            })
        })
        .collect();
    for join in joins {
        join.join().expect("no client thread may panic");
    }

    // The tight budget must have bitten, and nothing broke doing so.
    let metrics = client.metrics().unwrap();
    let registry = metrics.get("registry").cloned().unwrap();
    let totals = registry.get("totals").cloned().unwrap();
    assert!(
        totals
            .get("cube_evictions")
            .and_then(Value::as_f64)
            .unwrap()
            > 0.0,
        "the 2-cube budget must have forced evictions"
    );
    let server = metrics.get("server").cloned().unwrap();
    assert_eq!(server.get("panics").and_then(Value::as_f64), Some(0.0));
    let responses = server.get("responses").cloned().unwrap();
    assert_eq!(responses.get("5xx").and_then(Value::as_f64), Some(0.0));
    // Parallel execution was genuinely active.
    let parallel = server.get("parallel").cloned().unwrap();
    assert!(
        parallel
            .get("parallel_explains")
            .and_then(Value::as_f64)
            .unwrap()
            > 0.0,
        "intra-query parallelism must have been active"
    );
    drop(client);
    handle.shutdown();
}

/// End-to-end deadline acceptance: a request carrying a tiny `timeout_ms`
/// is answered with a well-formed `504 deadline_exceeded` — `x-request-id`
/// echoed, honest elapsed/budget fields — while `/healthz` stays live on
/// the same server, and a follow-up request *without* a deadline on the
/// same session reproduces the pinned golden `/compare` bytes: the
/// cancelled request left no partial state behind.
#[test]
fn deadline_504_is_wellformed_and_leaves_no_state_behind() {
    let mut handle = Server::bind(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let data = dataset();
    let mut client = Client::new(handle.local_addr());
    let created = client
        .register(&data.schema(), &data.query(), &data.rows_between(0, 60))
        .unwrap();
    let request = requests().remove(0);

    // Over-budget explain: a zero budget deterministically trips at the
    // pipeline's entry poll, through the real engine path.
    let err = client
        .explain_value(created.dataset_id, &request.clone().with_timeout_ms(0))
        .unwrap_err();
    match err {
        ClientError::Api(e) => {
            assert_eq!((e.status, e.kind.as_str()), (504, "deadline_exceeded"));
            let info = e.deadline.expect("deadline 504s carry budget accounting");
            assert_eq!(info.budget_ms, 0, "the effective budget must be honest");
            assert!(e.message.contains("discarded"), "{}", e.message);
        }
        other => panic!("expected a deadline API error, got {other}"),
    }

    // The 504 is a first-class response: x-request-id echoed like on any
    // other route.
    let body = serde_json::to_string(&request.clone().with_timeout_ms(0)).unwrap();
    let response = client
        .raw(
            "POST",
            &format!("/datasets/{}/explain", created.dataset_id),
            Some(&body),
            &[("x-request-id", "deadline-acceptance-1")],
        )
        .unwrap();
    assert_eq!(response.status, 504);
    assert!(
        response
            .headers
            .iter()
            .any(|(n, v)| n.eq_ignore_ascii_case("x-request-id") && v == "deadline-acceptance-1"),
        "the 504 must echo the supplied request id"
    );

    // An over-budget /compare takes the same 504 path.
    let err = client
        .compare_value(
            created.dataset_id,
            &request.clone().with_timeout_ms(0),
            None,
        )
        .unwrap_err();
    match err {
        ClientError::Api(e) => assert_eq!((e.status, e.kind.as_str()), (504, "deadline_exceeded")),
        other => panic!("expected a deadline API error, got {other}"),
    }

    // The server is unharmed: /healthz answers on the same connection.
    let health = client.raw("GET", "/healthz", None, &[]).unwrap();
    assert_eq!(health.status, 200);

    // Follow-up without a deadline on the same session: the pinned golden
    // /compare bytes reproduce — no half-built cube, no poisoned memo.
    // (Warm the cube first exactly like the golden test does, so cache
    // provenance matches the pinned line.)
    client.explain_value(created.dataset_id, &request).unwrap();
    let value = client
        .compare_value(created.dataset_id, &request, None)
        .unwrap();
    let line = serde_json::to_string(&canonical_compare(&value)).unwrap();
    let golden = include_str!("golden_compare.jsonl")
        .lines()
        .next()
        .expect("golden file has the canonical /compare JSON on line 1");
    assert_eq!(
        line, golden,
        "post-504 /compare diverged from the pinned golden"
    );

    // The deadline metrics block counted every 504 (three above). All
    // three tripped during the cube build — engine compute had begun, so
    // they also count as in-flight cancellations (cooperatively abandoned
    // work), and the discarded partial cubes were never cached.
    let metrics = client.metrics().unwrap();
    let deadlines = metrics
        .get("server")
        .and_then(|s| s.get("deadlines"))
        .cloned()
        .expect("the server metrics carry a deadlines block");
    assert_eq!(
        deadlines.get("deadline_exceeded").and_then(Value::as_f64),
        Some(3.0)
    );
    assert_eq!(
        deadlines.get("cancelled_inflight").and_then(Value::as_f64),
        Some(3.0)
    );
    drop(client);
    handle.shutdown();
}

#[test]
fn errors_map_to_structured_statuses() {
    let mut handle = Server::bind(ServerConfig::default()).unwrap();
    let data = dataset();
    let mut client = Client::new(handle.local_addr());

    // Unknown dataset → 404 with a machine-readable kind.
    let err = client.explain_value(999, &requests()[0]).unwrap_err();
    match err {
        ClientError::Api(e) => {
            assert_eq!(e.status, 404);
            assert_eq!(e.kind, "unknown_dataset");
        }
        other => panic!("expected an API error, got {other}"),
    }

    let created = client
        .register(&data.schema(), &data.query(), &data.rows_between(0, 20))
        .unwrap();

    // Invalid explain request → 400 invalid_request.
    let err = client
        .explain_value(created.dataset_id, &ExplainRequest::new(["nope"]))
        .unwrap_err();
    match err {
        ClientError::Api(e) => {
            assert_eq!((e.status, e.kind.as_str()), (400, "invalid_request"));
            assert!(e.message.contains("nope"));
        }
        other => panic!("expected an API error, got {other}"),
    }

    // Malformed rows → 400 naming the offending row.
    let err = client
        .append_rows(
            created.dataset_id,
            &[vec![Datum::Attr(99i64.into())]], // wrong arity
        )
        .unwrap_err();
    match err {
        ClientError::Api(e) => {
            assert_eq!(e.status, 400);
            assert!(e.message.contains("row 0"), "{}", e.message);
        }
        other => panic!("expected an API error, got {other}"),
    }

    // Registering an empty dataset then explaining → 409 no_data.
    let empty = client.register(&data.schema(), &data.query(), &[]).unwrap();
    let err = client
        .explain_value(empty.dataset_id, &requests()[0])
        .unwrap_err();
    match err {
        ClientError::Api(e) => assert_eq!((e.status, e.kind.as_str()), (409, "no_data")),
        other => panic!("expected an API error, got {other}"),
    }

    // DELETE then use → 404.
    client.remove(created.dataset_id).unwrap();
    let err = client.stats(created.dataset_id).unwrap_err();
    match err {
        ClientError::Api(e) => assert_eq!(e.status, 404),
        other => panic!("expected an API error, got {other}"),
    }
    drop(client);
    handle.shutdown();
}

#[test]
fn metrics_count_requests_and_cache_state() {
    let mut handle = Server::bind(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let data = dataset();
    let mut client = Client::new(handle.local_addr());
    let created = client
        .register(&data.schema(), &data.query(), &data.rows_between(0, 30))
        .unwrap();
    for request in requests().iter().take(3) {
        client.explain(created.dataset_id, request).unwrap();
    }
    let _ = client.explain_value(999, &requests()[0]); // one 404

    let metrics = client.metrics().unwrap();
    let server = metrics.get("server").cloned().unwrap();
    let registry = metrics.get("registry").cloned().unwrap();
    let responses = server.get("responses").cloned().unwrap();
    let n2xx = responses.get("2xx").and_then(Value::as_f64).unwrap();
    let n4xx = responses.get("4xx").and_then(Value::as_f64).unwrap();
    assert!(n2xx >= 4.0, "register + 3 explains: {n2xx}");
    assert!(n4xx >= 1.0);
    assert_eq!(registry.get("datasets").and_then(Value::as_f64), Some(1.0));
    let totals = registry.get("totals").cloned().unwrap();
    assert_eq!(totals.get("requests").and_then(Value::as_f64), Some(3.0));
    assert!(registry.get("cache_bytes").and_then(Value::as_f64).unwrap() > 0.0);
    // The segment-cost memo's traffic is aggregated server-wide: any
    // priced explain records misses, and the default auto-K requests
    // re-price their final segments, so hits accumulate too.
    let memo = server.get("memo").cloned().unwrap();
    assert!(memo.get("misses").and_then(Value::as_f64).unwrap() > 0.0);
    assert!(memo.get("hits").and_then(Value::as_f64).unwrap() > 0.0);
    drop(client);
    handle.shutdown();
}

#[test]
fn concurrent_clients_get_identical_answers() {
    let mut handle = Server::bind(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let data = dataset();
    let mut client = Client::new(handle.local_addr());
    let created = client
        .register(&data.schema(), &data.query(), &data.rows_between(0, 60))
        .unwrap();
    let addr = handle.local_addr();
    let request = requests().remove(0);
    // Warm the cube cache first: every thread's answer is then a cache
    // hit, byte-identical to this reference (including its stats block).
    client.explain_value(created.dataset_id, &request).unwrap();
    let reference = canonical(&client.explain_value(created.dataset_id, &request).unwrap());

    let joins: Vec<_> = (0..8)
        .map(|_| {
            let request = request.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                for _ in 0..5 {
                    let answer = client.explain_value(created.dataset_id, &request).unwrap();
                    assert_eq!(canonical(&answer), reference);
                }
            })
        })
        .collect();
    for join in joins {
        join.join().expect("no client thread may panic");
    }
    drop(client); // close the keep-alive connection so shutdown drains fast
    handle.shutdown();
}
