//! Acceptance of the strategy-pluggable segmenter API: every §7.2
//! strategy is selectable per-request through one serving surface, the
//! default spec reproduces the pre-redesign pipeline byte-for-byte, and
//! per-strategy parameters are validated upfront.

use serde::Value;
use tsexplain::{
    ExplainRequest, ExplainSession, Explainer, InvalidRequest, Optimizations, Relation,
    SegmenterSpec, StreamingExplainer, TsExplainError, STRATEGIES,
};
use tsexplain_datagen::synthetic::{SyntheticConfig, SyntheticDataset};

/// The canonical corpus dataset (same generator settings the server
/// integration suite and the pre-redesign golden capture used).
fn dataset() -> SyntheticDataset {
    SyntheticDataset::generate(SyntheticConfig {
        n_points: 60,
        seed: 7,
        ..SyntheticConfig::default()
    })
}

fn relation(data: &SyntheticDataset) -> Relation {
    let mut b = Relation::builder(data.schema());
    for row in data.rows_between(0, 60) {
        b.push_row(row).unwrap();
    }
    b.finish()
}

fn session() -> ExplainSession {
    let data = dataset();
    ExplainSession::new(relation(&data), data.query()).unwrap()
}

fn base_request() -> ExplainRequest {
    ExplainRequest::new(["category"]).with_optimizations(Optimizations::none())
}

/// Serializes a result with the nondeterministic latency block removed,
/// plus any keys named in `also_drop`.
fn canonical(result: &tsexplain::ExplainResult, also_drop: &[&str]) -> String {
    let mut value = serde_json::to_value(result);
    if let Value::Object(map) = &mut value {
        map.remove("latency");
        for key in also_drop {
            map.remove(*key);
        }
    }
    serde_json::to_string(&value).unwrap()
}

/// The default spec must reproduce the pre-redesign pipeline exactly: the
/// golden file was captured from the PR-2-era engine (before the
/// `Segmenter` trait existed) on this exact dataset and request, with the
/// latency and stats blocks stripped.
#[test]
fn default_spec_reproduces_pre_redesign_results_byte_for_byte() {
    let golden = include_str!("golden_default_spec.jsonl")
        .lines()
        .next()
        .expect("golden file has the canonical JSON on line 1");
    let result = session().explain(&base_request()).unwrap();
    // The strategy field is new in this redesign; the golden predates it.
    assert_eq!(canonical(&result, &["stats", "strategy"]), golden);
    assert_eq!(result.strategy, "dp");
    assert_eq!(result.segmentation.cuts(), &[13, 31]);
    assert_eq!(result.chosen_k, 3);
}

#[test]
fn all_four_strategies_serve_from_one_session_and_one_cube() {
    let mut s = session();
    let mut seen = Vec::new();
    for spec in SegmenterSpec::all_for(60) {
        let result = s.explain(&base_request().with_segmenter(spec)).unwrap();
        assert_eq!(result.strategy, spec.name());
        assert_eq!(result.segments.len(), result.chosen_k);
        assert_eq!(result.stats.n_points, 60);
        assert!(result.total_variance.is_finite() && result.total_variance >= 0.0);
        // The cube-backed explanation stage ran regardless of strategy.
        assert!(result
            .segments
            .iter()
            .all(|seg| seg.explanations.iter().all(|e| !e.label.is_empty())));
        seen.push(result.strategy.clone());
    }
    assert_eq!(seen, STRATEGIES);
    assert_eq!(s.stats().cubes_built, 1, "strategies must share one cube");
    assert_eq!(s.stats().cube_cache_hits, 3);
}

#[test]
fn strategy_round_trips_across_the_wire_encoding() {
    for spec in SegmenterSpec::all_for(60) {
        let request = base_request().with_segmenter(spec).with_fixed_k(3);
        let json = serde_json::to_string(&request).unwrap();
        let back: ExplainRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, request);
        // The decoded request serves identically to the original.
        let mut s = session();
        let a = s.explain(&request).unwrap();
        let b = s.explain(&back).unwrap();
        assert_eq!(a.segmentation, b.segmentation);
        assert_eq!(a.strategy, b.strategy);
    }
}

#[test]
fn upfront_validation_rejects_bad_windows_before_any_work() {
    let mut s = session();
    // Structurally degenerate windows (< 2) never touch the pipeline.
    for spec in [SegmenterSpec::fluss(0), SegmenterSpec::nnsegment(1)] {
        let err = s.explain(&base_request().with_segmenter(spec)).unwrap_err();
        assert!(
            matches!(
                err,
                TsExplainError::InvalidRequest(InvalidRequest::SegmenterWindow { n: 0, .. })
            ),
            "{spec}: {err:?}"
        );
    }
    assert_eq!(s.stats().cubes_built, 0, "rejected before cube work");

    // Oversized windows are rejected against the series length: n = 60
    // admits FLUSS windows up to 29 and NNSegment windows up to 29.
    for (spec, ok) in [
        (SegmenterSpec::fluss(29), true),
        (SegmenterSpec::fluss(30), false),
        (SegmenterSpec::nnsegment(29), true),
        (SegmenterSpec::nnsegment(30), false),
    ] {
        let outcome = s.explain(&base_request().with_segmenter(spec));
        assert_eq!(outcome.is_ok(), ok, "{spec}: {outcome:?}");
        if let Err(err) = outcome {
            assert!(matches!(
                err,
                TsExplainError::InvalidRequest(InvalidRequest::SegmenterWindow { n: 60, .. })
            ));
        }
    }

    // The same validation applies to the *sliced* length of a windowed
    // request: 21 points admit a FLUSS window of 9, not 10.
    let windowed = base_request().with_time_range(0i64, 20i64);
    assert!(s
        .explain(&windowed.clone().with_segmenter(SegmenterSpec::fluss(9)))
        .is_ok());
    let err = s
        .explain(&windowed.with_segmenter(SegmenterSpec::fluss(10)))
        .unwrap_err();
    assert!(matches!(
        err,
        TsExplainError::InvalidRequest(InvalidRequest::SegmenterWindow { n: 21, .. })
    ));
}

#[test]
fn streaming_refreshes_serve_baseline_strategies_too() {
    let data = dataset();
    let request = base_request().with_segmenter(SegmenterSpec::BottomUp);
    let mut streaming = StreamingExplainer::new(request, data.schema(), data.query()).unwrap();
    streaming.append_rows(data.rows_between(0, 40)).unwrap();
    let first = streaming.refresh().unwrap();
    assert_eq!(first.strategy, "bottom_up");
    assert_eq!(first.stats.n_points, 40);
    streaming.append_rows(data.rows_between(40, 60)).unwrap();
    let second = streaming.refresh().unwrap();
    assert_eq!(second.stats.n_points, 60);
    // Shape strategies segment the full-resolution series: a refresh after
    // appends matches a cold batch run exactly.
    let mut batch = session();
    let cold = batch
        .explain(&base_request().with_segmenter(SegmenterSpec::BottomUp))
        .unwrap();
    assert_eq!(second.segmentation, cold.segmentation);
    // Strategy switching through the Explainer trait works mid-stream.
    let dp = Explainer::explain(&mut streaming, &base_request()).unwrap();
    assert_eq!(dp.strategy, "dp");
    assert_eq!(streaming.stats().cubes_built, 1, "one cube throughout");
}

#[test]
fn compare_style_fanout_agrees_with_individual_requests() {
    // What the server's /compare endpoint does, in-process: one request
    // fanned across all four strategies, each answer identical to asking
    // for that strategy directly.
    let mut fan = session();
    let fanned: Vec<_> = SegmenterSpec::all_for(60)
        .into_iter()
        .map(|spec| fan.explain(&base_request().with_segmenter(spec)).unwrap())
        .collect();
    for (spec, fanned_result) in SegmenterSpec::all_for(60).into_iter().zip(&fanned) {
        let mut solo = session();
        let direct = solo.explain(&base_request().with_segmenter(spec)).unwrap();
        assert_eq!(direct.segmentation, fanned_result.segmentation);
        assert_eq!(direct.total_variance, fanned_result.total_variance);
    }
    // All four objectives are on one scale; the DP's is the minimum among
    // strategies that settled on the same K.
    let dp = &fanned[0];
    for other in &fanned[1..] {
        if other.chosen_k == dp.chosen_k {
            assert!(dp.total_variance <= other.total_variance + 1e-9);
        }
    }
}
