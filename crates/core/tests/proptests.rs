//! Property-based tests for the serving pipeline: result validity on
//! arbitrary workloads, elbow sanity, optimization-equivalence,
//! strategy-dispatch invariants, and all-or-nothing cancellation.

use proptest::prelude::*;
use tsexplain::{
    elbow_k, AggQuery, CancelToken, Datum, ExplainRequest, ExplainSession, Field, KSelection,
    Optimizations, Relation, Schema, SegmenterSpec, TsExplainError,
};

fn rows_strategy() -> impl Strategy<Value = Vec<(u8, u8, f64)>> {
    proptest::collection::vec((0u8..12, 0u8..3, 0.1f64..50.0), 15..80)
}

fn build(rows: &[(u8, u8, f64)]) -> Relation {
    let schema = Schema::new(vec![
        Field::dimension("t"),
        Field::dimension("a"),
        Field::measure("v"),
    ])
    .unwrap();
    let mut b = Relation::builder(schema);
    for &(t, a, v) in rows {
        b.push_row(vec![
            Datum::Attr((t as i64).into()),
            Datum::Attr((a as i64).into()),
            Datum::from(v),
        ])
        .unwrap();
    }
    b.finish()
}

fn explain(
    rel: &Relation,
    request: &ExplainRequest,
) -> Result<tsexplain::ExplainResult, tsexplain::TsExplainError> {
    ExplainSession::new(rel.clone(), AggQuery::sum("t", "v"))?.explain(request)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A session produces a structurally valid result on any workload with
    /// at least two timestamps.
    #[test]
    fn explain_result_is_valid(rows in rows_strategy()) {
        let rel = build(&rows);
        let n = match rel.dim_column("t") {
            Ok(col) => col.dict().len(),
            Err(_) => return Ok(()),
        };
        if n < 2 {
            return Ok(());
        }
        let request = ExplainRequest::new(["a"]).with_optimizations(Optimizations::none());
        let result = explain(&rel, &request).unwrap();
        prop_assert_eq!(result.strategy.as_str(), "dp");
        prop_assert_eq!(result.stats.n_points, n);
        prop_assert_eq!(result.segments.len(), result.chosen_k);
        prop_assert_eq!(result.segmentation.k(), result.chosen_k);
        prop_assert_eq!(result.aggregate.len(), n);
        // Segments tile the series with shared boundaries.
        prop_assert_eq!(result.segments.first().unwrap().start, 0);
        prop_assert_eq!(result.segments.last().unwrap().end, n - 1);
        for w in result.segments.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        // The chosen K's cost appears in the curve.
        prop_assert!(result
            .k_variance_curve
            .iter()
            .any(|&(k, v)| k == result.chosen_k && (v - result.total_variance).abs() < 1e-9));
        // Each segment carries at most m explanations with finite γ.
        for seg in &result.segments {
            prop_assert!(seg.explanations.len() <= 3);
            for item in &seg.explanations {
                prop_assert!(item.gamma.is_finite() && item.gamma >= 0.0);
                prop_assert_eq!(item.series.len(), seg.end - seg.start + 1);
            }
        }
    }

    /// Guess-and-verify (exact by construction) never changes the result.
    #[test]
    fn o1_does_not_change_results(rows in rows_strategy(), k in 2usize..5) {
        let rel = build(&rows);
        let n = match rel.dim_column("t") {
            Ok(col) => col.dict().len(),
            Err(_) => return Ok(()),
        };
        if n < k + 1 {
            return Ok(());
        }
        let run = |optimizations: Optimizations| {
            explain(
                &rel,
                &ExplainRequest::new(["a"])
                    .with_optimizations(optimizations)
                    .with_fixed_k(k),
            )
            .unwrap()
        };
        let vanilla = run(Optimizations::none());
        let o1 = run(Optimizations {
            filter_ratio: None,
            guess_and_verify: Some(3),
            sketching: None,
        });
        prop_assert_eq!(vanilla.segmentation.cuts(), o1.segmentation.cuts());
        prop_assert!((vanilla.total_variance - o1.total_variance).abs() < 1e-9);
    }

    /// The default request (no explicit segmenter) and an explicitly
    /// DP-flagged request serialize to byte-identical results modulo
    /// latency — the shim-era behaviour is exactly the default spec.
    #[test]
    fn default_spec_is_the_dp(rows in rows_strategy()) {
        let rel = build(&rows);
        let n = match rel.dim_column("t") {
            Ok(col) => col.dict().len(),
            Err(_) => return Ok(()),
        };
        if n < 2 {
            return Ok(());
        }
        let base = ExplainRequest::new(["a"]).with_optimizations(Optimizations::none());
        prop_assert_eq!(base.segmenter(), SegmenterSpec::Dp);
        let implicit = explain(&rel, &base).unwrap();
        let explicit = explain(&rel, &base.clone().with_segmenter(SegmenterSpec::Dp)).unwrap();
        let canonical = |r: &tsexplain::ExplainResult| {
            let mut v = serde_json::to_value(r);
            if let serde::Value::Object(map) = &mut v {
                map.remove("latency");
            }
            serde_json::to_string(&v).unwrap()
        };
        prop_assert_eq!(canonical(&implicit), canonical(&explicit));
    }

    /// Every strategy yields a structurally valid scheme through the same
    /// pipeline, and the DP's objective is never beaten at equal K.
    #[test]
    fn strategies_are_interchangeable(rows in rows_strategy(), k in 2usize..4) {
        let rel = build(&rows);
        let n = match rel.dim_column("t") {
            Ok(col) => col.dict().len(),
            Err(_) => return Ok(()),
        };
        // Window-parameterized strategies need room (n ≥ 2·2 + 2).
        if n < k + 1 || n < 6 {
            return Ok(());
        }
        let base = ExplainRequest::new(["a"])
            .with_optimizations(Optimizations::none())
            .with_fixed_k(k);
        let dp = explain(&rel, &base).unwrap();
        for spec in [
            SegmenterSpec::BottomUp,
            SegmenterSpec::fluss(2),
            SegmenterSpec::nnsegment(2),
        ] {
            let result = explain(&rel, &base.clone().with_segmenter(spec)).unwrap();
            prop_assert_eq!(result.strategy.as_str(), spec.name());
            prop_assert_eq!(result.segments.len(), result.chosen_k);
            prop_assert!(result.chosen_k <= k);
            prop_assert!(result.total_variance.is_finite());
            // A strategy may settle on fewer segments than requested (e.g.
            // FLUSS deduplicating minima); compare the DP at the *same*
            // segment count — where it is optimal by construction.
            if let Some(&(_, dp_at_k)) = dp
                .k_variance_curve
                .iter()
                .find(|&&(curve_k, _)| curve_k == result.chosen_k)
            {
                prop_assert!(
                    dp_at_k <= result.total_variance + 1e-9,
                    "dp {} beaten by {} at {}",
                    dp_at_k, spec.name(), result.total_variance
                );
            }
        }
    }

    /// Cancellation injected at an arbitrary poll point never corrupts
    /// state: the request either completes byte-identical to an
    /// uncancelled run or errors with `Cancelled` and leaves nothing
    /// behind — a follow-up uncancelled request on the *same* session
    /// (same cube cache) still returns the pristine golden bytes, and
    /// the cube was built exactly once across both attempts.
    #[test]
    fn cancellation_is_all_or_nothing(rows in rows_strategy(), fuse in 0u64..400) {
        let rel = build(&rows);
        let n = match rel.dim_column("t") {
            Ok(col) => col.dict().len(),
            Err(_) => return Ok(()),
        };
        if n < 2 {
            return Ok(());
        }
        let base = ExplainRequest::new(["a"]).with_optimizations(Optimizations::none());
        // Canonical bytes modulo wall-clock (`latency`) and cache
        // provenance (`cube_from_cache` — a cancelled attempt may leave a
        // *complete* cube cached, which is legitimate reuse, not
        // corruption; the answer itself must not change).
        let canonical = |r: &tsexplain::ExplainResult| {
            let mut v = serde_json::to_value(r);
            if let serde::Value::Object(map) = &mut v {
                map.remove("latency");
                if let Some(serde::Value::Object(stats)) = map.get_mut("stats") {
                    stats.remove("cube_from_cache");
                }
            }
            serde_json::to_string(&v).unwrap()
        };
        // The pristine run: a fresh session, no cancellation.
        let golden = canonical(&explain(&rel, &base).unwrap());
        // Inject: the same work with a deterministic poll-count fuse —
        // the request is abandoned at the (fuse+1)-th cooperative poll,
        // wherever in the pipeline that lands.
        let mut session = ExplainSession::new(rel.clone(), AggQuery::sum("t", "v")).unwrap();
        let token = CancelToken::after_polls(fuse);
        match session.explain(&base.clone().with_cancel(token.clone())) {
            // The fuse outlived the request: output must be untouched by
            // the polling (observation only, never part of the answer).
            Ok(result) => prop_assert_eq!(canonical(&result), golden.clone()),
            Err(TsExplainError::Cancelled { stage }) => {
                prop_assert!(
                    ["start", "cube", "segmentation", "cascading"].contains(&stage),
                    "unknown cancellation stage {}", stage
                );
            }
            Err(other) => prop_assert!(false, "unexpected error: {}", other),
        }
        // All-or-nothing: the same session (and its cube cache / counters)
        // answers the uncancelled request with the pristine bytes.
        let after = session.explain(&base).unwrap();
        prop_assert_eq!(canonical(&after), golden);
        // Cache coherence: never a half-built cube. Either the first
        // attempt cached the complete cube (the retry hits it) or it
        // cached nothing (the retry builds it) — exactly one build total.
        prop_assert_eq!(session.stats().cubes_built, 1);
    }

    /// The elbow picks a K present on the curve for any decreasing curve.
    #[test]
    fn elbow_picks_a_curve_point(mut drops in proptest::collection::vec(0.01f64..10.0, 1..20)) {
        let mut value = drops.iter().sum::<f64>() + 1.0;
        let mut curve = Vec::new();
        for (i, d) in drops.drain(..).enumerate() {
            curve.push((i + 1, value));
            value -= d;
        }
        let k = elbow_k(&curve);
        prop_assert!(curve.iter().any(|&(ck, _)| ck == k));
    }

    /// Fixed-K selection is always honoured when feasible.
    #[test]
    fn fixed_k_honoured(rows in rows_strategy(), k in 1usize..6) {
        let rel = build(&rows);
        let n = match rel.dim_column("t") {
            Ok(col) => col.dict().len(),
            Err(_) => return Ok(()),
        };
        if n < 2 || k > n - 1 {
            return Ok(());
        }
        let request = ExplainRequest::new(["a"])
            .with_optimizations(Optimizations::none())
            .with_fixed_k(k);
        prop_assert_eq!(request.k_selection(), KSelection::Fixed(k));
        let result = explain(&rel, &request).unwrap();
        prop_assert_eq!(result.chosen_k, k);
    }
}
