//! The parallel layer's determinism contract as a property: for random
//! relations, random request knobs and thread counts in {1, 2, 8}, a
//! parallel `ExplainResult` serializes **identically** to the sequential
//! (`threads = 1`) run — for every `SegmenterSpec`. Byte-equality of the
//! serialized form (latency stripped — wall-clock is the one legitimately
//! nondeterministic field) is deliberately the strongest possible check:
//! cuts, chosen K, the K-variance curve, every γ, every series value and
//! every pipeline counter must survive the fan-out bit-for-bit.

use proptest::prelude::*;
use serde::Value;
use tsexplain::{
    AggQuery, Datum, ExplainRequest, ExplainSession, Field, Optimizations, Relation, Schema,
    SegmenterSpec,
};

fn rows_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8, f64)>> {
    // (time, attr a, attr b, measure): two explain-by attributes so cube
    // enumeration has several independent subsets to fan out.
    proptest::collection::vec((0u8..24, 0u8..4, 0u8..3, -20.0f64..50.0), 40..160)
}

fn build(rows: &[(u8, u8, u8, f64)]) -> Relation {
    let schema = Schema::new(vec![
        Field::dimension("t"),
        Field::dimension("a"),
        Field::dimension("b"),
        Field::measure("v"),
    ])
    .unwrap();
    let mut builder = Relation::builder(schema);
    for &(t, a, b, v) in rows {
        builder
            .push_row(vec![
                Datum::Attr((t as i64).into()),
                Datum::Attr((a as i64).into()),
                Datum::Attr((b as i64).into()),
                Datum::from(v),
            ])
            .unwrap();
    }
    builder.finish()
}

/// Serializes a result with the latency block removed — wall-clock (and
/// the thread count recorded inside it) is the only part of a response
/// allowed to differ across thread counts.
fn canonical(result: &tsexplain::ExplainResult) -> String {
    let mut value = serde_json::to_value(result);
    if let Value::Object(map) = &mut value {
        map.remove("latency");
    }
    serde_json::to_string(&value).unwrap()
}

fn n_points(rel: &Relation) -> usize {
    rel.dim_column("t").map(|c| c.dict().len()).unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The determinism contract, quantified over workloads, knobs,
    /// strategies and thread counts.
    #[test]
    fn parallel_results_serialize_identically_to_sequential(
        rows in rows_strategy(),
        optimized in 0u8..2,
        top_m in 1usize..4,
        max_order in 1usize..3,
    ) {
        let rel = build(&rows);
        let n = n_points(&rel);
        if n < 8 {
            return Ok(());
        }
        let optimizations = if optimized == 1 {
            Optimizations::all()
        } else {
            Optimizations::none()
        };
        let window = tsexplain::default_window_for(n);
        for spec in SegmenterSpec::all_with_window(window) {
            let request = ExplainRequest::new(["a", "b"])
                .with_optimizations(optimizations)
                .with_top_m(top_m)
                .with_max_order(max_order)
                .with_segmenter(spec);
            if request.validate(rel.schema(), "t").is_err() {
                continue;
            }
            // Fresh sessions per thread count: the cube build itself must
            // be thread-count-independent too, not just the pipeline.
            let mut sequential =
                ExplainSession::new(rel.clone(), AggQuery::sum("t", "v")).unwrap();
            let reference = match sequential.explain(&request.clone().with_threads(1)) {
                Ok(result) => canonical(&result),
                // Infeasible on this workload (e.g. window vs a short
                // series): the rejection must be thread-count-independent.
                Err(_) => {
                    for threads in [2usize, 8] {
                        let mut s =
                            ExplainSession::new(rel.clone(), AggQuery::sum("t", "v")).unwrap();
                        prop_assert!(
                            s.explain(&request.clone().with_threads(threads)).is_err(),
                            "{spec}: sequential rejected but threads={threads} answered"
                        );
                    }
                    continue;
                }
            };
            for threads in [2usize, 8] {
                let mut session =
                    ExplainSession::new(rel.clone(), AggQuery::sum("t", "v")).unwrap();
                let result = session
                    .explain(&request.clone().with_threads(threads))
                    .unwrap();
                prop_assert_eq!(
                    &canonical(&result),
                    &reference,
                    "{} diverged at threads={}",
                    spec,
                    threads
                );
            }
        }
    }

    /// Streaming sessions keep the contract too: appends extend cached
    /// cubes incrementally, and a parallel refresh must equal a sequential
    /// one over the same history.
    #[test]
    fn parallel_streaming_refresh_matches_sequential(rows in rows_strategy()) {
        let rel = build(&rows);
        if n_points(&rel) < 8 {
            return Ok(());
        }
        let request = ExplainRequest::new(["a"]).with_optimizations(Optimizations::none());
        let run = |threads: usize| {
            let mut session = ExplainSession::new(rel.clone(), AggQuery::sum("t", "v")).unwrap();
            let warm = session
                .explain(&request.clone().with_threads(threads))
                .unwrap();
            // A tail append past the horizon, then a refreshed answer.
            session
                .append_rows(vec![vec![
                    Datum::Attr(200i64.into()),
                    Datum::Attr(0i64.into()),
                    Datum::Attr(0i64.into()),
                    Datum::from(7.5),
                ]])
                .unwrap();
            let refreshed = session
                .explain(&request.clone().with_threads(threads))
                .unwrap();
            (canonical(&warm), canonical(&refreshed))
        };
        let reference = run(1);
        for threads in [2usize, 8] {
            prop_assert_eq!(&run(threads), &reference, "threads={}", threads);
        }
    }
}
