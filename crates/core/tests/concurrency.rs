//! Concurrency acceptance for the multi-tenant [`SessionRegistry`]: one
//! registry wrapped in an `Arc`, hammered from many threads with
//! interleaved `explain` and `append_rows` calls under a deliberately
//! tight global memory budget (so cross-tenant evictions churn throughout
//! the run), must produce results identical to a single-threaded replay —
//! no torn cubes, no poisoned locks.

use std::sync::Arc;

use serde::{Serialize, Value};
use tsexplain::{
    AggQuery, Datum, DiffMetric, ExplainRequest, ExplainSession, Optimizations, Relation, Schema,
    SessionRegistry,
};
use tsexplain_relation::Field;

const THREADS: usize = 8;

fn schema() -> Schema {
    Schema::new(vec![
        Field::dimension("t"),
        Field::dimension("state"),
        Field::measure("v"),
    ])
    .unwrap()
}

/// Deterministic three-phase rows; `salt` differentiates tenants so every
/// thread owns a genuinely different dataset.
fn rows_for(range: std::ops::Range<i64>, salt: u64) -> Vec<Vec<Datum>> {
    let s = salt as f64;
    let mut rows = Vec::new();
    for t in range {
        let ny = if t <= 10 {
            (8.0 + s) * t as f64
        } else {
            80.0 + s
        };
        let ca = if t <= 10 {
            2.0 + s
        } else if t <= 20 {
            2.0 + s + 9.0 * (t - 10) as f64
        } else {
            92.0 + s
        };
        let tx = if t <= 20 {
            5.0
        } else {
            5.0 + (10.0 + s) * (t - 20) as f64
        };
        for (state, v) in [("NY", ny), ("CA", ca), ("TX", tx)] {
            rows.push(vec![
                Datum::Attr(t.into()),
                Datum::from(state),
                Datum::from(v),
            ]);
        }
    }
    rows
}

fn relation(range: std::ops::Range<i64>, salt: u64) -> Relation {
    let mut b = Relation::builder(schema());
    for row in rows_for(range, salt) {
        b.push_row(row).unwrap();
    }
    b.finish()
}

/// The rotating per-thread request mix (differing cube keys and knobs, so
/// eviction pressure is real).
fn request(i: usize) -> ExplainRequest {
    let base = ExplainRequest::new(["state"]).with_optimizations(Optimizations::none());
    match i % 4 {
        0 => base,
        1 => base.with_fixed_k(2),
        2 => base.with_max_order(1),
        _ => base
            .with_top_m(1)
            .with_diff_metric(DiffMetric::RelativeChange),
    }
}

/// A result with its nondeterministic parts removed: latency timings and
/// the cache-provenance flag (eviction churn legitimately flips whether an
/// answer came from a cached cube — never what the answer is).
fn canonical(result: &impl Serialize) -> Value {
    let mut value = serde_json::to_value(result);
    if let Value::Object(map) = &mut value {
        map.remove("latency");
        if let Some(Value::Object(stats)) = map.get_mut("stats") {
            stats.remove("cube_from_cache");
        }
    }
    value
}

#[test]
fn concurrent_explains_and_appends_match_single_threaded_replay() {
    // Budget ≈ a couple of cubes: with 1 + THREADS tenants and 3 cube keys
    // per tenant in play, eviction runs constantly.
    let probe = {
        let mut s = ExplainSession::new(relation(0..21, 0), AggQuery::sum("t", "v")).unwrap();
        s.explain(&request(0)).unwrap();
        s.cache_bytes()
    };
    let registry = Arc::new(SessionRegistry::with_memory_budget(probe * 2));

    // A shared read-mostly tenant every thread queries…
    let shared = registry
        .register(relation(0..30, 99), AggQuery::sum("t", "v"))
        .unwrap();
    // …plus one tenant per thread, fed by interleaved appends.
    let own: Vec<_> = (0..THREADS)
        .map(|i| {
            registry
                .register(relation(0..12, i as u64), AggQuery::sum("t", "v"))
                .unwrap()
        })
        .collect();

    // Single-threaded references, computed before any concurrency starts.
    let shared_reference: Vec<Value> = (0..4)
        .map(|i| {
            let mut s = ExplainSession::new(relation(0..30, 99), AggQuery::sum("t", "v")).unwrap();
            canonical(&s.explain(&request(i)).unwrap())
        })
        .collect();

    let threads: Vec<_> = (0..THREADS)
        .map(|i| {
            let registry = Arc::clone(&registry);
            let shared_reference = shared_reference.clone();
            let own = own[i];
            std::thread::spawn(move || {
                // Interleave: probe the shared tenant, grow the own tenant,
                // explain the own tenant — repeatedly, with rotating knobs.
                for round in 0..3 {
                    for (k, reference) in shared_reference.iter().enumerate() {
                        let got = registry.explain(shared, &request(k)).unwrap();
                        assert_eq!(
                            &canonical(&got),
                            reference,
                            "thread {i}: shared tenant diverged (round {round}, request {k})"
                        );
                    }
                    let lo = 12 + round * 3;
                    registry
                        .append_rows(own, rows_for(lo as i64..(lo + 3) as i64, i as u64))
                        .unwrap();
                    registry.explain(own, &request(i)).unwrap();
                    registry.explain(own, &request(i + 1)).unwrap();
                }
                // The final answer over the fully-grown own tenant.
                registry.explain(own, &request(0)).unwrap()
            })
        })
        .collect();

    let finals: Vec<_> = threads
        .into_iter()
        .map(|t| t.join().expect("no thread may panic (poisoned locks)"))
        .collect();

    // Every tenant's concurrent result equals a cold single-threaded
    // replay over the same history.
    for (i, concurrent) in finals.iter().enumerate() {
        let mut replay =
            ExplainSession::new(relation(0..21, i as u64), AggQuery::sum("t", "v")).unwrap();
        let expected = replay.explain(&request(0)).unwrap();
        assert_eq!(
            canonical(concurrent),
            canonical(&expected),
            "tenant {i}: concurrent result != single-threaded replay"
        );
    }

    // The registry survived: every tenant still answers, stats aggregate,
    // and the eviction budget actually bit during the run.
    let stats = registry.stats();
    assert_eq!(stats.datasets, 1 + THREADS);
    assert_eq!(
        stats.totals.requests,
        (THREADS * (3 * 4 + 3 * 2 + 1)) as u64,
        "every explain must be accounted"
    );
    assert!(
        stats.totals.cube_evictions > 0,
        "the tight budget must have forced evictions"
    );
    assert!(
        stats.cache_bytes <= probe * 2 + probe,
        "cache near budget after quiescence (got {}, budget {})",
        stats.cache_bytes,
        probe * 2
    );
    for id in registry.ids() {
        registry.dataset_stats(id).unwrap();
    }
}
