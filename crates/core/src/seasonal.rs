use crate::error::TsExplainError;

/// An additive classical decomposition `series = trend + seasonal +
/// residual` (paper §8, "Seasonal Datasets", via its ref.\ 15).
///
/// Users of seasonal KPIs can decompose first and run TSExplain on the
/// trend (or explain the raw series and read the repeated explanation
/// pattern as the periodicity).
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// Centered-moving-average trend.
    pub trend: Vec<f64>,
    /// Period-indexed seasonal component (mean-centred), tiled to the
    /// series length.
    pub seasonal: Vec<f64>,
    /// `series − trend − seasonal`.
    pub residual: Vec<f64>,
}

/// Classical additive decomposition with period `period`.
///
/// The trend is a centered moving average of length `period` (the usual
/// 2×m average for even periods); boundary positions reuse the nearest
/// interior trend value so every component has the series' length.
pub fn classical_decompose(series: &[f64], period: usize) -> Result<Decomposition, TsExplainError> {
    let n = series.len();
    if period < 2 || n < 2 * period {
        return Err(TsExplainError::PeriodTooLong { n, period });
    }

    // Centered moving average.
    let half = period / 2;
    let mut trend = vec![f64::NAN; n];
    if period % 2 == 1 {
        for t in half..n - half {
            trend[t] = series[t - half..=t + half].iter().sum::<f64>() / period as f64;
        }
    } else {
        // 2×m MA: average of two adjacent m-windows.
        for t in half..n - half {
            let a: f64 = series[t - half..t + half].iter().sum::<f64>() / period as f64;
            let b: f64 = series[t - half + 1..=t + half].iter().sum::<f64>() / period as f64;
            trend[t] = (a + b) / 2.0;
        }
    }
    // Extend to the boundaries.
    let first = trend[half];
    let last = trend[n - half - 1];
    trend[..half].fill(first);
    trend[n - half..].fill(last);

    // Seasonal means of the detrended series, per phase.
    let mut phase_sum = vec![0.0; period];
    let mut phase_count = vec![0usize; period];
    for t in 0..n {
        let d = series[t] - trend[t];
        phase_sum[t % period] += d;
        phase_count[t % period] += 1;
    }
    let mut phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_count)
        .map(|(s, &c)| s / c as f64)
        .collect();
    // Centre the seasonal component so it sums to ~0 over one period.
    let grand = phase_mean.iter().sum::<f64>() / period as f64;
    for m in &mut phase_mean {
        *m -= grand;
    }

    let seasonal: Vec<f64> = (0..n).map(|t| phase_mean[t % period]).collect();
    let residual: Vec<f64> = (0..n).map(|t| series[t] - trend[t] - seasonal[t]).collect();
    Ok(Decomposition {
        trend,
        seasonal,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_trend_plus_sine() {
        let period = 12;
        let n = 120;
        let series: Vec<f64> = (0..n)
            .map(|t| {
                2.0 * t as f64 + 10.0 * (t as f64 * std::f64::consts::TAU / period as f64).sin()
            })
            .collect();
        let d = classical_decompose(&series, period).unwrap();
        // Interior trend should track 2t closely.
        for t in period..n - period {
            assert!((d.trend[t] - 2.0 * t as f64).abs() < 1.0, "t={t}");
        }
        // Seasonal repeats with the period and is non-trivial.
        for t in 0..n - period {
            assert!((d.seasonal[t] - d.seasonal[t + period]).abs() < 1e-9);
        }
        let amp = d
            .seasonal
            .iter()
            .cloned()
            .fold(0.0f64, |a, b| a.max(b.abs()));
        assert!(amp > 7.0, "seasonal amplitude {amp}");
        // Residuals are small away from the boundary.
        for t in period..n - period {
            assert!(
                d.residual[t].abs() < 1.5,
                "t={t} residual {}",
                d.residual[t]
            );
        }
    }

    #[test]
    fn components_reassemble_exactly() {
        let series: Vec<f64> = (0..40).map(|t| (t % 7) as f64 + t as f64 * 0.3).collect();
        let d = classical_decompose(&series, 7).unwrap();
        #[allow(clippy::needless_range_loop)]
        for t in 0..40 {
            let sum = d.trend[t] + d.seasonal[t] + d.residual[t];
            assert!((sum - series[t]).abs() < 1e-9);
        }
    }

    #[test]
    fn seasonal_sums_to_zero_over_period() {
        let series: Vec<f64> = (0..48).map(|t| ((t % 8) as f64).powi(2)).collect();
        let d = classical_decompose(&series, 8).unwrap();
        let s: f64 = d.seasonal[..8].iter().sum();
        assert!(s.abs() < 1e-9);
    }

    #[test]
    fn rejects_too_short_series() {
        let series = vec![1.0; 10];
        assert!(classical_decompose(&series, 6).is_err());
        assert!(classical_decompose(&series, 1).is_err());
    }
}
