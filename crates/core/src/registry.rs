//! The multi-tenant session registry — the shared state behind a serving
//! process.
//!
//! A server hosts many datasets at once; each is an [`ExplainSession`]
//! owned by one tenant. The registry is the thread-safe map from
//! [`DatasetId`] to session with two properties a naive
//! `Mutex<HashMap<…>>` lacks:
//!
//! * **per-tenant interior locking** — the map itself is behind an
//!   `RwLock` held only long enough to clone a session handle, and each
//!   session sits behind its own `Mutex`. One tenant's cube rebuild never
//!   blocks another tenant's cache hit.
//! * **a global memory budget** — every session shares the registry's LRU
//!   clock, so cube recency is comparable *across* tenants. After any
//!   explain or append the registry sums the per-session cache estimates
//!   ([`ExplainSession::cache_bytes`], built on
//!   `ExplanationCube::approx_bytes`) and evicts globally
//!   least-recently-used cubes until the total fits the budget. Evicted
//!   cubes keep serving correctly — the next request rebuilds them.
//!
//! The registry never holds two session locks at once, so tenant
//! operations cannot deadlock against eviction.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use tsexplain_relation::{AggQuery, Datum, Relation};
use tsexplain_store::{DataStore, Recovery, TenantCheckpoint};

use crate::durability::TenantSpill;
use crate::error::TsExplainError;
use crate::request::ExplainRequest;
use crate::result::ExplainResult;
use crate::session::{ExplainSession, PreparedCube, SessionStats};

/// Default global cube-memory budget for a registry: 1 GiB.
pub const DEFAULT_REGISTRY_BUDGET: usize = 1024 * 1024 * 1024;

/// Opaque handle to a registered dataset (tenant).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(u64);

impl DatasetId {
    /// The raw id, as it appears in URLs (`/datasets/{id}/…`).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from a raw id (e.g. parsed out of a URL). The id
    /// is not checked here; lookups return
    /// [`RegistryError::UnknownDataset`] for ids the registry never issued.
    pub fn from_u64(id: u64) -> Self {
        DatasetId(id)
    }
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors surfaced by registry operations.
#[derive(Clone, Debug, PartialEq)]
pub enum RegistryError {
    /// No dataset with this id is registered (never issued, or removed).
    UnknownDataset(DatasetId),
    /// The underlying session rejected the operation.
    Session(TsExplainError),
    /// A tenant's lock was poisoned by a panic in a previous holder; the
    /// tenant must be re-registered.
    Poisoned(DatasetId),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownDataset(id) => write!(f, "unknown dataset {id}"),
            RegistryError::Session(e) => write!(f, "{e}"),
            RegistryError::Poisoned(id) => {
                write!(f, "dataset {id} is poisoned by an earlier panic")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TsExplainError> for RegistryError {
    fn from(e: TsExplainError) -> Self {
        RegistryError::Session(e)
    }
}

/// A point-in-time view of one tenant's session counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DatasetSnapshot {
    /// The session's serving counters.
    pub stats: SessionStats,
    /// Distinct timestamps registered so far.
    pub n_points: usize,
    /// Prepared cubes currently cached.
    pub cached_cubes: usize,
    /// Approximate bytes held by the tenant's cube cache.
    pub cache_bytes: usize,
}

/// Aggregate registry counters (the `/metrics` payload's registry half).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Registered datasets.
    pub datasets: usize,
    /// Prepared cubes cached across all tenants.
    pub cached_cubes: usize,
    /// Approximate bytes held across all tenants' cube caches.
    pub cache_bytes: usize,
    /// The global memory budget the registry evicts against.
    pub memory_budget: usize,
    /// Sum of every tenant's session counters.
    pub totals: SessionStats,
}

/// The tenant map: dataset id → independently locked session.
type SessionMap = HashMap<u64, Arc<Mutex<ExplainSession>>>;

/// Thread-safe multi-tenant map of [`ExplainSession`]s (see module docs).
#[derive(Debug)]
pub struct SessionRegistry {
    sessions: RwLock<SessionMap>,
    next_id: AtomicU64,
    /// The LRU clock shared by every hosted session.
    clock: Arc<AtomicU64>,
    memory_budget: usize,
    /// The durable store, when the process runs with a data directory:
    /// every registration / row batch / deletion is WAL-logged before the
    /// caller is acknowledged, periodic checkpoints truncate the log, and
    /// budget evictions demote cubes to it instead of dropping them.
    store: Option<Arc<DataStore>>,
    /// Serializes checkpoint cycles (rotate → export → truncate). Two
    /// interleaved cycles could let the older cycle's export overwrite a
    /// newer tenant snapshot while the newer cycle's truncation deletes
    /// the only log copy of the rows in between.
    checkpoint_gate: Mutex<()>,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry::new()
    }
}

impl SessionRegistry {
    /// An empty registry with the default global memory budget.
    pub fn new() -> Self {
        SessionRegistry::with_memory_budget(DEFAULT_REGISTRY_BUDGET)
    }

    /// An empty registry evicting against `budget` bytes of cube cache
    /// across all tenants.
    pub fn with_memory_budget(budget: usize) -> Self {
        SessionRegistry {
            sessions: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            clock: Arc::new(AtomicU64::new(0)),
            memory_budget: budget,
            store: None,
            checkpoint_gate: Mutex::new(()),
        }
    }

    /// A registry backed by a durable store, rebuilt from what the store
    /// recovered on open: every surviving tenant comes back as a live
    /// session *under its original id*, `next_id` resumes from the
    /// persisted watermark (deleted ids are never recycled), and all
    /// further mutations are WAL-logged through `store`.
    ///
    /// Returns the registry plus human-readable notes — the recovery's own
    /// notes followed by any tenants that failed to rebuild (skipped, never
    /// a panic: their durable state stays on disk for inspection).
    pub fn with_store(
        budget: usize,
        store: Arc<DataStore>,
        recovery: Recovery,
    ) -> (Self, Vec<String>) {
        let registry = SessionRegistry {
            sessions: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(recovery.next_id.max(1)),
            clock: Arc::new(AtomicU64::new(0)),
            memory_budget: budget,
            store: Some(Arc::clone(&store)),
            checkpoint_gate: Mutex::new(()),
        };
        let mut notes = recovery.notes;
        for tenant in recovery.tenants {
            let id = tenant.id;
            match registry.rebuild_session(tenant) {
                Ok(session) => {
                    registry
                        .map_write()
                        .insert(id, Arc::new(Mutex::new(session)));
                }
                Err(e) => notes.push(format!("tenant {id} not rebuilt: {e}")),
            }
        }
        (registry, notes)
    }

    /// Reconstructs one recovered tenant's live session (shared clock,
    /// global budget, spill tier attached).
    fn rebuild_session(
        &self,
        tenant: tsexplain_store::RecoveredTenant,
    ) -> Result<ExplainSession, TsExplainError> {
        let mut builder = Relation::builder(tenant.schema);
        for row in tenant.rows {
            builder.push_row(row)?;
        }
        let mut session = ExplainSession::new(builder.finish(), tenant.query)?;
        session.set_cache_budget(self.memory_budget);
        session.set_cache_clock(Arc::clone(&self.clock));
        if let Some(store) = &self.store {
            session.set_spill(Some(Arc::new(TenantSpill::new(
                Arc::clone(store),
                tenant.id,
            ))));
        }
        Ok(session)
    }

    /// Read access to the tenant map, recovering from poison. The map
    /// holds only `Arc` handles and every mutation is a single `HashMap`
    /// call, so a panic in another holder cannot leave it logically
    /// inconsistent — continuing with the inner value is strictly better
    /// than cascading that panic into every request thread as a 500.
    fn map_read(&self) -> RwLockReadGuard<'_, SessionMap> {
        self.sessions.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write access to the tenant map, recovering from poison (see
    /// [`SessionRegistry::map_read`]).
    fn map_write(&self) -> RwLockWriteGuard<'_, SessionMap> {
        self.sessions
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The global memory budget in bytes.
    pub fn memory_budget(&self) -> usize {
        self.memory_budget
    }

    /// The durable store backing this registry, if it runs with one.
    pub fn store(&self) -> Option<&Arc<DataStore>> {
        self.store.as_ref()
    }

    /// Registers a relation + query as a new tenant and returns its id.
    /// With a durable store attached, the registration is WAL-logged (and
    /// fsynced) before this returns — an acknowledged tenant survives a
    /// crash.
    pub fn register(
        &self,
        relation: Relation,
        query: AggQuery,
    ) -> Result<DatasetId, TsExplainError> {
        let mut session = ExplainSession::new(relation, query)?;
        // One tenant alone must also respect the global budget, and all
        // tenants must stamp recency from the same clock.
        session.set_cache_budget(self.memory_budget);
        session.set_cache_clock(Arc::clone(&self.clock));
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.store {
            session.set_spill(Some(Arc::new(TenantSpill::new(Arc::clone(store), id))));
            // Publish the tenant BEFORE logging, holding its session lock
            // across both: a checkpoint cycle that rotates before our WAL
            // record lands then blocks on this lock during its export and
            // snapshots the tenant itself — the registration can never sit
            // only in a log segment that the same cycle truncates.
            let handle = Arc::new(Mutex::new(session));
            let Ok(guard) = handle.lock() else {
                // Unreachable in practice (no other thread has seen the
                // handle yet), but a storage error beats a panic here.
                return Err(TsExplainError::Storage(
                    "freshly created session lock poisoned".to_string(),
                ));
            };
            self.map_write().insert(id, Arc::clone(&handle));
            let logged =
                store.log_register(id, guard.schema(), guard.query(), &guard.export_rows());
            drop(guard);
            if let Err(e) = logged {
                // Not durable ⇒ not registered: unpublish and fail.
                self.map_write().remove(&id);
                return Err(TsExplainError::Storage(e.to_string()));
            }
        } else {
            self.map_write().insert(id, Arc::new(Mutex::new(session)));
        }
        self.maybe_checkpoint();
        Ok(DatasetId(id))
    }

    /// Removes a tenant, dropping its session and caches — and, with a
    /// durable store attached, its on-disk state (a tombstone lands in the
    /// WAL first, so a reboot never resurrects the dataset). Returns
    /// whether the id was registered. If the tombstone cannot be made
    /// durable, the tenant is put back and the deletion FAILS: a client
    /// must never hold an ack for a DELETE that a reboot would undo.
    pub fn remove(&self, id: DatasetId) -> Result<bool, RegistryError> {
        let Some(handle) = self.map_write().remove(&id.0) else {
            return Ok(false);
        };
        if let Some(store) = &self.store {
            if let Err(e) = store.log_remove(id.0) {
                self.map_write().insert(id.0, handle);
                return Err(RegistryError::Session(TsExplainError::Storage(
                    e.to_string(),
                )));
            }
        }
        self.maybe_checkpoint();
        Ok(true)
    }

    /// Ids of all registered datasets, ascending.
    pub fn ids(&self) -> Vec<DatasetId> {
        let mut ids: Vec<DatasetId> = self.map_read().keys().map(|&id| DatasetId(id)).collect();
        ids.sort_unstable();
        ids
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.map_read().len()
    }

    /// True when no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The session handle for `id`. The map lock is released before the
    /// handle is returned; callers lock the session itself.
    pub fn session(&self, id: DatasetId) -> Result<Arc<Mutex<ExplainSession>>, RegistryError> {
        self.map_read()
            .get(&id.0)
            .cloned()
            .ok_or(RegistryError::UnknownDataset(id))
    }

    /// Answers one explain request against tenant `id`, then enforces the
    /// global memory budget.
    pub fn explain(
        &self,
        id: DatasetId,
        request: &ExplainRequest,
    ) -> Result<ExplainResult, RegistryError> {
        let handle = self.session(id)?;
        let result = {
            let mut session = handle.lock().map_err(|_| RegistryError::Poisoned(id))?;
            session.explain(request)?
        };
        self.enforce_global_budget();
        Ok(result)
    }

    /// Prepares tenant `id`'s cube for `request` under **one** lock hold
    /// and returns it as a lock-free [`PreparedCube`] — the batching
    /// primitive behind a multi-strategy fan-out (`/compare`): lock once,
    /// then run every strategy concurrently against the shared cube
    /// without touching the tenant again. Enforces the global memory
    /// budget on the way out, like [`SessionRegistry::explain`].
    pub fn prepare(
        &self,
        id: DatasetId,
        request: &ExplainRequest,
    ) -> Result<PreparedCube, RegistryError> {
        let handle = self.session(id)?;
        let prepared = {
            let mut session = handle.lock().map_err(|_| RegistryError::Poisoned(id))?;
            session.prepare(request)?
        };
        self.enforce_global_budget();
        Ok(prepared)
    }

    /// Appends raw rows (schema order) to tenant `id`, then enforces the
    /// global memory budget. With a durable store attached, the batch is
    /// WAL-logged (and fsynced) after the session accepts it and before
    /// this returns — the log is appended under the session lock so WAL
    /// order matches application order and `seq` stays exact.
    pub fn append_rows(&self, id: DatasetId, rows: Vec<Vec<Datum>>) -> Result<(), RegistryError> {
        let handle = self.session(id)?;
        {
            let mut session = handle.lock().map_err(|_| RegistryError::Poisoned(id))?;
            match &self.store {
                Some(store) => {
                    let seq = session.total_rows() as u64;
                    let batch = rows.clone();
                    session.append_rows(rows)?;
                    if let Err(e) = store.log_rows(id.0, seq, &batch) {
                        // Un-apply the batch: if it stayed resident while
                        // the client got an error, every later acked batch
                        // would be logged with a seq replay sees as a gap
                        // and skips — one transient WAL failure would
                        // silently forfeit the tenant's durability until
                        // the next checkpoint.
                        session.rollback_rows_to(seq as usize);
                        return Err(TsExplainError::Storage(e.to_string()).into());
                    }
                }
                None => session.append_rows(rows)?,
            }
        }
        self.enforce_global_budget();
        self.maybe_checkpoint();
        Ok(())
    }

    /// A snapshot of tenant `id`'s counters.
    pub fn dataset_stats(&self, id: DatasetId) -> Result<DatasetSnapshot, RegistryError> {
        let handle = self.session(id)?;
        let session = handle.lock().map_err(|_| RegistryError::Poisoned(id))?;
        Ok(DatasetSnapshot {
            stats: session.stats(),
            n_points: session.n_points(),
            cached_cubes: session.cached_cubes(),
            cache_bytes: session.cache_bytes(),
        })
    }

    /// Aggregate counters across all tenants. Poisoned tenants are skipped
    /// (their caches are unreachable anyway).
    pub fn stats(&self) -> RegistryStats {
        let handles = self.handles();
        let mut out = RegistryStats {
            datasets: handles.len(),
            memory_budget: self.memory_budget,
            ..RegistryStats::default()
        };
        for (_, handle) in handles {
            let Ok(session) = handle.lock() else { continue };
            out.cached_cubes += session.cached_cubes();
            out.cache_bytes += session.cache_bytes();
            let s = session.stats();
            out.totals.requests += s.requests;
            out.totals.cubes_built += s.cubes_built;
            out.totals.cube_cache_hits += s.cube_cache_hits;
            out.totals.cube_refreshes += s.cube_refreshes;
            out.totals.rows_appended += s.rows_appended;
            out.totals.rebuilds += s.rebuilds;
            out.totals.cube_evictions += s.cube_evictions;
            out.totals.cube_demotions += s.cube_demotions;
            out.totals.cube_rehydrations += s.cube_rehydrations;
        }
        out
    }

    /// Checkpoints the durable store once enough log has accumulated: one
    /// cycle of rotate → export → truncate. The WAL is rotated FIRST and
    /// the tenant states are exported AFTER — every record already in the
    /// pre-rotation segments is then visible to the exports (taken under
    /// each session's lock, which any in-flight mutation holds while it
    /// logs), and a record logged concurrently with the export lands in
    /// the fresh segment, which survives the truncation. The seq
    /// watermark makes snapshot/WAL-suffix overlap idempotent on replay,
    /// so no acked mutation can fall between a deleted log segment and a
    /// snapshot that predates it. Tenants whose lock is poisoned are
    /// skipped — they are already unrecoverable in-process (see
    /// [`RegistryError::Poisoned`]) and a checkpoint is the point their
    /// durable state is garbage-collected too. Checkpoint I/O errors are
    /// reported and retried at the next trigger; the WAL keeps the data
    /// safe in the meantime.
    fn maybe_checkpoint(&self) {
        let Some(store) = &self.store else { return };
        if !store.wants_checkpoint() {
            return;
        }
        // One cycle at a time; a trigger while one runs is redundant.
        let Ok(_gate) = self.checkpoint_gate.try_lock() else {
            return;
        };
        if !store.wants_checkpoint() {
            return;
        }
        let rotation = match store.rotate_wal() {
            Ok(r) => r,
            Err(e) => {
                tsexplain_obs::log::warn(
                    "store",
                    "checkpoint rotation failed (will retry)",
                    &[("error", serde::Value::String(e.to_string()))],
                );
                return;
            }
        };
        let mut tenants = Vec::new();
        for (id, handle) in self.handles() {
            // tsx-lint: allow(lock-order, session lock under the checkpoint gate follows the documented order registry → session → store WAL; the gate is taken before any session lock and is never a session or WAL lock)
            let Ok(session) = handle.lock() else { continue };
            tenants.push(TenantCheckpoint {
                id,
                schema: session.schema().clone(),
                query: session.query().clone(),
                rows: session.export_rows(),
            });
        }
        let next_id = self.next_id.load(Ordering::Relaxed);
        if let Err(e) = store.checkpoint(next_id, &tenants, rotation) {
            tsexplain_obs::log::warn(
                "store",
                "checkpoint failed (will retry)",
                &[
                    ("error", serde::Value::String(e.to_string())),
                    ("tenants", serde::Value::Number(tenants.len() as f64)),
                ],
            );
        }
    }

    /// A stable snapshot of `(id, handle)` pairs, map lock released.
    fn handles(&self) -> Vec<(u64, Arc<Mutex<ExplainSession>>)> {
        self.map_read()
            .iter()
            .map(|(&id, h)| (id, Arc::clone(h)))
            .collect()
    }

    /// Evicts globally least-recently-used cubes (one at a time, locking
    /// one tenant at a time) until the summed cache estimate fits the
    /// budget. The globally newest cube is never evicted, so the request
    /// that just ran cannot thrash its own cube out.
    ///
    /// Every lock here is a `try_lock`: a tenant busy serving a request
    /// (its cubes are hot anyway) is simply skipped, so this sweep never
    /// parks behind another tenant's in-flight rebuild — the registry's
    /// "one tenant's rebuild never blocks another's cache hit" property
    /// holds through eviction too. Concurrent tenants may touch cubes
    /// between the scan and the eviction; the policy is deliberately
    /// approximate — at worst a near-LRU entry is evicted or an eviction
    /// is deferred to the next request, which only costs a rebuild.
    fn enforce_global_budget(&self) {
        loop {
            let handles = self.handles();
            let mut total_bytes = 0usize;
            let mut total_cubes = 0usize;
            let mut oldest: Option<(u64, u64)> = None; // (stamp, tenant id)
            for (id, handle) in &handles {
                let Ok(session) = handle.try_lock() else {
                    continue;
                };
                total_bytes += session.cache_bytes();
                total_cubes += session.cached_cubes();
                if let Some(stamp) = session.lru_stamp() {
                    if oldest.is_none_or(|(s, _)| stamp < s) {
                        oldest = Some((stamp, *id));
                    }
                }
            }
            if total_bytes <= self.memory_budget || total_cubes <= 1 {
                return;
            }
            let Some((_, victim)) = oldest else { return };
            let Some((_, handle)) = handles.iter().find(|(id, _)| *id == victim) else {
                return;
            };
            let Ok(mut session) = handle.try_lock() else {
                return;
            };
            if session.evict_lru_one().is_none() {
                return;
            }
        }
    }
}

// The whole point of the registry is to be shared across worker threads;
// keep that property checked at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ExplainSession>();
    assert_send_sync::<SessionRegistry>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;
    use tsexplain_relation::{Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap()
    }

    fn rows_for(range: std::ops::Range<i64>) -> Vec<Vec<Datum>> {
        let mut rows = Vec::new();
        for t in range {
            let ny = if t <= 10 { 8.0 * t as f64 } else { 80.0 };
            let ca = if t <= 10 {
                2.0
            } else {
                2.0 + 9.0 * (t - 10) as f64
            };
            rows.push(vec![Datum::Attr(t.into()), "NY".into(), ny.into()]);
            rows.push(vec![Datum::Attr(t.into()), "CA".into(), ca.into()]);
        }
        rows
    }

    fn relation(range: std::ops::Range<i64>) -> Relation {
        let mut b = Relation::builder(schema());
        for row in rows_for(range) {
            b.push_row(row).unwrap();
        }
        b.finish()
    }

    fn request() -> ExplainRequest {
        ExplainRequest::new(["state"]).with_optimizations(Optimizations::none())
    }

    #[test]
    fn register_explain_append_round_trip() {
        let registry = SessionRegistry::new();
        let id = registry
            .register(relation(0..12), AggQuery::sum("t", "v"))
            .unwrap();
        let first = registry.explain(id, &request()).unwrap();
        assert_eq!(first.stats.n_points, 12);
        registry.append_rows(id, rows_for(12..21)).unwrap();
        let second = registry.explain(id, &request()).unwrap();
        assert_eq!(second.stats.n_points, 21);
        // Matches a standalone session over the same history.
        let mut solo = ExplainSession::new(relation(0..21), AggQuery::sum("t", "v")).unwrap();
        let batch = solo.explain(&request()).unwrap();
        assert_eq!(second.segmentation, batch.segmentation);
        assert_eq!(second.aggregate, batch.aggregate);
        let snap = registry.dataset_stats(id).unwrap();
        assert_eq!(snap.stats.requests, 2);
        assert_eq!(snap.n_points, 21);
        assert!(snap.cache_bytes > 0);
    }

    #[test]
    fn tenants_are_isolated_and_ids_are_stable() {
        let registry = SessionRegistry::new();
        let a = registry
            .register(relation(0..12), AggQuery::sum("t", "v"))
            .unwrap();
        let b = registry
            .register(relation(0..21), AggQuery::sum("t", "v"))
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(registry.ids(), vec![a, b]);
        let ra = registry.explain(a, &request()).unwrap();
        let rb = registry.explain(b, &request()).unwrap();
        assert_eq!(ra.stats.n_points, 12);
        assert_eq!(rb.stats.n_points, 21);
        assert!(registry.remove(a).unwrap());
        assert!(!registry.remove(a).unwrap());
        assert!(matches!(
            registry.explain(a, &request()),
            Err(RegistryError::UnknownDataset(_))
        ));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn unknown_and_invalid_requests_map_to_distinct_errors() {
        let registry = SessionRegistry::new();
        let ghost = DatasetId::from_u64(999);
        assert!(matches!(
            registry.explain(ghost, &request()),
            Err(RegistryError::UnknownDataset(id)) if id == ghost
        ));
        let id = registry
            .register(relation(0..12), AggQuery::sum("t", "v"))
            .unwrap();
        assert!(matches!(
            registry.explain(id, &ExplainRequest::new(["nope"])),
            Err(RegistryError::Session(TsExplainError::InvalidRequest(_)))
        ));
    }

    #[test]
    fn global_budget_evicts_across_tenants_by_recency() {
        // Budget sized so the two tenants' cubes cannot all stay resident.
        let probe = SessionRegistry::new();
        let pid = probe
            .register(relation(0..21), AggQuery::sum("t", "v"))
            .unwrap();
        probe.explain(pid, &request()).unwrap();
        let one_cube = probe.stats().cache_bytes;
        assert!(one_cube > 0);

        let registry = SessionRegistry::with_memory_budget(one_cube + one_cube / 2);
        let a = registry
            .register(relation(0..21), AggQuery::sum("t", "v"))
            .unwrap();
        let b = registry
            .register(relation(0..21), AggQuery::sum("t", "v"))
            .unwrap();
        registry.explain(a, &request()).unwrap();
        // B's build pushes the total past the budget: A's cube (older) is
        // evicted, B's survives.
        registry.explain(b, &request()).unwrap();
        let stats = registry.stats();
        assert_eq!(stats.totals.cube_evictions, 1);
        assert_eq!(registry.dataset_stats(a).unwrap().cached_cubes, 0);
        assert_eq!(registry.dataset_stats(b).unwrap().cached_cubes, 1);
        // A keeps serving — rebuilt on demand, evicting B in turn.
        let again = registry.explain(a, &request()).unwrap();
        assert_eq!(again.stats.n_points, 21);
        assert_eq!(registry.dataset_stats(a).unwrap().stats.cubes_built, 2);
        assert_eq!(registry.stats().totals.cube_evictions, 2);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tsx-registry-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_registry(dir: &std::path::Path, budget: usize) -> SessionRegistry {
        let (store, recovery) = DataStore::open(dir).unwrap();
        let (registry, notes) = SessionRegistry::with_store(budget, Arc::new(store), recovery);
        assert!(notes.is_empty(), "unexpected recovery notes: {notes:?}");
        registry
    }

    #[test]
    fn reboot_recovers_tenants_under_their_original_ids() {
        let dir = temp_dir("reboot");
        let (a, b, expected) = {
            let registry = durable_registry(&dir, DEFAULT_REGISTRY_BUDGET);
            let a = registry
                .register(relation(0..12), AggQuery::sum("t", "v"))
                .unwrap();
            let b = registry
                .register(relation(0..21), AggQuery::sum("t", "v"))
                .unwrap();
            registry.append_rows(a, rows_for(12..21)).unwrap();
            (a, b, registry.explain(a, &request()).unwrap())
        };
        // "Reboot": a fresh registry over the same data dir.
        let registry = durable_registry(&dir, DEFAULT_REGISTRY_BUDGET);
        assert_eq!(registry.ids(), vec![a, b]);
        let replayed = registry.explain(a, &request()).unwrap();
        assert_eq!(replayed.segmentation, expected.segmentation);
        assert_eq!(replayed.aggregate, expected.aggregate);
        assert_eq!(replayed.total_variance, expected.total_variance);
        // New registrations continue above the persisted watermark.
        let c = registry
            .register(relation(0..5), AggQuery::sum("t", "v"))
            .unwrap();
        assert!(c > b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn removed_tenants_stay_removed_across_reboots() {
        let dir = temp_dir("remove");
        let (a, b) = {
            let registry = durable_registry(&dir, DEFAULT_REGISTRY_BUDGET);
            let a = registry
                .register(relation(0..12), AggQuery::sum("t", "v"))
                .unwrap();
            let b = registry
                .register(relation(0..12), AggQuery::sum("t", "v"))
                .unwrap();
            assert!(registry.remove(a).unwrap());
            (a, b)
        };
        let registry = durable_registry(&dir, DEFAULT_REGISTRY_BUDGET);
        assert_eq!(registry.ids(), vec![b]);
        // The deleted id is never recycled.
        let c = registry
            .register(relation(0..5), AggQuery::sum("t", "v"))
            .unwrap();
        assert_ne!(c, a);
        assert!(c > b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_pressure_demotes_and_rehydrates_bit_identically() {
        let dir = temp_dir("demote");
        // Measure one cube's footprint, then run with a budget that can
        // hold only one of the two cubes the test builds.
        let probe = durable_registry(&dir.join("probe"), DEFAULT_REGISTRY_BUDGET);
        let pid = probe
            .register(relation(0..21), AggQuery::sum("t", "v"))
            .unwrap();
        let expected = probe.explain(pid, &request()).unwrap();
        let one_cube = probe.stats().cache_bytes;
        assert!(one_cube > 0);

        let registry = durable_registry(&dir.join("live"), one_cube + one_cube / 2);
        let id = registry
            .register(relation(0..21), AggQuery::sum("t", "v"))
            .unwrap();
        registry.explain(id, &request()).unwrap(); // cube A
        registry.explain(id, &request().with_max_order(1)).unwrap(); // cube B evicts A — demoted, not dropped
        let stats = registry.stats();
        assert_eq!(stats.totals.cube_demotions, 1);
        assert_eq!(stats.totals.cube_evictions, 0, "demotion is not a drop");
        // Asking for A again decodes the demoted snapshot: no rebuild.
        let rehydrated = registry.explain(id, &request()).unwrap();
        let stats = registry.stats();
        assert_eq!(stats.totals.cube_rehydrations, 1);
        assert_eq!(stats.totals.cubes_built, 2, "A was not rebuilt");
        assert_eq!(rehydrated.segmentation, expected.segmentation);
        assert_eq!(rehydrated.aggregate, expected.aggregate);
        assert_eq!(rehydrated.total_variance, expected.total_variance);
        assert_eq!(rehydrated.k_variance_curve, expected.k_variance_curve);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_demoted_cubes_are_discarded_after_appends() {
        let dir = temp_dir("stale");
        let probe = durable_registry(&dir.join("probe"), DEFAULT_REGISTRY_BUDGET);
        let pid = probe
            .register(relation(0..12), AggQuery::sum("t", "v"))
            .unwrap();
        probe.explain(pid, &request()).unwrap();
        let one_cube = probe.stats().cache_bytes;

        let registry = durable_registry(&dir.join("live"), one_cube + one_cube / 2);
        let id = registry
            .register(relation(0..12), AggQuery::sum("t", "v"))
            .unwrap();
        registry.explain(id, &request()).unwrap(); // cube A
        registry.explain(id, &request().with_max_order(1)).unwrap(); // demotes A at the 24-row watermark
        assert_eq!(registry.stats().totals.cube_demotions, 1);
        // New rows make the demoted copy stale; the next miss for A must
        // rebuild from the session, not resurrect pre-append state.
        registry.append_rows(id, rows_for(12..21)).unwrap();
        let after = registry.explain(id, &request()).unwrap();
        assert_eq!(after.stats.n_points, 21);
        let stats = registry.stats();
        assert_eq!(
            stats.totals.cube_rehydrations, 0,
            "stale copy must not serve"
        );
        // And the result matches a cold registry over the full history.
        let cold = SessionRegistry::new();
        let cid = cold
            .register(relation(0..21), AggQuery::sum("t", "v"))
            .unwrap();
        let expected = cold.explain(cid, &request()).unwrap();
        assert_eq!(after.segmentation, expected.segmentation);
        assert_eq!(after.aggregate, expected.aggregate);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_aggregate_over_tenants() {
        let registry = SessionRegistry::new();
        let a = registry
            .register(relation(0..12), AggQuery::sum("t", "v"))
            .unwrap();
        let b = registry
            .register(relation(0..12), AggQuery::sum("t", "v"))
            .unwrap();
        registry.explain(a, &request()).unwrap();
        registry.explain(a, &request()).unwrap();
        registry.explain(b, &request()).unwrap();
        registry.append_rows(b, rows_for(12..14)).unwrap();
        let stats = registry.stats();
        assert_eq!(stats.datasets, 2);
        assert_eq!(stats.totals.requests, 3);
        assert_eq!(stats.totals.cubes_built, 2);
        assert_eq!(stats.totals.cube_cache_hits, 1);
        assert_eq!(stats.totals.rows_appended, 4);
        assert_eq!(stats.memory_budget, DEFAULT_REGISTRY_BUDGET);
        assert!(stats.cache_bytes > 0);
    }
}
