use tsexplain_segment::SketchConfig;

/// The three speed optimizations of §5.3 / §7.5, independently toggleable
/// exactly as in the paper's Fig. 15 ablation
/// (Vanilla / w filter / O1 / O2 / O1+O2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Optimizations {
    /// Support filter ratio (`w filter`; paper default 0.001).
    pub filter_ratio: Option<f64>,
    /// Guess-and-verify (O1) with this initial guess m̄₀ (paper: 30).
    pub guess_and_verify: Option<usize>,
    /// Sketching (O2) with these parameters.
    pub sketching: Option<SketchConfig>,
}

impl Optimizations {
    /// `VanillaTSExplain`: no optimization at all.
    pub fn none() -> Self {
        Optimizations {
            filter_ratio: None,
            guess_and_verify: None,
            sketching: None,
        }
    }

    /// Filter only (`w filter` in Fig. 15).
    pub fn filter_only() -> Self {
        Optimizations {
            filter_ratio: Some(0.001),
            ..Optimizations::none()
        }
    }

    /// Filter + guess-and-verify (`O1` in Fig. 15).
    pub fn o1() -> Self {
        Optimizations {
            filter_ratio: Some(0.001),
            guess_and_verify: Some(30),
            sketching: None,
        }
    }

    /// Filter + sketching (`O2` in Fig. 15).
    pub fn o2() -> Self {
        Optimizations {
            filter_ratio: Some(0.001),
            guess_and_verify: None,
            sketching: Some(SketchConfig::default()),
        }
    }

    /// Everything on (`O1+O2`) — the paper's production configuration.
    pub fn all() -> Self {
        Optimizations {
            filter_ratio: Some(0.001),
            guess_and_verify: Some(30),
            sketching: Some(SketchConfig::default()),
        }
    }
}

impl Default for Optimizations {
    fn default() -> Self {
        Optimizations::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimization_presets() {
        assert_eq!(Optimizations::none().filter_ratio, None);
        assert!(Optimizations::o1().guess_and_verify.is_some());
        assert!(Optimizations::o1().sketching.is_none());
        assert!(Optimizations::o2().sketching.is_some());
        assert!(Optimizations::o2().guess_and_verify.is_none());
        assert_eq!(Optimizations::default(), Optimizations::all());
    }
}
