use tsexplain_diff::DiffMetric;
use tsexplain_segment::{SketchConfig, VarianceMetric};

/// How the number of segments K is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KSelection {
    /// Pick K automatically with the elbow method over `1..=max_k`
    /// (paper §6; K capped at 20 for user-perception reasons).
    Auto {
        /// Upper bound on K (paper default: 20).
        max_k: usize,
    },
    /// Use exactly this K.
    Fixed(usize),
}

impl Default for KSelection {
    fn default() -> Self {
        KSelection::Auto { max_k: 20 }
    }
}

/// The three speed optimizations of §5.3 / §7.5, independently toggleable
/// exactly as in the paper's Fig. 15 ablation
/// (Vanilla / w filter / O1 / O2 / O1+O2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Optimizations {
    /// Support filter ratio (`w filter`; paper default 0.001).
    pub filter_ratio: Option<f64>,
    /// Guess-and-verify (O1) with this initial guess m̄₀ (paper: 30).
    pub guess_and_verify: Option<usize>,
    /// Sketching (O2) with these parameters.
    pub sketching: Option<SketchConfig>,
}

impl Optimizations {
    /// `VanillaTSExplain`: no optimization at all.
    pub fn none() -> Self {
        Optimizations {
            filter_ratio: None,
            guess_and_verify: None,
            sketching: None,
        }
    }

    /// Filter only (`w filter` in Fig. 15).
    pub fn filter_only() -> Self {
        Optimizations {
            filter_ratio: Some(0.001),
            ..Optimizations::none()
        }
    }

    /// Filter + guess-and-verify (`O1` in Fig. 15).
    pub fn o1() -> Self {
        Optimizations {
            filter_ratio: Some(0.001),
            guess_and_verify: Some(30),
            sketching: None,
        }
    }

    /// Filter + sketching (`O2` in Fig. 15).
    pub fn o2() -> Self {
        Optimizations {
            filter_ratio: Some(0.001),
            guess_and_verify: None,
            sketching: Some(SketchConfig::default()),
        }
    }

    /// Everything on (`O1+O2`) — the paper's production configuration.
    pub fn all() -> Self {
        Optimizations {
            filter_ratio: Some(0.001),
            guess_and_verify: Some(30),
            sketching: Some(SketchConfig::default()),
        }
    }
}

impl Default for Optimizations {
    fn default() -> Self {
        Optimizations::all()
    }
}

/// Full engine configuration. Defaults follow the paper: m = 3, β̄ = 3,
/// absolute-change, the `tse` variance, elbow-selected K ≤ 20, all
/// optimizations on, no smoothing.
#[derive(Clone, Debug)]
pub struct TsExplainConfig {
    /// Explain-by attributes A (user-supplied domain knowledge, §7.1).
    pub explain_by: Vec<String>,
    /// Number of explanations per segment m (paper default 3).
    pub top_m: usize,
    /// Maximum explanation order β̄ (paper default 3).
    pub max_order: usize,
    /// Difference metric γ.
    pub diff_metric: DiffMetric,
    /// Within-segment variance design.
    pub variance_metric: VarianceMetric,
    /// K selection policy.
    pub k: KSelection,
    /// Speed optimizations.
    pub optimizations: Optimizations,
    /// Centered moving-average window applied to the cube before
    /// explaining (`<= 1` = off; §7.4 "for very fuzzy datasets").
    pub smoothing_window: usize,
}

impl TsExplainConfig {
    /// A configuration with the paper's defaults for the given explain-by
    /// attributes.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(explain_by: I) -> Self {
        TsExplainConfig {
            explain_by: explain_by.into_iter().map(Into::into).collect(),
            top_m: 3,
            max_order: 3,
            diff_metric: DiffMetric::AbsoluteChange,
            variance_metric: VarianceMetric::Tse,
            k: KSelection::default(),
            optimizations: Optimizations::default(),
            smoothing_window: 1,
        }
    }

    /// Sets m.
    pub fn with_top_m(mut self, m: usize) -> Self {
        self.top_m = m;
        self
    }

    /// Sets β̄.
    pub fn with_max_order(mut self, order: usize) -> Self {
        self.max_order = order;
        self
    }

    /// Sets the difference metric.
    pub fn with_diff_metric(mut self, metric: DiffMetric) -> Self {
        self.diff_metric = metric;
        self
    }

    /// Sets the variance metric.
    pub fn with_variance_metric(mut self, metric: VarianceMetric) -> Self {
        self.variance_metric = metric;
        self
    }

    /// Fixes K.
    pub fn with_fixed_k(mut self, k: usize) -> Self {
        self.k = KSelection::Fixed(k);
        self
    }

    /// Sets the elbow cap.
    pub fn with_max_k(mut self, max_k: usize) -> Self {
        self.k = KSelection::Auto { max_k };
        self
    }

    /// Sets the optimization bundle.
    pub fn with_optimizations(mut self, optimizations: Optimizations) -> Self {
        self.optimizations = optimizations;
        self
    }

    /// Sets the smoothing window.
    pub fn with_smoothing(mut self, window: usize) -> Self {
        self.smoothing_window = window;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = TsExplainConfig::new(["state"]);
        assert_eq!(c.top_m, 3);
        assert_eq!(c.max_order, 3);
        assert_eq!(c.diff_metric, DiffMetric::AbsoluteChange);
        assert_eq!(c.variance_metric, VarianceMetric::Tse);
        assert_eq!(c.k, KSelection::Auto { max_k: 20 });
        assert_eq!(c.optimizations.filter_ratio, Some(0.001));
        assert_eq!(c.optimizations.guess_and_verify, Some(30));
        assert!(c.optimizations.sketching.is_some());
    }

    #[test]
    fn optimization_presets() {
        assert_eq!(Optimizations::none().filter_ratio, None);
        assert!(Optimizations::o1().guess_and_verify.is_some());
        assert!(Optimizations::o1().sketching.is_none());
        assert!(Optimizations::o2().sketching.is_some());
        assert!(Optimizations::o2().guess_and_verify.is_none());
    }

    #[test]
    fn builder_methods_chain() {
        let c = TsExplainConfig::new(["a", "b"])
            .with_top_m(5)
            .with_fixed_k(4)
            .with_smoothing(7);
        assert_eq!(c.top_m, 5);
        assert_eq!(c.k, KSelection::Fixed(4));
        assert_eq!(c.smoothing_window, 7);
        assert_eq!(c.explain_by, vec!["a", "b"]);
    }
}
