use std::time::Instant;

use tsexplain_cube::{CubeConfig, ExplanationCube};
use tsexplain_diff::TopExplStrategy;
use tsexplain_relation::{AggQuery, Relation};
use tsexplain_segment::{k_segmentation, select_sketch, Segmentation, SegmentationContext};

use crate::config::{KSelection, TsExplainConfig};
use crate::error::TsExplainError;
use crate::latency::LatencyBreakdown;
use crate::request::ExplainRequest;
use crate::result::{ExplainResult, ExplanationItem, PipelineStats, SegmentExplanation};

/// The classic one-shot TSExplain engine (paper Fig. 7): precompute →
/// Cascading Analysts → K-Segmentation → elbow → evolving explanations.
///
/// `TsExplain` is retained as a compatibility shim: [`TsExplain::explain`]
/// behaves like a one-shot session issuing a single [`ExplainRequest`]
/// built from its [`TsExplainConfig`]. Code that issues more than one
/// query against the same data should hold an
/// [`crate::ExplainSession`] instead — the session reuses its explanation
/// cube across requests, while each `explain` call here re-aggregates
/// everything. This type is slated for deprecation once downstream
/// callers have migrated (see the crate-level docs).
#[derive(Clone, Debug)]
pub struct TsExplain {
    config: TsExplainConfig,
}

impl TsExplain {
    /// Builds an engine from a configuration.
    pub fn new(config: TsExplainConfig) -> Self {
        TsExplain { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TsExplainConfig {
        &self.config
    }

    /// Explains the aggregated time series of `query` over `relation`.
    ///
    /// Behaviorally equivalent to registering a one-shot
    /// [`crate::ExplainSession`] and issuing a single
    /// `ExplainRequest::from_config(config)`, but borrows the relation
    /// instead of cloning it into a session — legacy callers (and the
    /// latency benchmarks) pay no copy on top of the precompute they
    /// already repeat per call.
    pub fn explain(
        &self,
        relation: &Relation,
        query: &AggQuery,
    ) -> Result<ExplainResult, TsExplainError> {
        self.explain_with_candidate_positions(relation, query, None)
    }

    /// Like [`TsExplain::explain`], but restricting the DP's candidate cut
    /// positions to `positions` (sorted point indices; the endpoints are
    /// added if missing). This is the hook the streaming extension (§8)
    /// uses: previous cut points plus the newly arrived points.
    pub fn explain_with_candidate_positions(
        &self,
        relation: &Relation,
        query: &AggQuery,
        positions: Option<Vec<usize>>,
    ) -> Result<ExplainResult, TsExplainError> {
        let t0 = Instant::now();
        let cube = self.build_cube(relation, query)?;
        let precompute = t0.elapsed();
        let mut result =
            explain_cube_request(&cube, &ExplainRequest::from_config(&self.config), positions)?;
        result.latency.precompute = precompute;
        Ok(result)
    }

    /// Module (a): builds (and optionally smooths) the explanation cube.
    pub fn build_cube(
        &self,
        relation: &Relation,
        query: &AggQuery,
    ) -> Result<ExplanationCube, TsExplainError> {
        let mut cube_config = CubeConfig::new(self.config.explain_by.iter().cloned())
            .with_max_order(self.config.max_order);
        cube_config.filter_ratio = self.config.optimizations.filter_ratio;
        let mut cube = ExplanationCube::build(relation, query, &cube_config)?;
        if self.config.smoothing_window > 1 {
            cube.smooth_moving_average(self.config.smoothing_window);
        }
        Ok(cube)
    }

    /// Modules (b) + (c) over a pre-built cube (precompute latency is
    /// reported as zero).
    pub fn explain_cube(&self, cube: &ExplanationCube) -> Result<ExplainResult, TsExplainError> {
        explain_cube_request(cube, &ExplainRequest::from_config(&self.config), None)
    }
}

/// Pipeline modules (b) + (c) — Cascading Analysts plus explanation-aware
/// K-Segmentation — over a pre-built cube, driven by a request.
///
/// This is the single implementation behind every entry point: the
/// [`crate::ExplainSession`] serving path, the [`TsExplain`] shim, and the
/// streaming refresh (which passes `forced_positions`).
pub(crate) fn explain_cube_request(
    cube: &ExplanationCube,
    request: &ExplainRequest,
    forced_positions: Option<Vec<usize>>,
) -> Result<ExplainResult, TsExplainError> {
    let n = cube.n_points();
    if n < 2 {
        return Err(TsExplainError::SeriesTooShort(n));
    }
    request
        .validate_k(n)
        .map_err(TsExplainError::InvalidRequest)?;

    let optimizations = request.optimizations();
    let strategy = match optimizations.guess_and_verify {
        Some(initial_guess) => TopExplStrategy::GuessVerify { initial_guess },
        None => TopExplStrategy::Exact,
    };
    let mut ctx = SegmentationContext::new(
        cube,
        request.diff_metric(),
        request.top_m(),
        strategy,
        request.variance_metric(),
    );

    let positions: Vec<usize> = match forced_positions {
        Some(mut p) => {
            p.push(0);
            p.push(n - 1);
            p.retain(|&x| x < n);
            p.sort_unstable();
            p.dedup();
            p
        }
        None => match &request.sketching() {
            Some(sketch_config) => select_sketch(&mut ctx, sketch_config),
            None => (0..n).collect(),
        },
    };

    let costs = ctx.compute_costs(&positions, None);
    let dp_start = Instant::now();
    let k_cap = match request.k_selection() {
        KSelection::Auto { max_k } => max_k.min(positions.len() - 1).max(1),
        KSelection::Fixed(k) => k,
    };
    let dp = k_segmentation(&costs, k_cap);
    let curve = dp.k_variance_curve();
    let chosen_k = match request.k_selection() {
        KSelection::Auto { .. } => crate::elbow::elbow_k(&curve),
        KSelection::Fixed(k) => k,
    };
    let position_cuts = dp.cuts(chosen_k)?;
    let dp_elapsed = dp_start.elapsed();

    let cuts: Vec<usize> = position_cuts.iter().map(|&pi| positions[pi]).collect();
    let segmentation = Segmentation::new(n, cuts)?;

    let segments: Vec<SegmentExplanation> = segmentation
        .segments()
        .into_iter()
        .map(|seg| describe_segment(cube, &mut ctx, seg))
        .collect();

    let timers = ctx.timers();
    let latency = LatencyBreakdown {
        precompute: Default::default(),
        cascading: timers.cascading,
        segmentation: timers.segmentation + dp_elapsed,
    };
    let stats = PipelineStats {
        epsilon: cube.n_candidates(),
        filtered_epsilon: cube.n_selectable(),
        n_points: n,
        ca_calls: ctx.ca_calls(),
        candidate_positions: positions.len(),
        cube_from_cache: false,
    };

    Ok(ExplainResult {
        total_variance: dp.total_cost(chosen_k),
        segmentation,
        chosen_k,
        k_variance_curve: curve,
        segments,
        timestamps: cube.timestamps().to_vec(),
        aggregate: cube.total_values(),
        latency,
        stats,
    })
}

fn describe_segment(
    cube: &ExplanationCube,
    ctx: &mut SegmentationContext<'_>,
    seg: (usize, usize),
) -> SegmentExplanation {
    // var(P) = cost / |P| (Eq. 7); flags incohesive segments (§9).
    let variance = ctx.segment_cost(seg) / (seg.1 - seg.0) as f64;
    let explained = ctx.explained(seg);
    let explanations = explained
        .top
        .items()
        .iter()
        .map(|item| ExplanationItem {
            label: cube.label(item.id),
            gamma: item.gamma,
            effect: item.effect,
            series: (seg.0..=seg.1).map(|t| cube.value_at(item.id, t)).collect(),
        })
        .collect();
    SegmentExplanation {
        start: seg.0,
        end: seg.1,
        start_time: cube.timestamps()[seg.0].clone(),
        end_time: cube.timestamps()[seg.1].clone(),
        explanations,
        variance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;
    use tsexplain_relation::{Datum, Field, Schema};

    /// Three clean phases over 30 points: NY rises (0..10), CA rises
    /// (10..20), TX rises (20..29).
    fn three_phase_relation() -> Relation {
        let schema = Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for t in 0..30i64 {
            let ny = if t <= 10 { 8.0 * t as f64 } else { 80.0 };
            let ca = if t <= 10 {
                2.0
            } else if t <= 20 {
                2.0 + 9.0 * (t - 10) as f64
            } else {
                92.0
            };
            let tx = if t <= 20 {
                5.0
            } else {
                5.0 + 10.0 * (t - 20) as f64
            };
            for (s, v) in [("NY", ny), ("CA", ca), ("TX", tx)] {
                b.push_row(vec![Datum::Attr(t.into()), Datum::from(s), Datum::from(v)])
                    .unwrap();
            }
        }
        b.finish()
    }

    fn engine(optimizations: Optimizations) -> TsExplain {
        TsExplain::new(TsExplainConfig::new(["state"]).with_optimizations(optimizations))
    }

    #[test]
    fn recovers_three_phases_with_auto_k() {
        let rel = three_phase_relation();
        let result = engine(Optimizations::none())
            .explain(&rel, &AggQuery::sum("t", "v"))
            .unwrap();
        assert_eq!(result.chosen_k, 3, "curve {:?}", result.k_variance_curve);
        let cuts = result.segmentation.cuts();
        assert!((9..=11).contains(&cuts[0]), "cuts {cuts:?}");
        assert!((19..=21).contains(&cuts[1]), "cuts {cuts:?}");
        // Each segment's top explanation is its driving state.
        let tops: Vec<&str> = result
            .segments
            .iter()
            .map(|s| s.explanations[0].label.as_str())
            .collect();
        assert_eq!(tops, vec!["state=NY", "state=CA", "state=TX"]);
    }

    #[test]
    fn fixed_k_is_respected() {
        let rel = three_phase_relation();
        let e = TsExplain::new(
            TsExplainConfig::new(["state"])
                .with_optimizations(Optimizations::none())
                .with_fixed_k(2),
        );
        let result = e.explain(&rel, &AggQuery::sum("t", "v")).unwrap();
        assert_eq!(result.chosen_k, 2);
        assert_eq!(result.segments.len(), 2);
    }

    #[test]
    fn optimized_matches_vanilla_segmentation() {
        let rel = three_phase_relation();
        let query = AggQuery::sum("t", "v");
        let vanilla = engine(Optimizations::none()).explain(&rel, &query).unwrap();
        let optimized = engine(Optimizations::all()).explain(&rel, &query).unwrap();
        assert_eq!(vanilla.chosen_k, optimized.chosen_k);
        assert_eq!(
            vanilla.segmentation.cuts(),
            optimized.segmentation.cuts(),
            "optimizations must not change this clean result"
        );
    }

    #[test]
    fn result_is_self_describing() {
        let rel = three_phase_relation();
        let result = engine(Optimizations::none())
            .explain(&rel, &AggQuery::sum("t", "v"))
            .unwrap();
        assert_eq!(result.aggregate.len(), 30);
        assert_eq!(result.timestamps.len(), 30);
        assert_eq!(result.stats.epsilon, 3);
        assert!(result.stats.ca_calls > 0);
        assert!(result.latency.total().as_nanos() > 0);
        // Segment series have the right lengths.
        for seg in &result.segments {
            for item in &seg.explanations {
                assert_eq!(item.series.len(), seg.end - seg.start + 1);
            }
        }
        let display = result.to_string();
        assert!(display.contains("state="));
    }

    #[test]
    fn candidate_positions_restrict_cuts() {
        let rel = three_phase_relation();
        let query = AggQuery::sum("t", "v");
        let e = TsExplain::new(
            TsExplainConfig::new(["state"])
                .with_optimizations(Optimizations::none())
                .with_fixed_k(2),
        );
        let result = e
            .explain_with_candidate_positions(&rel, &query, Some(vec![7, 20]))
            .unwrap();
        // Only 7 and 20 are available as interior cuts.
        assert!(result
            .segmentation
            .cuts()
            .iter()
            .all(|c| [7, 20].contains(c)));
    }

    #[test]
    fn too_short_series_errors() {
        let schema = Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        b.push_row(vec![Datum::Attr(0i64.into()), "x".into(), 1.0.into()])
            .unwrap();
        let rel = b.finish();
        let err = engine(Optimizations::none())
            .explain(&rel, &AggQuery::sum("t", "v"))
            .unwrap_err();
        assert_eq!(err, TsExplainError::SeriesTooShort(1));
    }

    #[test]
    fn infeasible_fixed_k_errors() {
        let rel = three_phase_relation();
        let e = TsExplain::new(
            TsExplainConfig::new(["state"])
                .with_optimizations(Optimizations::none())
                .with_fixed_k(29),
        );
        // K = 29 = n − 1 is feasible; K = 30 is not.
        assert!(e.explain(&rel, &AggQuery::sum("t", "v")).is_ok());
        let e = TsExplain::new(
            TsExplainConfig::new(["state"])
                .with_optimizations(Optimizations::none())
                .with_fixed_k(30),
        );
        let err = e.explain(&rel, &AggQuery::sum("t", "v")).unwrap_err();
        assert!(
            matches!(
                err,
                TsExplainError::InvalidRequest(crate::request::InvalidRequest::InfeasibleK {
                    k: 30,
                    n: 30
                })
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn shim_matches_direct_cube_pipeline() {
        // The compatibility shim (one-shot session) and the lower-level
        // build_cube + explain_cube path must agree exactly.
        let rel = three_phase_relation();
        let query = AggQuery::sum("t", "v");
        let e = engine(Optimizations::none());
        let via_shim = e.explain(&rel, &query).unwrap();
        let cube = e.build_cube(&rel, &query).unwrap();
        let via_cube = e.explain_cube(&cube).unwrap();
        assert_eq!(via_shim.chosen_k, via_cube.chosen_k);
        assert_eq!(via_shim.segmentation, via_cube.segmentation);
        assert_eq!(via_shim.total_variance, via_cube.total_variance);
        assert_eq!(via_shim.aggregate, via_cube.aggregate);
    }
}
