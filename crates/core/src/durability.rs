//! The spill tier: where a session's evicted cubes go when a durable
//! store backs the process.
//!
//! Without a store, eviction under memory pressure *drops* a cube and
//! the next request for it pays a full rebuild. With one, eviction
//! *demotes* instead: the cube's block snapshot
//! ([`tsexplain_cube::IncrementalCube::to_snapshot_bytes`]) is written
//! to the data directory, and a later cache miss rehydrates it
//! bit-identically — decode, not recompute. The session stays ignorant
//! of tenancy and file layout: it talks to a [`CubeSpill`], and the
//! registry hands each session a [`TenantSpill`] scoped to its tenant id
//! inside the shared [`DataStore`].
//!
//! A demoted copy is only valid at the exact row watermark it was taken
//! at; the session checks that on rehydration and calls
//! [`CubeSpill::discard`] on stale copies (rows arrived after the
//! demotion), falling back to a rebuild.

use std::fmt;
use std::sync::Arc;

use tsexplain_store::DataStore;

/// A second eviction tier for a session's cube cache (module docs).
///
/// `demote` returns whether the snapshot is durably stored — on `false`
/// (an I/O failure) the caller counts a plain eviction and the cube is
/// simply gone, exactly as if no spill tier existed.
pub trait CubeSpill: Send + Sync + fmt::Debug {
    /// Persists a demoted cube's snapshot under its cache-key
    /// fingerprint; returns whether it is durable.
    fn demote(&self, fingerprint: u64, bytes: &[u8]) -> bool;
    /// Loads a previously demoted cube's bytes, if a valid copy exists.
    fn rehydrate(&self, fingerprint: u64) -> Option<Vec<u8>>;
    /// Counts one served rehydration. Called only after the loaded copy
    /// passed the session's cache-key + row-watermark checks, so stale or
    /// colliding loads that get discarded never inflate the tier's
    /// rehydration metric.
    fn note_rehydrated(&self);
    /// Unlinks a demoted copy that can no longer serve (stale watermark).
    fn discard(&self, fingerprint: u64);
}

/// [`CubeSpill`] over one tenant's slice of a shared [`DataStore`].
pub(crate) struct TenantSpill {
    store: Arc<DataStore>,
    tenant: u64,
}

impl TenantSpill {
    pub(crate) fn new(store: Arc<DataStore>, tenant: u64) -> Self {
        TenantSpill { store, tenant }
    }
}

impl fmt::Debug for TenantSpill {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantSpill")
            .field("tenant", &self.tenant)
            .field("dir", &self.store.path())
            .finish()
    }
}

impl CubeSpill for TenantSpill {
    fn demote(&self, fingerprint: u64, bytes: &[u8]) -> bool {
        match self.store.store_cube(self.tenant, fingerprint, bytes) {
            Ok(()) => true,
            Err(e) => {
                tsexplain_obs::log::warn(
                    "store",
                    "demoting a cube failed; dropping it instead",
                    &[
                        ("tenant", serde::Value::Number(self.tenant as f64)),
                        ("error", serde::Value::String(e.to_string())),
                    ],
                );
                false
            }
        }
    }

    fn rehydrate(&self, fingerprint: u64) -> Option<Vec<u8>> {
        self.store.load_cube(self.tenant, fingerprint)
    }

    fn note_rehydrated(&self) {
        self.store.note_rehydration();
    }

    fn discard(&self, fingerprint: u64) {
        self.store.drop_cube(self.tenant, fingerprint)
    }
}
