use std::fmt;

use tsexplain_diff::Effect;
use tsexplain_relation::AttrValue;
use tsexplain_segment::Segmentation;

use crate::latency::LatencyBreakdown;

/// One ranked explanation of one segment, self-contained for display: its
/// label, score, effect and KPI trendline over the segment (the per-
/// explanation trendlines of the paper's Fig. 2 visualization).
#[derive(Clone, Debug)]
pub struct ExplanationItem {
    /// Human-readable predicate conjunction, e.g. `"BV=1750 & P=6"`.
    pub label: String,
    /// Difference score γ over the segment.
    pub gamma: f64,
    /// Change effect τ (`+` / `-`).
    pub effect: Effect,
    /// The explanation's aggregate values at each point of the segment
    /// (inclusive endpoints).
    pub series: Vec<f64>,
}

/// One segment of the evolving explanation: time range plus top-m
/// explanations (one entry of E in Definition 3.7).
#[derive(Clone, Debug)]
pub struct SegmentExplanation {
    /// Start point index (inclusive).
    pub start: usize,
    /// End point index (inclusive; shared with the next segment).
    pub end: usize,
    /// Timestamp at `start`.
    pub start_time: AttrValue,
    /// Timestamp at `end`.
    pub end_time: AttrValue,
    /// Top-m non-overlapping explanations, ranked by γ.
    pub explanations: Vec<ExplanationItem>,
    /// The segment's within-segment variance `var(P_i)` (Eq. 7): how
    /// *inconsistently* the top explanations cover the segment's steps.
    /// High values flag segments worth further inspection (paper §9).
    pub variance: f64,
}

/// Pipeline statistics (Table 6 columns + instrumentation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Total candidate explanations ε.
    pub epsilon: usize,
    /// Candidates surviving the support filter.
    pub filtered_epsilon: usize,
    /// Series length n.
    pub n_points: usize,
    /// Number of top-m derivations performed.
    pub ca_calls: u64,
    /// Candidate cut positions used by the DP (= n without sketching).
    pub candidate_positions: usize,
    /// Whether the explanation cube was served from a session's cache
    /// (precompute latency ≈ 0) rather than built for this request.
    pub cube_from_cache: bool,
}

/// The full output of one `explain()` call.
#[derive(Clone, Debug)]
pub struct ExplainResult {
    /// Wire name of the segmentation strategy that produced this result
    /// (`"dp"`, `"bottom_up"`, `"fluss"`, `"nnsegment"`).
    pub strategy: String,
    /// The chosen segmentation scheme.
    pub segmentation: Segmentation,
    /// The chosen K (elbow-selected or fixed).
    pub chosen_k: usize,
    /// The K-Variance curve `[(k, D(n, k))]` explored by the DP.
    pub k_variance_curve: Vec<(usize, f64)>,
    /// The DP objective `Σ |P_i| var(P_i)` at the chosen K (Table 7's
    /// quality number).
    pub total_variance: f64,
    /// Per-segment evolving explanations.
    pub segments: Vec<SegmentExplanation>,
    /// The timestamps of the aggregated series.
    pub timestamps: Vec<AttrValue>,
    /// The aggregated KPI values.
    pub aggregate: Vec<f64>,
    /// Wall-clock breakdown (Fig. 15).
    pub latency: LatencyBreakdown,
    /// Pipeline statistics.
    pub stats: PipelineStats,
}

impl ExplainResult {
    /// The interior cut positions, as timestamps.
    pub fn cut_times(&self) -> Vec<&AttrValue> {
        self.segmentation
            .cuts()
            .iter()
            .map(|&c| &self.timestamps[c])
            .collect()
    }

    /// Indices of segments whose within-segment variance exceeds
    /// `factor` × the mean segment variance — the "hints for segments with
    /// higher variance for further inspection" of paper §9. A typical
    /// `factor` is 1.5.
    pub fn high_variance_segments(&self, factor: f64) -> Vec<usize> {
        if self.segments.is_empty() {
            return Vec::new();
        }
        let mean =
            self.segments.iter().map(|s| s.variance).sum::<f64>() / self.segments.len() as f64;
        if mean <= 0.0 {
            return Vec::new();
        }
        self.segments
            .iter()
            .enumerate()
            .filter(|(_, s)| s.variance > factor * mean)
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Display for ExplainResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TSExplain: K = {} over {} points ({} candidates, {} after filter)",
            self.chosen_k, self.stats.n_points, self.stats.epsilon, self.stats.filtered_epsilon
        )?;
        for seg in &self.segments {
            writeln!(f, "  {} ~ {}", seg.start_time, seg.end_time)?;
            for (rank, item) in seg.explanations.iter().enumerate() {
                writeln!(
                    f,
                    "    top-{}: {} ({}) gamma={:.4}",
                    rank + 1,
                    item.label,
                    item.effect,
                    item.gamma
                )?;
            }
            if seg.explanations.is_empty() {
                writeln!(f, "    (no contributing explanation)")?;
            }
        }
        write!(f, "  latency: {}", self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExplainResult {
        ExplainResult {
            strategy: "dp".into(),
            segmentation: Segmentation::new(5, vec![2]).unwrap(),
            chosen_k: 2,
            k_variance_curve: vec![(1, 3.0), (2, 1.0)],
            total_variance: 1.0,
            segments: vec![SegmentExplanation {
                start: 0,
                end: 2,
                start_time: AttrValue::from("d0"),
                end_time: AttrValue::from("d2"),
                explanations: vec![ExplanationItem {
                    label: "state=NY".into(),
                    gamma: 12.0,
                    effect: Effect::Plus,
                    series: vec![0.0, 5.0, 12.0],
                }],
                variance: 0.1,
            }],
            timestamps: ["d0", "d1", "d2", "d3", "d4"].map(AttrValue::from).to_vec(),
            aggregate: vec![0.0, 5.0, 12.0, 12.0, 12.0],
            latency: LatencyBreakdown::default(),
            stats: PipelineStats::default(),
        }
    }

    #[test]
    fn cut_times_map_to_timestamps() {
        let r = sample();
        assert_eq!(r.cut_times(), vec![&AttrValue::from("d2")]);
    }

    #[test]
    fn high_variance_hints() {
        let mut r = sample();
        // Clone the segment twice with different variances.
        let mut quiet = r.segments[0].clone();
        quiet.variance = 0.05;
        let mut loud = r.segments[0].clone();
        loud.variance = 0.9;
        r.segments = vec![quiet.clone(), quiet, loud];
        assert_eq!(r.high_variance_segments(1.5), vec![2]);
        // A huge factor flags nothing.
        assert!(r.high_variance_segments(10.0).is_empty());
    }

    #[test]
    fn no_hints_on_flat_result() {
        let mut r = sample();
        r.segments[0].variance = 0.0;
        assert!(r.high_variance_segments(1.5).is_empty());
    }

    #[test]
    fn display_mentions_segments_and_explanations() {
        let s = sample().to_string();
        assert!(s.contains("state=NY"));
        assert!(s.contains("top-1"));
        assert!(s.contains("d0 ~ d2"));
    }
}
