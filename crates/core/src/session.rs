//! The serving session: register data once, answer many explain requests.
//!
//! The paper's pipeline (Fig. 7) splits into an expensive precompute step —
//! the explanation cube — and cheap per-query modules (Cascading
//! Analysts plus K-Segmentation). An interactive analyst exploits exactly that split:
//! they register a dataset once and then iterate on K, top-m, difference
//! metric, time window or segmentation strategy, none of which invalidate
//! the cube. [`ExplainSession`] owns a keyed cache of prepared cubes
//! (keyed by explain-by set, max order and filter ratio, with finalized
//! snapshots kept per smoothing window) and answers requests against it.
//! Cache keys are deliberately *strategy-independent*: the DP and every
//! §7.2 baseline adapter share one cube, so a `/compare` fan-out pays
//! precompute once.
//!
//! Appending rows ([`ExplainSession::append_rows`]) extends every cached
//! cube *incrementally at the tail* (`O(new rows)`), which is what makes
//! the rewritten [`crate::StreamingExplainer`] a thin wrapper over a
//! session. Restated history (rows at already-settled timestamps) falls
//! back to a transparent full rebuild.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tsexplain_cube::{
    AppendRow, CubeCacheKey, CubeConfig, CubeError, ExplanationCube, IncrementalCube,
};
use tsexplain_relation::{
    AggQuery, AttrValue, Column, ColumnType, Datum, Relation, RelationError, Schema,
};

use crate::durability::CubeSpill;
use crate::error::TsExplainError;
use crate::pipeline::explain_cube_request;
use crate::request::{ExplainRequest, InvalidRequest};
use crate::result::ExplainResult;

/// Anything that can answer [`ExplainRequest`]s: the batch serving session
/// and the streaming wrapper both implement this, so callers can swap
/// offline and real-time explainers behind one interface.
pub trait Explainer {
    /// Answers one request.
    fn explain(&mut self, request: &ExplainRequest) -> Result<ExplainResult, TsExplainError>;
}

/// Serving-session instrumentation: how much precompute the cube cache
/// saved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests answered.
    pub requests: u64,
    /// Cubes built from scratch (cache misses).
    pub cubes_built: u64,
    /// Requests answered from a cached, up-to-date cube.
    pub cube_cache_hits: u64,
    /// Requests that reused a cached cube's incremental state but had to
    /// re-finalize its snapshot after appended rows.
    pub cube_refreshes: u64,
    /// Raw rows appended over the session's lifetime.
    pub rows_appended: u64,
    /// Full rebuilds forced by restated history.
    pub rebuilds: u64,
    /// Cached cubes *dropped* to respect the cache byte budget (locally or
    /// by a registry's global policy) — evicted with no durable copy left
    /// behind. Evicted keys keep serving correctly — the next request for
    /// one rebuilds it.
    pub cube_evictions: u64,
    /// Cached cubes *demoted* under the same budget pressure: evicted from
    /// memory but spilled to the durable store first, so the next request
    /// rehydrates instead of rebuilding. Always 0 without a data dir.
    pub cube_demotions: u64,
    /// Cache misses served by decoding a demoted cube's snapshot back into
    /// memory (bit-identical to the evicted state) instead of rebuilding.
    pub cube_rehydrations: u64,
}

/// A cached cube: the incremental enumeration state plus the finalized
/// (pruned, filtered, smoothed) snapshots the pipeline runs against. The
/// incremental state is smoothing-independent, so one entry serves every
/// smoothing window an analyst tries — only the finalized snapshot is
/// kept per window. Snapshots are dropped when rows arrive and lazily
/// re-finalized on the next request.
#[derive(Debug)]
struct CacheEntry {
    inc: IncrementalCube,
    snapshots: HashMap<usize, Arc<ExplanationCube>>,
    /// Logical LRU stamp of the last request served from this entry, drawn
    /// from the session's (possibly registry-shared) clock.
    last_used: u64,
    /// Approximate bytes held: incremental state + finalized snapshots.
    bytes: usize,
}

impl CacheEntry {
    fn new(inc: IncrementalCube, last_used: u64) -> Self {
        let bytes = inc.approx_bytes();
        CacheEntry {
            inc,
            snapshots: HashMap::new(),
            last_used,
            bytes,
        }
    }

    /// Finalizes (or returns) the snapshot for `smoothing`.
    fn snapshot(
        &mut self,
        smoothing: usize,
    ) -> Result<(Arc<ExplanationCube>, bool), TsExplainError> {
        if let Some(snapshot) = self.snapshots.get(&smoothing) {
            return Ok((Arc::clone(snapshot), true));
        }
        let mut cube = self.inc.snapshot()?;
        if smoothing > 1 {
            cube.smooth_moving_average(smoothing);
        }
        let cube = Arc::new(cube);
        self.snapshots.insert(smoothing, Arc::clone(&cube));
        self.recount_bytes();
        Ok((cube, false))
    }

    /// Recomputes the entry's byte estimate after a structural change
    /// (snapshot added/dropped, rows appended).
    fn recount_bytes(&mut self) {
        self.bytes = self.inc.approx_bytes()
            + self
                .snapshots
                .values()
                .map(|c| c.approx_bytes())
                .sum::<usize>();
    }
}

/// A reusable serving session over one registered relation and query (see
/// module docs). Create with [`ExplainSession::new`], query with
/// [`ExplainSession::explain`], feed live data with
/// [`ExplainSession::append_rows`].
#[derive(Debug)]
pub struct ExplainSession {
    schema: Schema,
    query: AggQuery,
    /// The relation as of construction (or the last forced rebuild).
    base: Relation,
    /// Rows appended since `base` was materialized, in arrival order.
    tail: Vec<Vec<Datum>>,
    cubes: HashMap<CubeCacheKey, CacheEntry>,
    /// Distinct timestamps across `base` + `tail`.
    n_points: usize,
    /// The largest timestamp seen so far.
    last_time: Option<AttrValue>,
    stats: SessionStats,
    /// Byte budget for the cube cache; the least-recently-used entries are
    /// evicted when the cache grows past it (the entry serving the current
    /// request is never evicted, so a single oversized cube still serves).
    cache_budget: usize,
    /// LRU clock. Sessions owned by a [`crate::SessionRegistry`] share one
    /// clock so recency is comparable across tenants.
    clock: Arc<AtomicU64>,
    /// Second eviction tier: when set, budget evictions demote cubes to it
    /// and cache misses try to rehydrate from it before rebuilding.
    spill: Option<Arc<dyn CubeSpill>>,
}

/// Default cube-cache byte budget per session: 256 MiB.
pub const DEFAULT_CUBE_CACHE_BUDGET: usize = 256 * 1024 * 1024;

impl ExplainSession {
    /// Registers `relation` and `query`, validating that the query's time
    /// attribute is a dimension and its measure columns exist.
    pub fn new(relation: Relation, query: AggQuery) -> Result<Self, TsExplainError> {
        let schema = relation.schema().clone();
        if schema.dimension_index(query.time_attr()).is_err() {
            return Err(TsExplainError::InvalidRequest(
                InvalidRequest::UnknownTimeAttribute(query.time_attr().to_string()),
            ));
        }
        validate_measure(&schema, query.measure())?;
        let (n_points, last_time) = match relation.dim_column(query.time_attr()) {
            Ok(col) => (col.dict().len(), col.dict().values().last().cloned()),
            Err(_) => (0, None),
        };
        Ok(ExplainSession {
            schema,
            query,
            base: relation,
            tail: Vec::new(),
            cubes: HashMap::new(),
            n_points,
            last_time,
            stats: SessionStats::default(),
            cache_budget: DEFAULT_CUBE_CACHE_BUDGET,
            clock: Arc::new(AtomicU64::new(0)),
            spill: None,
        })
    }

    /// Sets the cube-cache byte budget (builder style); see
    /// [`ExplainSession::set_cache_budget`].
    pub fn with_cache_budget(mut self, bytes: usize) -> Self {
        self.set_cache_budget(bytes);
        self
    }

    /// Sets the cube-cache byte budget and immediately enforces it. The
    /// cache never proactively drops the most recent entry below budget —
    /// a single cube larger than the budget stays resident until a newer
    /// entry displaces it.
    pub fn set_cache_budget(&mut self, bytes: usize) {
        self.cache_budget = bytes;
        self.enforce_budget(None);
    }

    /// The cube-cache byte budget.
    pub fn cache_budget(&self) -> usize {
        self.cache_budget
    }

    /// Approximate bytes currently held by the cube cache.
    pub fn cache_bytes(&self) -> usize {
        self.cubes.values().map(|e| e.bytes).sum()
    }

    /// The LRU stamp of the least-recently-used cached cube, if any — what
    /// a multi-tenant registry compares across sessions sharing a clock.
    pub fn lru_stamp(&self) -> Option<u64> {
        self.cubes.values().map(|e| e.last_used).min()
    }

    /// Evicts the least-recently-used cached cube, returning its
    /// approximate size. The evicted key keeps serving correctly: the next
    /// request for it rehydrates (with a spill tier) or rebuilds the cube
    /// from the session's data.
    pub fn evict_lru_one(&mut self) -> Option<usize> {
        let key = self
            .cubes
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())?;
        self.evict_entry(&key)
    }

    /// Removes one cache entry, demoting it to the spill tier when one is
    /// attached (a failed demotion degrades to a plain drop). Returns the
    /// approximate bytes freed.
    fn evict_entry(&mut self, key: &CubeCacheKey) -> Option<usize> {
        let entry = self.cubes.remove(key)?;
        let demoted = self
            .spill
            .as_ref()
            .is_some_and(|spill| spill.demote(key.fingerprint(), &entry.inc.to_snapshot_bytes()));
        if demoted {
            self.stats.cube_demotions += 1;
        } else {
            self.stats.cube_evictions += 1;
        }
        Some(entry.bytes)
    }

    /// Replaces the LRU clock (a registry shares one clock across all its
    /// sessions so global eviction can compare recency between tenants).
    pub(crate) fn set_cache_clock(&mut self, clock: Arc<AtomicU64>) {
        self.clock = clock;
    }

    /// Attaches (or detaches) the spill tier budget evictions demote to.
    pub(crate) fn set_spill(&mut self, spill: Option<Arc<dyn CubeSpill>>) {
        self.spill = spill;
    }

    /// Evicts LRU entries until the cache fits the budget. `protect` (the
    /// entry serving the current request) is never evicted.
    fn enforce_budget(&mut self, protect: Option<&CubeCacheKey>) {
        while self.cache_bytes() > self.cache_budget {
            let victim = self
                .cubes
                .iter()
                .filter(|(k, _)| Some(*k) != protect)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(key) => {
                    self.evict_entry(&key);
                }
                None => break,
            }
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The registered query.
    pub fn query(&self) -> &AggQuery {
        &self.query
    }

    /// The registered relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of distinct timestamps registered so far.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// Number of prepared cubes currently cached.
    pub fn cached_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Total raw rows the session holds (base + tail) — the row watermark
    /// the durable store sequences WAL batches and checkpoints by.
    pub fn total_rows(&self) -> usize {
        self.base.n_rows() + self.tail.len()
    }

    /// Every raw row the session holds, in ingestion order (schema order
    /// per row) — what a durable checkpoint persists.
    pub(crate) fn export_rows(&self) -> Vec<Vec<Datum>> {
        let mut rows = relation_rows(&self.base);
        rows.extend(self.tail.iter().cloned());
        rows
    }

    /// Cache instrumentation.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Drops every cached cube (the next request per key rebuilds).
    pub fn invalidate(&mut self) {
        self.cubes.clear();
    }

    /// Answers one request (see [`Explainer::explain`]).
    pub fn explain(&mut self, request: &ExplainRequest) -> Result<ExplainResult, TsExplainError> {
        self.explain_with_positions(request, None)
    }

    /// Like [`ExplainSession::explain`], but restricting the DP's candidate
    /// cut positions (the streaming hook, paper §8). Positions index into
    /// the request's — possibly time-sliced — series.
    pub fn explain_with_positions(
        &mut self,
        request: &ExplainRequest,
        positions: Option<Vec<usize>>,
    ) -> Result<ExplainResult, TsExplainError> {
        let prepared = self.prepare(request)?;
        prepared.explain_with_positions(request, positions)
    }

    /// Validates `request` against the session and returns its prepared
    /// (possibly time-sliced) cube as a lock-free handle — everything a
    /// multi-strategy fan-out needs from the session, acquired under **one**
    /// lock hold.
    ///
    /// This is the batching primitive behind the server's `/compare`: the
    /// tenant is locked once to prepare, then the four strategies run
    /// [`PreparedCube::explain`] concurrently on a worker pool, each
    /// against the same shared cube (cube cache keys are
    /// strategy-independent). Counts as one request in
    /// [`SessionStats::requests`].
    pub fn prepare(&mut self, request: &ExplainRequest) -> Result<PreparedCube, TsExplainError> {
        self.stats.requests += 1;
        request
            .validate(&self.schema, self.query.time_attr())
            .map_err(TsExplainError::InvalidRequest)?;

        let acquire_start = Instant::now();
        let (cube, from_cache) = self.acquire_cube(request)?;
        let cube = match request.time_range() {
            None => cube,
            Some((start, end)) => Arc::new(self.slice_cube(&cube, request, start, end)?),
        };
        Ok(PreparedCube {
            cube,
            from_cache,
            precompute: acquire_start.elapsed(),
        })
    }

    /// Appends raw rows (schema order). New timestamps must not precede
    /// the session's horizon — tail data extends every cached cube in
    /// `O(new rows)`; restated history forces a transparent full rebuild
    /// (all cached cubes are dropped).
    pub fn append_rows(&mut self, rows: Vec<Vec<Datum>>) -> Result<(), TsExplainError> {
        if rows.is_empty() {
            return Ok(());
        }
        // Surface malformed rows now, independent of cache state: arity,
        // a dimension value in every dimension slot (not just the time
        // attribute), and measure evaluability. A row rejected here must
        // never reach the tail — it would poison every later request.
        for row in &rows {
            if row.len() != self.schema.len() {
                return Err(RelationError::ArityMismatch {
                    expected: self.schema.len(),
                    got: row.len(),
                }
                .into());
            }
            for (idx, field) in self.schema.fields().iter().enumerate() {
                if field.column_type() == ColumnType::Dimension && matches!(row[idx], Datum::Num(_))
                {
                    return Err(RelationError::TypeMismatch {
                        field: field.name().to_string(),
                        expected: "dimension",
                    }
                    .into());
                }
            }
            self.query.measure().eval_row(&self.schema, row)?;
        }
        self.stats.rows_appended += rows.len() as u64;

        if self.is_tail_ordered(&rows)? {
            // Fast path: extend every cached cube at its tail. Encode for
            // every entry *before* mutating any, so a failure cannot leave
            // the cache entries mutually inconsistent.
            let encodings: Vec<(CubeCacheKey, Vec<AppendRow>)> = self
                .cubes
                .iter()
                .map(|(key, entry)| {
                    let encoded = encode_rows(
                        &self.schema,
                        &self.query,
                        &entry.inc.config().explain_by,
                        &rows,
                    )?;
                    Ok((key.clone(), encoded))
                })
                .collect::<Result<_, TsExplainError>>()?;
            let mut all_applied = true;
            for (key, encoded) in encodings {
                let entry = self.cubes.get_mut(&key).expect("key taken from the map");
                if entry.inc.append_batch(&encoded).is_err() {
                    // The session's ordering check and the cube's should
                    // agree; if they ever diverge, fall back to a rebuild
                    // (which drops every entry, including any already
                    // extended) rather than panicking mid-append.
                    all_applied = false;
                    break;
                }
                entry.snapshots.clear();
                entry.recount_bytes();
            }
            if !all_applied {
                self.stats.rebuilds += 1;
                self.tail.extend(rows);
                return self.rebuild_base();
            }
            for row in &rows {
                let time = self.row_time(row)?;
                if self.last_time.as_ref().is_none_or(|last| time > *last) {
                    self.n_points += 1;
                    self.last_time = Some(time);
                }
            }
            self.tail.extend(rows);
            self.enforce_budget(None);
            Ok(())
        } else {
            // Restated or out-of-order history: rebuild from scratch.
            self.stats.rebuilds += 1;
            self.tail.extend(rows);
            self.rebuild_base()
        }
    }

    /// Rewinds the session to its first `n_rows` ingested rows — the
    /// registry's undo for a batch whose WAL append failed after the
    /// session had already applied it. In-memory state and the durable log
    /// must not diverge: a batch the client was *not* acked for cannot
    /// stay resident, or every later acked batch would be logged with a
    /// `seq` that replay sees as a gap and skips. Drops every cached cube;
    /// the next request per key rebuilds (or rehydrates a copy at the
    /// rewound watermark).
    pub(crate) fn rollback_rows_to(&mut self, n_rows: usize) {
        let mut rows = self.export_rows();
        let removed = rows.len().saturating_sub(n_rows) as u64;
        rows.truncate(n_rows);
        self.stats.rows_appended = self.stats.rows_appended.saturating_sub(removed);
        let mut builder = Relation::builder(self.schema.clone());
        for row in rows {
            builder
                .push_row(row)
                .expect("rows were previously accepted by this schema");
        }
        self.base = builder.finish();
        self.tail.clear();
        self.cubes.clear();
        match self.base.dim_column(self.query.time_attr()) {
            Ok(col) => {
                self.n_points = col.dict().len();
                self.last_time = col.dict().values().last().cloned();
            }
            Err(_) => {
                self.n_points = 0;
                self.last_time = None;
            }
        }
    }

    /// Whether `rows` only touch the session's tail: every timestamp at or
    /// after the horizon, and previously-unseen timestamps arriving in
    /// non-decreasing order (the contract of incremental cube appends).
    fn is_tail_ordered(&self, rows: &[Vec<Datum>]) -> Result<bool, TsExplainError> {
        let mut newest = self.last_time.clone();
        let horizon = self.last_time.clone();
        for row in rows {
            let time = self.row_time(row)?;
            if let Some(h) = &horizon {
                if time < *h {
                    return Ok(false);
                }
            }
            if let Some(n) = &newest {
                // `time` is new iff it exceeds the horizon; new timestamps
                // must not interleave backwards.
                if time < *n && horizon.as_ref().is_none_or(|h| time > *h) {
                    return Ok(false);
                }
            }
            if newest.as_ref().is_none_or(|n| time > *n) {
                newest = Some(time);
            }
        }
        Ok(true)
    }

    fn row_time(&self, row: &[Datum]) -> Result<AttrValue, TsExplainError> {
        let idx = self.schema.index_of(self.query.time_attr())?;
        match &row[idx] {
            Datum::Attr(v) => Ok(v.clone()),
            Datum::Num(_) => Err(RelationError::TypeMismatch {
                field: self.query.time_attr().to_string(),
                expected: "dimension",
            }
            .into()),
        }
    }

    /// Re-materializes `base` from all rows seen so far and drops every
    /// cached cube. The only path that pays the full O(total rows) cost.
    fn rebuild_base(&mut self) -> Result<(), TsExplainError> {
        let mut builder = Relation::builder(self.schema.clone());
        for row in relation_rows(&self.base) {
            builder.push_row(row)?;
        }
        for row in self.tail.drain(..) {
            builder.push_row(row)?;
        }
        self.base = builder.finish();
        self.cubes.clear();
        let col = self.base.dim_column(self.query.time_attr())?;
        self.n_points = col.dict().len();
        self.last_time = col.dict().values().last().cloned();
        Ok(())
    }

    /// Returns the prepared cube for `request`, building (and caching) it
    /// on a miss. The `bool` is true when the request was answered from an
    /// up-to-date cached snapshot.
    fn acquire_cube(
        &mut self,
        request: &ExplainRequest,
    ) -> Result<(Arc<ExplanationCube>, bool), TsExplainError> {
        let _span = tsexplain_obs::trace::span("cube_acquire");
        let mut cube_config = CubeConfig::new(request.explain_by().iter().cloned())
            .with_max_order(request.max_order());
        cube_config.filter_ratio = request.optimizations().filter_ratio;
        let key = cube_config.cache_key();
        let smoothing = request.smoothing_window().max(1);
        let stamp = self.tick();

        if let Some(entry) = self.cubes.get_mut(&key) {
            entry.last_used = stamp;
            let (cube, was_ready) = entry.snapshot(smoothing)?;
            if was_ready {
                self.stats.cube_cache_hits += 1;
            } else {
                self.stats.cube_refreshes += 1;
            }
            self.enforce_budget(Some(&key));
            return Ok((cube, was_ready));
        }

        // Cache miss. With a spill tier attached, a previously demoted
        // cube at the session's exact row watermark is decoded back into
        // memory bit-identically — no recompute. A stale copy (rows
        // arrived after the demotion) or one whose key no longer matches
        // (fingerprint collision) is discarded and rebuilt below.
        if let Some(spill) = self.spill.clone() {
            let _span = tsexplain_obs::trace::span("spill_rehydrate");
            if let Some(bytes) = spill.rehydrate(key.fingerprint()) {
                match IncrementalCube::from_snapshot_bytes(&bytes) {
                    Ok(inc)
                        if inc.config().cache_key() == key
                            && inc.rows_ingested() == self.base.n_rows() + self.tail.len() =>
                    {
                        self.stats.cube_rehydrations += 1;
                        spill.note_rehydrated();
                        let mut entry = CacheEntry::new(inc, stamp);
                        let (cube, _) = entry.snapshot(smoothing)?;
                        self.cubes.insert(key.clone(), entry);
                        self.enforce_budget(Some(&key));
                        return Ok((cube, false));
                    }
                    _ => spill.discard(key.fingerprint()),
                }
            }
        }

        // Cold build. An empty base with pending tail rows (streaming cold
        // start) is materialized first so the seed scan is columnar.
        if self.base.is_empty() {
            if self.tail.is_empty() {
                return Err(TsExplainError::Cube(CubeError::EmptyInput));
            }
            self.rebuild_base()?;
            // A rebuild drops cached cubes, but on this path the cache was
            // already missing this key; other keys are rebuilt on demand.
        }
        let _build_span = tsexplain_obs::trace::span("cube_build");
        let par = request.parallel_ctx();
        let mut inc =
            IncrementalCube::from_relation_with(&self.base, &self.query, &cube_config, &par)?;
        if !self.tail.is_empty() {
            let encoded = encode_rows(&self.schema, &self.query, request.explain_by(), &self.tail)?;
            if let Err(e) = inc.append_batch(&encoded) {
                match e {
                    CubeError::RestatedTimestamp(_) => {
                        // Tail rows predate the base horizon (possible
                        // after out-of-order appends): fold them in.
                        self.stats.rebuilds += 1;
                        self.rebuild_base()?;
                        inc = IncrementalCube::from_relation_with(
                            &self.base,
                            &self.query,
                            &cube_config,
                            &par,
                        )?;
                    }
                    other => return Err(other.into()),
                }
            }
        }
        self.stats.cubes_built += 1;
        let mut entry = CacheEntry::new(inc, stamp);
        let (cube, _) = entry.snapshot(smoothing)?;
        self.cubes.insert(key.clone(), entry);
        self.enforce_budget(Some(&key));
        Ok((cube, false))
    }

    /// Resolves a time-range restriction against the cube's axis and
    /// slices it.
    fn slice_cube(
        &self,
        cube: &ExplanationCube,
        request: &ExplainRequest,
        start: &AttrValue,
        end: &AttrValue,
    ) -> Result<ExplanationCube, TsExplainError> {
        let empty = || {
            TsExplainError::InvalidRequest(InvalidRequest::EmptyTimeRange {
                start: start.to_string(),
                end: end.to_string(),
            })
        };
        if start > end {
            return Err(empty());
        }
        let timestamps = cube.timestamps();
        let lo = timestamps.partition_point(|t| t < start);
        let hi = timestamps.partition_point(|t| t <= end);
        if hi <= lo + 1 {
            return Err(empty());
        }
        cube.slice_time(lo, hi - 1, request.optimizations().filter_ratio)
            .map_err(|e| match e {
                CubeError::InvalidTimeSlice { .. } => empty(),
                other => other.into(),
            })
    }
}

impl Explainer for ExplainSession {
    fn explain(&mut self, request: &ExplainRequest) -> Result<ExplainResult, TsExplainError> {
        ExplainSession::explain(self, request)
    }
}

/// A request's prepared cube, detached from its session (see
/// [`ExplainSession::prepare`]): the shared snapshot plus the precompute
/// metadata every answer derived from it reports.
///
/// `Send + Sync` by construction (the cube is immutable behind an `Arc`),
/// so a fan-out can hand one `PreparedCube` to many worker threads without
/// touching the session again — no per-strategy re-locking, no lock held
/// across pipeline work.
#[derive(Clone, Debug)]
pub struct PreparedCube {
    cube: Arc<ExplanationCube>,
    from_cache: bool,
    precompute: Duration,
}

impl PreparedCube {
    /// Number of points of the (possibly time-sliced) series the cube
    /// answers over — what window auto-sizing must fit.
    pub fn n_points(&self) -> usize {
        self.cube.n_points()
    }

    /// Whether the cube came from an up-to-date cached snapshot.
    pub fn from_cache(&self) -> bool {
        self.from_cache
    }

    /// The prepared cube itself.
    pub fn cube(&self) -> &ExplanationCube {
        &self.cube
    }

    /// Answers `request` against the prepared cube. The request must ask
    /// the same cube-shaping knobs the cube was prepared with (explain-by,
    /// max order, filter, smoothing, time range) — a fan-out varies only
    /// per-strategy knobs on a shared base request. Thread-safe: `&self`.
    pub fn explain(&self, request: &ExplainRequest) -> Result<ExplainResult, TsExplainError> {
        self.explain_with_positions(request, None)
    }

    /// [`PreparedCube::explain`] with restricted candidate cut positions
    /// (the streaming hook).
    pub fn explain_with_positions(
        &self,
        request: &ExplainRequest,
        positions: Option<Vec<usize>>,
    ) -> Result<ExplainResult, TsExplainError> {
        let mut result = explain_cube_request(&self.cube, request, positions)?;
        result.latency.precompute = self.precompute;
        result.stats.cube_from_cache = self.from_cache;
        Ok(result)
    }
}

/// Validates that every column a measure expression references exists and
/// is a measure.
fn validate_measure(
    schema: &Schema,
    measure: &tsexplain_relation::MeasureExpr,
) -> Result<(), TsExplainError> {
    use tsexplain_relation::MeasureExpr;
    let check = |name: &String| {
        schema.measure_index(name).map(|_| ()).map_err(|_| {
            TsExplainError::InvalidRequest(InvalidRequest::UnknownMeasure(name.clone()))
        })
    };
    match measure {
        MeasureExpr::Column(name) => check(name),
        MeasureExpr::Product(a, b) => {
            check(a)?;
            check(b)
        }
        MeasureExpr::Scaled(inner, _) => validate_measure(schema, inner),
    }
}

/// Extracts `(time, explain-by values, measure)` triples from raw rows for
/// one cube configuration.
fn encode_rows(
    schema: &Schema,
    query: &AggQuery,
    explain_by: &[String],
    rows: &[Vec<Datum>],
) -> Result<Vec<AppendRow>, TsExplainError> {
    let time_idx = schema.index_of(query.time_attr())?;
    let attr_idx: Vec<usize> = explain_by
        .iter()
        .map(|a| schema.index_of(a))
        .collect::<Result<_, _>>()?;
    let attr_value = |row: &[Datum], idx: usize, name: &str| match &row[idx] {
        Datum::Attr(v) => Ok(v.clone()),
        Datum::Num(_) => Err(TsExplainError::Relation(RelationError::TypeMismatch {
            field: name.to_string(),
            expected: "dimension",
        })),
    };
    rows.iter()
        .map(|row| {
            let time = attr_value(row, time_idx, query.time_attr())?;
            let attrs = attr_idx
                .iter()
                .zip(explain_by)
                .map(|(&idx, name)| attr_value(row, idx, name))
                .collect::<Result<Vec<_>, _>>()?;
            let measure = query.measure().eval_row(schema, row)?;
            Ok((time, attrs, measure))
        })
        .collect()
}

/// Reconstructs raw rows (schema order) from a materialized relation — the
/// slow-path input to [`ExplainSession::rebuild_base`].
fn relation_rows(rel: &Relation) -> Vec<Vec<Datum>> {
    let schema = rel.schema();
    let mut rows = vec![Vec::with_capacity(schema.len()); rel.n_rows()];
    for idx in 0..schema.len() {
        match rel.column(idx) {
            Column::Dimension(col) => {
                for (row, &code) in col.codes().iter().enumerate() {
                    rows[row].push(Datum::Attr(col.dict().value(code).clone()));
                }
            }
            Column::Measure(values) => {
                for (row, &v) in values.iter().enumerate() {
                    rows[row].push(Datum::Num(v));
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;
    use tsexplain_diff::DiffMetric;
    use tsexplain_relation::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap()
    }

    fn rows_for(range: std::ops::Range<i64>) -> Vec<Vec<Datum>> {
        let mut rows = Vec::new();
        for t in range {
            let ny = if t <= 10 { 8.0 * t as f64 } else { 80.0 };
            let ca = if t <= 10 {
                2.0
            } else if t <= 20 {
                2.0 + 9.0 * (t - 10) as f64
            } else {
                92.0
            };
            rows.push(vec![Datum::Attr(t.into()), "NY".into(), ny.into()]);
            rows.push(vec![Datum::Attr(t.into()), "CA".into(), ca.into()]);
        }
        rows
    }

    fn relation(range: std::ops::Range<i64>) -> Relation {
        let mut b = Relation::builder(schema());
        for row in rows_for(range) {
            b.push_row(row).unwrap();
        }
        b.finish()
    }

    fn session() -> ExplainSession {
        ExplainSession::new(relation(0..21), AggQuery::sum("t", "v")).unwrap()
    }

    fn base_request() -> ExplainRequest {
        ExplainRequest::new(["state"]).with_optimizations(Optimizations::none())
    }

    #[test]
    fn serves_many_requests_from_one_cube() {
        let mut s = session();
        let r1 = s.explain(&base_request()).unwrap();
        let r2 = s.explain(&base_request().with_fixed_k(3)).unwrap();
        let r3 = s
            .explain(
                &base_request()
                    .with_top_m(1)
                    .with_diff_metric(DiffMetric::RelativeChange),
            )
            .unwrap();
        assert_eq!(s.stats().cubes_built, 1, "one cube for all three requests");
        assert_eq!(s.stats().cube_cache_hits, 2);
        assert!(!r1.stats.cube_from_cache);
        assert!(r2.stats.cube_from_cache && r3.stats.cube_from_cache);
        assert_eq!(r2.chosen_k, 3);
        assert!(r3.segments.iter().all(|seg| seg.explanations.len() <= 1));
    }

    #[test]
    fn all_strategies_share_one_cached_cube() {
        use crate::segmenter::SegmenterSpec;
        let mut s = session();
        for spec in SegmenterSpec::all_for(21) {
            let result = s.explain(&base_request().with_segmenter(spec)).unwrap();
            assert_eq!(result.strategy, spec.name());
        }
        assert_eq!(
            s.stats().cubes_built,
            1,
            "cube cache keys must be strategy-independent"
        );
        assert_eq!(s.stats().cube_cache_hits, 3);
    }

    #[test]
    fn differing_cube_knobs_build_separate_cubes() {
        let mut s = session();
        s.explain(&base_request()).unwrap();
        s.explain(&base_request().with_max_order(1)).unwrap();
        assert_eq!(s.stats().cubes_built, 2);
        assert_eq!(s.cached_cubes(), 2);
        // A different smoothing window reuses the incremental state — only
        // the finalized snapshot is re-derived.
        s.explain(&base_request().with_smoothing(3)).unwrap();
        assert_eq!(s.stats().cubes_built, 2);
        assert_eq!(s.cached_cubes(), 2);
        assert_eq!(s.stats().cube_refreshes, 1);
        // Asking for that smoothing again is a plain cache hit.
        s.explain(&base_request().with_smoothing(3)).unwrap();
        assert_eq!(s.stats().cube_cache_hits, 1);
    }

    #[test]
    fn cached_results_are_bit_identical_to_cold_runs() {
        let mut warm = session();
        let first = warm.explain(&base_request()).unwrap();
        let cached = warm.explain(&base_request()).unwrap();
        let mut cold = session();
        let fresh = cold.explain(&base_request()).unwrap();
        for result in [&cached, &fresh] {
            assert_eq!(result.segmentation, first.segmentation);
            assert_eq!(result.chosen_k, first.chosen_k);
            assert_eq!(result.total_variance, first.total_variance);
            assert_eq!(result.aggregate, first.aggregate);
            assert_eq!(result.k_variance_curve, first.k_variance_curve);
        }
        assert!(cached.stats.cube_from_cache);
        assert!(cached.latency.precompute <= fresh.latency.precompute);
    }

    #[test]
    fn time_range_restricts_the_horizon() {
        let mut s = session();
        let full = s.explain(&base_request()).unwrap();
        let windowed = s
            .explain(&base_request().with_time_range(5i64, 15i64))
            .unwrap();
        assert_eq!(windowed.stats.n_points, 11);
        assert_eq!(windowed.timestamps[0], AttrValue::from(5));
        assert!(windowed.stats.n_points < full.stats.n_points);
        // The window reused the cached full cube.
        assert_eq!(s.stats().cubes_built, 1);
    }

    #[test]
    fn empty_time_ranges_are_rejected() {
        let mut s = session();
        for (a, b) in [(15i64, 5i64), (100, 200), (7, 7)] {
            let err = s
                .explain(&base_request().with_time_range(a, b))
                .unwrap_err();
            assert!(
                matches!(
                    err,
                    TsExplainError::InvalidRequest(InvalidRequest::EmptyTimeRange { .. })
                ),
                "({a}, {b}) gave {err:?}"
            );
        }
    }

    #[test]
    fn invalid_requests_never_build_cubes() {
        let mut s = session();
        assert!(s.explain(&ExplainRequest::new(["nope"])).is_err());
        assert!(s
            .explain(&ExplainRequest::new(Vec::<String>::new()))
            .is_err());
        assert!(s.explain(&base_request().with_fixed_k(0)).is_err());
        assert_eq!(s.stats().cubes_built, 0);
        assert_eq!(s.cached_cubes(), 0);
        // Infeasible K against the known horizon is caught with the cube
        // built but before any pipeline work.
        let err = s.explain(&base_request().with_fixed_k(21)).unwrap_err();
        assert!(matches!(
            err,
            TsExplainError::InvalidRequest(InvalidRequest::InfeasibleK { k: 21, n: 21 })
        ));
    }

    #[test]
    fn session_registration_validates_query() {
        let rel = relation(0..5);
        let err = ExplainSession::new(rel.clone(), AggQuery::sum("nope", "v")).unwrap_err();
        assert!(matches!(
            err,
            TsExplainError::InvalidRequest(InvalidRequest::UnknownTimeAttribute(_))
        ));
        let err = ExplainSession::new(rel.clone(), AggQuery::sum("t", "nope")).unwrap_err();
        assert!(matches!(
            err,
            TsExplainError::InvalidRequest(InvalidRequest::UnknownMeasure(_))
        ));
        // The time attribute must be a dimension, not a measure.
        let err = ExplainSession::new(rel, AggQuery::sum("v", "v")).unwrap_err();
        assert!(matches!(
            err,
            TsExplainError::InvalidRequest(InvalidRequest::UnknownTimeAttribute(_))
        ));
    }

    #[test]
    fn rollback_restores_the_exact_pre_batch_state() {
        let mut s = ExplainSession::new(relation(0..12), AggQuery::sum("t", "v")).unwrap();
        let expected = s.explain(&base_request()).unwrap();
        let watermark = s.total_rows();
        s.append_rows(rows_for(12..21)).unwrap();
        // The registry's WAL-failure undo: the batch must vanish entirely.
        s.rollback_rows_to(watermark);
        assert_eq!(s.total_rows(), watermark);
        assert_eq!(s.n_points(), 12);
        assert_eq!(s.stats().rows_appended, 0);
        let after = s.explain(&base_request()).unwrap();
        assert_eq!(after.segmentation, expected.segmentation);
        assert_eq!(after.aggregate, expected.aggregate);
        assert_eq!(after.total_variance, expected.total_variance);
        // The session keeps serving appends after a rollback.
        s.append_rows(rows_for(12..21)).unwrap();
        assert_eq!(s.explain(&base_request()).unwrap().stats.n_points, 21);
    }

    #[test]
    fn appends_extend_cached_cubes_incrementally() {
        let mut s = ExplainSession::new(relation(0..12), AggQuery::sum("t", "v")).unwrap();
        let first = s.explain(&base_request()).unwrap();
        assert_eq!(first.stats.n_points, 12);
        s.append_rows(rows_for(12..21)).unwrap();
        assert_eq!(s.n_points(), 21);
        let second = s.explain(&base_request()).unwrap();
        assert_eq!(second.stats.n_points, 21);
        // The cube was refreshed from incremental state, not rebuilt.
        assert_eq!(s.stats().cubes_built, 1);
        assert_eq!(s.stats().cube_refreshes, 1);
        assert_eq!(s.stats().rebuilds, 0);
        // Replayed result matches a cold session over all the data.
        let mut cold = session();
        let batch = cold.explain(&base_request()).unwrap();
        assert_eq!(second.segmentation, batch.segmentation);
        assert_eq!(second.aggregate, batch.aggregate);
    }

    #[test]
    fn restated_history_falls_back_to_rebuild() {
        let mut s = ExplainSession::new(relation(5..12), AggQuery::sum("t", "v")).unwrap();
        s.explain(&base_request()).unwrap();
        // Rows before the horizon: a restatement.
        s.append_rows(rows_for(0..5)).unwrap();
        assert_eq!(s.stats().rebuilds, 1);
        assert_eq!(s.cached_cubes(), 0, "rebuild drops cached cubes");
        assert_eq!(s.n_points(), 12);
        let result = s.explain(&base_request()).unwrap();
        assert_eq!(result.stats.n_points, 12);
        // Result equals a cold session over the union.
        let mut cold = ExplainSession::new(relation(0..12), AggQuery::sum("t", "v")).unwrap();
        let batch = cold.explain(&base_request()).unwrap();
        assert_eq!(result.segmentation, batch.segmentation);
        assert_eq!(result.aggregate, batch.aggregate);
    }

    #[test]
    fn streaming_cold_start_from_empty_relation() {
        let empty = Relation::builder(schema()).finish();
        let mut s = ExplainSession::new(empty, AggQuery::sum("t", "v")).unwrap();
        assert!(matches!(
            s.explain(&base_request()),
            Err(TsExplainError::Cube(CubeError::EmptyInput))
        ));
        s.append_rows(rows_for(0..8)).unwrap();
        let result = s.explain(&base_request()).unwrap();
        assert_eq!(result.stats.n_points, 8);
    }

    #[test]
    fn malformed_rows_are_rejected_before_ingestion() {
        let mut s = session();
        let before = s.n_points();
        // Wrong arity.
        assert!(s
            .append_rows(vec![vec![Datum::Attr(99i64.into())]])
            .is_err());
        // Numeric datum in the time slot.
        assert!(s
            .append_rows(vec![vec![Datum::Num(1.0), "NY".into(), 1.0.into()]])
            .is_err());
        // String where the measure belongs.
        assert!(s
            .append_rows(vec![vec![
                Datum::Attr(99i64.into()),
                "NY".into(),
                "x".into()
            ]])
            .is_err());
        assert_eq!(s.n_points(), before, "rejected rows must not be ingested");
    }

    #[test]
    fn invalidate_forces_rebuild() {
        let mut s = session();
        s.explain(&base_request()).unwrap();
        s.invalidate();
        assert_eq!(s.cached_cubes(), 0);
        s.explain(&base_request()).unwrap();
        assert_eq!(s.stats().cubes_built, 2);
    }

    #[test]
    fn tight_budget_evicts_lru_cube_and_rebuilds_on_demand() {
        let mut s = session();
        let full = s.explain(&base_request()).unwrap(); // cube A
        let a_bytes = s.cache_bytes();
        assert!(a_bytes > 0);
        // Budget admits exactly one cube: building B must evict A (the
        // LRU entry), never B itself (it serves the current request).
        s.set_cache_budget(a_bytes);
        s.explain(&base_request().with_max_order(1)).unwrap(); // cube B
        assert_eq!(s.cached_cubes(), 1);
        assert_eq!(s.stats().cube_evictions, 1);
        // The evicted key keeps serving correctly: a rebuild, not an error.
        let again = s.explain(&base_request()).unwrap();
        assert_eq!(s.stats().cubes_built, 3);
        assert_eq!(again.segmentation, full.segmentation);
        assert_eq!(again.aggregate, full.aggregate);
        assert_eq!(s.stats().cube_evictions, 2, "B was LRU this time");
    }

    #[test]
    fn eviction_follows_recency_not_insertion_order() {
        let mut s = session();
        s.explain(&base_request()).unwrap(); // A
        s.explain(&base_request().with_max_order(1)).unwrap(); // B
        s.explain(&base_request()).unwrap(); // touch A → B is now LRU
        assert_eq!(s.stats().cube_cache_hits, 1);
        let bytes = s.cache_bytes();
        s.set_cache_budget(bytes - 1); // exactly one entry must go
        assert_eq!(s.cached_cubes(), 1);
        assert_eq!(s.stats().cube_evictions, 1);
        // A survived (recently touched): asking for it again is a hit.
        s.explain(&base_request()).unwrap();
        assert_eq!(s.stats().cube_cache_hits, 2);
        assert_eq!(s.stats().cubes_built, 2, "A was never rebuilt");
    }

    #[test]
    fn zero_budget_caches_at_most_the_serving_cube() {
        let mut s = session().with_cache_budget(0);
        let r1 = s.explain(&base_request()).unwrap();
        // The cube serving the current request is never evicted, so the
        // same key still hits…
        let r2 = s.explain(&base_request()).unwrap();
        assert_eq!(s.cached_cubes(), 1);
        // …but any other key displaces it immediately.
        s.explain(&base_request().with_max_order(1)).unwrap();
        assert_eq!(s.cached_cubes(), 1);
        assert_eq!(s.stats().cube_evictions, 1);
        s.explain(&base_request()).unwrap();
        assert_eq!(s.stats().cubes_built, 3);
        assert_eq!(s.stats().cube_evictions, 2);
        assert_eq!(r1.segmentation, r2.segmentation);
        assert_eq!(r1.aggregate, r2.aggregate);
    }

    #[test]
    fn cache_bytes_track_appends() {
        let mut s = ExplainSession::new(relation(0..12), AggQuery::sum("t", "v")).unwrap();
        s.explain(&base_request()).unwrap();
        let before = s.cache_bytes();
        s.append_rows(rows_for(12..21)).unwrap();
        s.explain(&base_request()).unwrap();
        assert!(
            s.cache_bytes() > before,
            "appended rows must grow the estimate"
        );
    }

    #[test]
    fn explainer_trait_is_object_safe_and_answers() {
        let mut s = session();
        let explainer: &mut dyn Explainer = &mut s;
        let result = explainer.explain(&base_request()).unwrap();
        assert_eq!(result.stats.n_points, 21);
    }
}
