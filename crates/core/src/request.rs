//! The typed per-query request of the serving API.
//!
//! A [`crate::ExplainSession`] registers a relation and an aggregation
//! query once; every subsequent question an analyst asks — different K,
//! different top-m, a different difference metric, a restricted time window,
//! a different segmentation strategy — is an [`ExplainRequest`]. Requests
//! are cheap values, validated upfront ([`InvalidRequest`]), and
//! serializable, so they can cross a service boundary as JSON.

use std::fmt;

use tsexplain_diff::DiffMetric;
use tsexplain_parallel::{CancelToken, ParallelCtx};
use tsexplain_relation::{AttrValue, ColumnType, Schema};
use tsexplain_segment::{KSelection, SketchConfig, VarianceMetric};

use crate::config::Optimizations;
use crate::segmenter::SegmenterSpec;

/// A rejected [`ExplainRequest`], detected before any pipeline work runs.
#[derive(Clone, Debug, PartialEq)]
pub enum InvalidRequest {
    /// The explain-by set was empty.
    EmptyExplainBy,
    /// An explain-by attribute is not a dimension of the registered
    /// relation.
    UnknownAttribute(String),
    /// An explain-by attribute equals the query's time attribute.
    TimeAttrInExplainBy(String),
    /// An explain-by attribute was listed twice.
    DuplicateAttribute(String),
    /// `top_m` was zero — every segment needs at least one explanation
    /// slot.
    ZeroTopM,
    /// `max_order` was zero — candidates have order at least 1.
    ZeroMaxOrder,
    /// A fixed or maximum K of zero, or a fixed K exceeding `n − 1`
    /// segments for an `n`-point series.
    InfeasibleK {
        /// The requested K.
        k: usize,
        /// The series length it was checked against (0 when rejected
        /// before the series length is known).
        n: usize,
    },
    /// The time-range restriction selects fewer than two points.
    EmptyTimeRange {
        /// Render of the requested range start.
        start: String,
        /// Render of the requested range end.
        end: String,
    },
    /// The session was registered with a time attribute that is not a
    /// dimension of the relation.
    UnknownTimeAttribute(String),
    /// The session's query references a measure column that does not
    /// exist.
    UnknownMeasure(String),
    /// A window-parameterized segmentation strategy (FLUSS, NNSegment)
    /// was given a window the strategy cannot run with: below 2, or too
    /// large for the (possibly time-sliced) series.
    SegmenterWindow {
        /// The strategy's wire name.
        strategy: String,
        /// The rejected window.
        window: usize,
        /// The series length it was checked against (0 when rejected
        /// before the series length is known).
        n: usize,
    },
}

impl fmt::Display for InvalidRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidRequest::EmptyExplainBy => {
                write!(f, "explain-by set is empty; name at least one dimension")
            }
            InvalidRequest::UnknownAttribute(a) => {
                write!(
                    f,
                    "explain-by attribute {a:?} is not a dimension of the registered relation"
                )
            }
            InvalidRequest::TimeAttrInExplainBy(a) => {
                write!(
                    f,
                    "explain-by attribute {a:?} is the query's time attribute"
                )
            }
            InvalidRequest::DuplicateAttribute(a) => {
                write!(f, "explain-by attribute {a:?} listed twice")
            }
            InvalidRequest::ZeroTopM => write!(f, "top-m must be at least 1"),
            InvalidRequest::ZeroMaxOrder => write!(f, "max explanation order must be at least 1"),
            InvalidRequest::InfeasibleK { k, n } => {
                if *n == 0 {
                    write!(f, "K = {k} is infeasible (K must be at least 1)")
                } else {
                    write!(
                        f,
                        "K = {k} is infeasible for a series of {n} points (max {})",
                        n - 1
                    )
                }
            }
            InvalidRequest::EmptyTimeRange { start, end } => {
                write!(
                    f,
                    "time range [{start}, {end}] selects fewer than two points"
                )
            }
            InvalidRequest::UnknownTimeAttribute(a) => {
                write!(f, "time attribute {a:?} is not a dimension of the relation")
            }
            InvalidRequest::UnknownMeasure(m) => {
                write!(f, "measure column {m:?} does not exist in the relation")
            }
            InvalidRequest::SegmenterWindow {
                strategy,
                window,
                n,
            } => {
                if *n == 0 {
                    write!(
                        f,
                        "segmenter {strategy:?} window {window} is too small (min 2)"
                    )
                } else {
                    write!(
                        f,
                        "segmenter {strategy:?} window {window} is too large for a \
                         series of {n} points"
                    )
                }
            }
        }
    }
}

impl std::error::Error for InvalidRequest {}

/// One explanation query against a registered session (see module docs).
///
/// Construction follows the builder idiom, with the paper's defaults:
/// m = 3, β̄ = 3, absolute-change, `tse` variance, elbow-selected K ≤ 20,
/// all optimizations, no smoothing, full horizon, the explanation-aware DP
/// segmenter.
#[derive(Clone, Debug, PartialEq)]
pub struct ExplainRequest {
    explain_by: Vec<String>,
    top_m: usize,
    max_order: usize,
    diff_metric: DiffMetric,
    variance_metric: VarianceMetric,
    k: KSelection,
    optimizations: Optimizations,
    smoothing_window: usize,
    time_range: Option<(AttrValue, AttrValue)>,
    segmenter: SegmenterSpec,
    /// Intra-query worker threads; `None` defers to the process default
    /// (`TSX_THREADS` / the machine). Results are byte-identical at any
    /// setting — the determinism contract of `tsexplain-parallel` — so
    /// this is a performance knob, never a correctness one.
    threads: Option<usize>,
    /// The client's requested time budget in milliseconds — a wire member.
    /// The server clamps it to its own `--request-timeout-ms` cap when
    /// minting the request's [`crate::Deadline`]; a client can tighten the
    /// budget but never loosen it.
    timeout_ms: Option<u64>,
    /// The runtime cancellation token the compute layers poll — attached by
    /// the serving layer after minting the deadline, never from the wire.
    /// Like `threads`, it can only turn a result into a typed error, never
    /// change what a successful result contains.
    cancel: Option<CancelToken>,
}

impl ExplainRequest {
    /// A request with the paper's defaults for the given explain-by
    /// attributes.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(explain_by: I) -> Self {
        ExplainRequest {
            explain_by: explain_by.into_iter().map(Into::into).collect(),
            top_m: 3,
            max_order: 3,
            diff_metric: DiffMetric::AbsoluteChange,
            variance_metric: VarianceMetric::Tse,
            k: KSelection::default(),
            optimizations: Optimizations::default(),
            smoothing_window: 1,
            time_range: None,
            segmenter: SegmenterSpec::default(),
            threads: None,
            timeout_ms: None,
            cancel: None,
        }
    }

    /// Sets m, the number of explanations per segment.
    pub fn with_top_m(mut self, m: usize) -> Self {
        self.top_m = m;
        self
    }

    /// Sets β̄, the maximum explanation order.
    pub fn with_max_order(mut self, order: usize) -> Self {
        self.max_order = order;
        self
    }

    /// Sets the difference metric γ.
    pub fn with_diff_metric(mut self, metric: DiffMetric) -> Self {
        self.diff_metric = metric;
        self
    }

    /// Sets the within-segment variance design.
    pub fn with_variance_metric(mut self, metric: VarianceMetric) -> Self {
        self.variance_metric = metric;
        self
    }

    /// Fixes K.
    pub fn with_fixed_k(mut self, k: usize) -> Self {
        self.k = KSelection::Fixed(k);
        self
    }

    /// Selects K with the elbow method, capped at `max_k`.
    pub fn with_max_k(mut self, max_k: usize) -> Self {
        self.k = KSelection::Auto { max_k };
        self
    }

    /// Sets the optimization bundle.
    pub fn with_optimizations(mut self, optimizations: Optimizations) -> Self {
        self.optimizations = optimizations;
        self
    }

    /// Sets the pre-explanation smoothing window (`<= 1` = off).
    pub fn with_smoothing(mut self, window: usize) -> Self {
        self.smoothing_window = window;
        self
    }

    /// Selects the segmentation strategy (default:
    /// [`SegmenterSpec::Dp`], the paper's explanation-aware DP).
    pub fn with_segmenter(mut self, segmenter: SegmenterSpec) -> Self {
        self.segmenter = segmenter;
        self
    }

    /// Restricts the explanation to timestamps in `[start, end]`
    /// (inclusive). The window must cover at least two points of the
    /// series.
    pub fn with_time_range(
        mut self,
        start: impl Into<AttrValue>,
        end: impl Into<AttrValue>,
    ) -> Self {
        self.time_range = Some((start.into(), end.into()));
        self
    }

    /// Clears the time-range restriction (full horizon).
    pub fn with_full_horizon(mut self) -> Self {
        self.time_range = None;
        self
    }

    /// Sets the intra-query worker thread count (`0` = machine default;
    /// clamped by the parallel layer). The answer is byte-identical at any
    /// thread count; only latency changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Reverts to the process-default thread count (`TSX_THREADS`).
    pub fn with_default_threads(mut self) -> Self {
        self.threads = None;
        self
    }

    /// The explicit thread-count override, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// Requests a client-side time budget of `ms` milliseconds (the wire
    /// `timeout_ms` member). The serving layer clamps it to the server cap.
    pub fn with_timeout_ms(mut self, ms: u64) -> Self {
        self.timeout_ms = Some(ms);
        self
    }

    /// Clears the client-side time budget.
    pub fn with_no_timeout(mut self) -> Self {
        self.timeout_ms = None;
        self
    }

    /// The client's requested time budget in milliseconds, if any.
    pub fn timeout_ms(&self) -> Option<u64> {
        self.timeout_ms
    }

    /// Attaches the cancellation token the compute layers will poll
    /// (normally the minted deadline's token — see [`crate::Deadline`]).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The parallel execution context this request runs under: the
    /// explicit override when set, the process default otherwise — with
    /// the request's cancellation token (if any) attached so every fanned
    /// worker polls it.
    pub fn parallel_ctx(&self) -> ParallelCtx {
        let ctx = match self.threads {
            Some(t) => ParallelCtx::new(t),
            None => ParallelCtx::from_env(),
        };
        match &self.cancel {
            Some(token) => ctx.with_cancel(token.clone()),
            None => ctx,
        }
    }

    /// The explain-by attributes A.
    pub fn explain_by(&self) -> &[String] {
        &self.explain_by
    }

    /// m — explanations per segment.
    pub fn top_m(&self) -> usize {
        self.top_m
    }

    /// β̄ — maximum explanation order.
    pub fn max_order(&self) -> usize {
        self.max_order
    }

    /// The difference metric γ.
    pub fn diff_metric(&self) -> DiffMetric {
        self.diff_metric
    }

    /// The within-segment variance design.
    pub fn variance_metric(&self) -> VarianceMetric {
        self.variance_metric
    }

    /// The K selection policy.
    pub fn k_selection(&self) -> KSelection {
        self.k
    }

    /// The optimization bundle.
    pub fn optimizations(&self) -> Optimizations {
        self.optimizations
    }

    /// The smoothing window (`<= 1` = off).
    pub fn smoothing_window(&self) -> usize {
        self.smoothing_window
    }

    /// The segmentation strategy.
    pub fn segmenter(&self) -> SegmenterSpec {
        self.segmenter
    }

    /// The time-range restriction, if any.
    pub fn time_range(&self) -> Option<&(AttrValue, AttrValue)> {
        self.time_range.as_ref()
    }

    /// Validates everything checkable without the series length: explain-by
    /// attributes against the relation's schema, structural knobs, K being
    /// nonzero, and the segmenter's window being at least 2. `K ≤ n − 1`
    /// and window-vs-length feasibility are checked by the session once
    /// the series length is known ([`ExplainRequest::validate_for_series`]).
    pub fn validate(&self, schema: &Schema, time_attr: &str) -> Result<(), InvalidRequest> {
        if self.explain_by.is_empty() {
            return Err(InvalidRequest::EmptyExplainBy);
        }
        for (i, a) in self.explain_by.iter().enumerate() {
            if a == time_attr {
                return Err(InvalidRequest::TimeAttrInExplainBy(a.clone()));
            }
            if self.explain_by[..i].contains(a) {
                return Err(InvalidRequest::DuplicateAttribute(a.clone()));
            }
            let is_dimension = schema
                .index_of(a)
                .is_ok_and(|idx| schema.field(idx).column_type() == ColumnType::Dimension);
            if !is_dimension {
                return Err(InvalidRequest::UnknownAttribute(a.clone()));
            }
        }
        if self.top_m == 0 {
            return Err(InvalidRequest::ZeroTopM);
        }
        if self.max_order == 0 {
            return Err(InvalidRequest::ZeroMaxOrder);
        }
        match self.k {
            KSelection::Fixed(0) | KSelection::Auto { max_k: 0 } => {
                return Err(InvalidRequest::InfeasibleK { k: 0, n: 0 })
            }
            _ => {}
        }
        self.segmenter.validate()
    }

    /// Checks the request against the (possibly window-restricted) series
    /// length: a fixed K admits at most `n − 1` segments, and a
    /// window-parameterized strategy must fit the series.
    pub(crate) fn validate_for_series(&self, n: usize) -> Result<(), InvalidRequest> {
        if let KSelection::Fixed(k) = self.k {
            if k > n.saturating_sub(1) {
                return Err(InvalidRequest::InfeasibleK { k, n });
            }
        }
        self.segmenter.validate_for_series(n)
    }

    /// The sketch configuration, when O2 is enabled.
    pub(crate) fn sketching(&self) -> Option<SketchConfig> {
        self.optimizations.sketching
    }
}

impl Default for ExplainRequest {
    /// A request with no explain-by attributes — invalid until
    /// attributes are supplied; useful as deserialization scaffolding.
    fn default() -> Self {
        ExplainRequest::new(Vec::<String>::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_relation::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::dimension("date"),
            Field::dimension("state"),
            Field::dimension("pack"),
            Field::measure("sold"),
        ])
        .unwrap()
    }

    #[test]
    fn defaults_match_paper() {
        let r = ExplainRequest::new(["state"]);
        assert_eq!(r.top_m(), 3);
        assert_eq!(r.max_order(), 3);
        assert_eq!(r.diff_metric(), DiffMetric::AbsoluteChange);
        assert_eq!(r.variance_metric(), VarianceMetric::Tse);
        assert_eq!(r.k_selection(), KSelection::Auto { max_k: 20 });
        assert_eq!(r.time_range(), None);
        assert_eq!(r.segmenter(), SegmenterSpec::Dp);
        assert_eq!(r.optimizations().filter_ratio, Some(0.001));
        assert_eq!(r.optimizations().guess_and_verify, Some(30));
        assert!(r.optimizations().sketching.is_some());
    }

    #[test]
    fn builder_chains() {
        let r = ExplainRequest::new(["state", "pack"])
            .with_top_m(5)
            .with_fixed_k(4)
            .with_diff_metric(DiffMetric::RelativeChange)
            .with_segmenter(SegmenterSpec::fluss(12))
            .with_time_range("2020-01-01", "2020-06-30");
        assert_eq!(r.top_m(), 5);
        assert_eq!(r.k_selection(), KSelection::Fixed(4));
        assert_eq!(r.diff_metric(), DiffMetric::RelativeChange);
        assert_eq!(r.segmenter(), SegmenterSpec::fluss(12));
        assert!(r.time_range().is_some());
        assert_eq!(r.with_full_horizon().time_range(), None);
    }

    #[test]
    fn validation_catches_bad_attributes() {
        let s = schema();
        assert_eq!(
            ExplainRequest::new(Vec::<String>::new()).validate(&s, "date"),
            Err(InvalidRequest::EmptyExplainBy)
        );
        assert_eq!(
            ExplainRequest::new(["nope"]).validate(&s, "date"),
            Err(InvalidRequest::UnknownAttribute("nope".into()))
        );
        // A measure is not a valid explain-by attribute.
        assert_eq!(
            ExplainRequest::new(["sold"]).validate(&s, "date"),
            Err(InvalidRequest::UnknownAttribute("sold".into()))
        );
        assert_eq!(
            ExplainRequest::new(["date"]).validate(&s, "date"),
            Err(InvalidRequest::TimeAttrInExplainBy("date".into()))
        );
        assert_eq!(
            ExplainRequest::new(["state", "state"]).validate(&s, "date"),
            Err(InvalidRequest::DuplicateAttribute("state".into()))
        );
        assert!(ExplainRequest::new(["state", "pack"])
            .validate(&s, "date")
            .is_ok());
    }

    #[test]
    fn validation_catches_bad_knobs() {
        let s = schema();
        assert_eq!(
            ExplainRequest::new(["state"])
                .with_top_m(0)
                .validate(&s, "date"),
            Err(InvalidRequest::ZeroTopM)
        );
        assert_eq!(
            ExplainRequest::new(["state"])
                .with_max_order(0)
                .validate(&s, "date"),
            Err(InvalidRequest::ZeroMaxOrder)
        );
        assert_eq!(
            ExplainRequest::new(["state"])
                .with_fixed_k(0)
                .validate(&s, "date"),
            Err(InvalidRequest::InfeasibleK { k: 0, n: 0 })
        );
        assert_eq!(
            ExplainRequest::new(["state"])
                .with_max_k(0)
                .validate(&s, "date"),
            Err(InvalidRequest::InfeasibleK { k: 0, n: 0 })
        );
    }

    #[test]
    fn validation_catches_degenerate_windows() {
        let s = schema();
        for spec in [SegmenterSpec::fluss(0), SegmenterSpec::nnsegment(1)] {
            let err = ExplainRequest::new(["state"])
                .with_segmenter(spec)
                .validate(&s, "date")
                .unwrap_err();
            assert!(
                matches!(err, InvalidRequest::SegmenterWindow { n: 0, .. }),
                "{spec}: {err:?}"
            );
        }
        assert!(ExplainRequest::new(["state"])
            .with_segmenter(SegmenterSpec::fluss(2))
            .validate(&s, "date")
            .is_ok());
    }

    #[test]
    fn k_feasibility_against_series_length() {
        let r = ExplainRequest::new(["state"]).with_fixed_k(29);
        assert!(r.validate_for_series(30).is_ok());
        let r = ExplainRequest::new(["state"]).with_fixed_k(30);
        assert_eq!(
            r.validate_for_series(30),
            Err(InvalidRequest::InfeasibleK { k: 30, n: 30 })
        );
        // Auto K is clamped, never infeasible.
        let r = ExplainRequest::new(["state"]).with_max_k(500);
        assert!(r.validate_for_series(30).is_ok());
    }

    #[test]
    fn window_feasibility_against_series_length() {
        let r = ExplainRequest::new(["state"]).with_segmenter(SegmenterSpec::fluss(10));
        assert!(r.validate_for_series(22).is_ok());
        assert_eq!(
            r.validate_for_series(20),
            Err(InvalidRequest::SegmenterWindow {
                strategy: "fluss".into(),
                window: 10,
                n: 20
            })
        );
        // An exclusion zone spanning the series is rejected for NNSegment.
        let r = ExplainRequest::new(["state"]).with_segmenter(SegmenterSpec::nnsegment(30));
        assert!(r.validate_for_series(30).is_err());
    }

    #[test]
    fn invalid_request_messages_are_specific() {
        assert!(InvalidRequest::UnknownAttribute("x".into())
            .to_string()
            .contains("\"x\""));
        assert!(InvalidRequest::InfeasibleK { k: 30, n: 30 }
            .to_string()
            .contains("max 29"));
        assert!(InvalidRequest::EmptyTimeRange {
            start: "a".into(),
            end: "b".into()
        }
        .to_string()
        .contains("fewer than two points"));
        assert!(InvalidRequest::SegmenterWindow {
            strategy: "fluss".into(),
            window: 40,
            n: 30
        }
        .to_string()
        .contains("too large"));
    }
}
