use std::time::Duration;

/// Wall-clock breakdown of one `explain()` call into the paper's three
/// pipeline modules (Fig. 15): precomputation (a), Cascading Analysts (b)
/// and K-Segmentation (c).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyBreakdown {
    /// Module (a): cube construction (group-bys, candidate enumeration,
    /// filtering, trie).
    pub precompute: Duration,
    /// Module (b): all top-m derivations.
    pub cascading: Duration,
    /// Module (c): distances, variances, DP and elbow selection.
    pub segmentation: Duration,
}

impl LatencyBreakdown {
    /// End-to-end latency.
    pub fn total(&self) -> Duration {
        self.precompute + self.cascading + self.segmentation
    }
}

impl std::fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "total {:?} (precompute {:?}, cascading {:?}, segmentation {:?})",
            self.total(),
            self.precompute,
            self.cascading,
            self.segmentation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_stages() {
        let l = LatencyBreakdown {
            precompute: Duration::from_millis(5),
            cascading: Duration::from_millis(10),
            segmentation: Duration::from_millis(2),
        };
        assert_eq!(l.total(), Duration::from_millis(17));
        let s = l.to_string();
        assert!(s.contains("precompute"));
    }
}
