use std::time::Duration;

/// Per-stage intra-query parallelism instrumentation: how many worker
/// threads the request's [`tsexplain_parallel::ParallelCtx`] ran with and
/// how much of each stage's wall-clock was spent inside parallel fan-out
/// regions. Parallel and sequential execution are byte-identical by
/// contract, so these timings are pure observability — they report where
/// the speedup comes from, never affect what is computed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelTimings {
    /// Worker threads of the request's parallel context (1 = sequential).
    pub threads: usize,
    /// Of `cascading`: wall-clock inside parallel fan-out regions (the
    /// unit-object top-m derivation).
    pub cascading: Duration,
    /// Of `segmentation`: wall-clock inside parallel fan-out regions (cost
    /// matrix rows, DP layers, auto-K scheme scoring).
    pub segmentation: Duration,
}

/// Segment-cost memo instrumentation: how the request's
/// [`tsexplain_segment::SegmentationContext`] cache performed. Like the
/// parallel timings, the memo never changes what is computed — reported
/// `ca_calls` stay the memo-independent workload metric — so these
/// counters are the observability channel for the work it saved:
/// `hits` is exactly the number of segment pricings (and, under a
/// centroid variance metric, top-m derivations) the memo avoided.
///
/// They live in the latency block rather than `PipelineStats` because the
/// stats block is pinned byte-for-byte by the golden acceptance files;
/// the latency block is the response's designated non-pinned
/// instrumentation area.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoCounters {
    /// Segment-cost lookups served from the memo.
    pub hits: u64,
    /// Segment costs computed and inserted.
    pub misses: u64,
}

/// Wall-clock breakdown of one `explain()` call into the paper's three
/// pipeline modules (Fig. 15): precomputation (a), Cascading Analysts (b)
/// and K-Segmentation (c), plus the parallel-execution share of (b)/(c)
/// and the segment-cost memo counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyBreakdown {
    /// Module (a): cube construction (group-bys, candidate enumeration,
    /// filtering, trie).
    pub precompute: Duration,
    /// Module (b): all top-m derivations.
    pub cascading: Duration,
    /// Module (c): distances, variances, DP and elbow selection.
    pub segmentation: Duration,
    /// Intra-query parallelism instrumentation.
    pub parallel: ParallelTimings,
    /// Segment-cost memo instrumentation.
    pub memo: MemoCounters,
}

impl LatencyBreakdown {
    /// End-to-end latency.
    pub fn total(&self) -> Duration {
        self.precompute + self.cascading + self.segmentation
    }

    /// Wall-clock spent inside parallel fan-out regions (a subset of
    /// [`LatencyBreakdown::total`]).
    pub fn parallel_total(&self) -> Duration {
        self.parallel.cascading + self.parallel.segmentation
    }
}

impl std::fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "total {:?} (precompute {:?}, cascading {:?}, segmentation {:?})",
            self.total(),
            self.precompute,
            self.cascading,
            self.segmentation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_stages() {
        let l = LatencyBreakdown {
            precompute: Duration::from_millis(5),
            cascading: Duration::from_millis(10),
            segmentation: Duration::from_millis(2),
            parallel: ParallelTimings {
                threads: 4,
                cascading: Duration::from_millis(8),
                segmentation: Duration::from_millis(1),
            },
            memo: MemoCounters {
                hits: 12,
                misses: 3,
            },
        };
        assert_eq!(l.total(), Duration::from_millis(17));
        assert_eq!(l.parallel_total(), Duration::from_millis(9));
        assert_eq!(l.memo.hits, 12);
        let s = l.to_string();
        assert!(s.contains("precompute"));
    }
}
