use tsexplain_relation::{AggQuery, Datum, Relation, Schema};

use crate::engine::TsExplain;
use crate::error::TsExplainError;
use crate::result::ExplainResult;

/// Real-time time-series explanation (paper §8, "Real-time Time Series").
///
/// The paper's sketch: explain the existing series once, cache its cut
/// points, and when new data arrives "run the segmentation algorithm based
/// on the existing time series' cutting point and newly arrived data
/// points". Concretely, each [`StreamingExplainer::refresh`] after an
/// append restricts the DP's candidate cut positions to the previous cut
/// points plus every point at or after the previous horizon — so the
/// settled past is only re-cut at previously chosen boundaries while the
/// fresh tail is segmented at full resolution.
pub struct StreamingExplainer {
    engine: TsExplain,
    query: AggQuery,
    schema: Schema,
    rows: Vec<Vec<Datum>>,
    prev_cuts: Vec<usize>,
    prev_n_points: usize,
    last_result: Option<ExplainResult>,
}

impl StreamingExplainer {
    /// Creates a streaming explainer; rows are appended over time.
    pub fn new(engine: TsExplain, schema: Schema, query: AggQuery) -> Self {
        StreamingExplainer {
            engine,
            query,
            schema,
            rows: Vec::new(),
            prev_cuts: Vec::new(),
            prev_n_points: 0,
            last_result: None,
        }
    }

    /// Appends new raw rows (typically for new timestamps).
    pub fn append_rows(&mut self, rows: Vec<Vec<Datum>>) {
        self.rows.extend(rows);
    }

    /// Number of buffered rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Re-explains the accumulated data incrementally.
    ///
    /// New data is detected by timestamp count; appending rows for
    /// already-seen timestamps requires [`StreamingExplainer::reset_cache`]
    /// to force a full re-run.
    pub fn refresh(&mut self) -> Result<ExplainResult, TsExplainError> {
        let relation = self.materialize()?;
        let n_now = self.relation_points(&relation)?;
        if n_now == self.prev_n_points {
            if let Some(cached) = &self.last_result {
                // No new timestamps: the evolving explanation is unchanged.
                return Ok(cached.clone());
            }
        }
        let positions = if self.prev_n_points >= 2 {
            let mut p: Vec<usize> = self.prev_cuts.clone();
            p.push(self.prev_n_points - 1);
            // All new points are candidates at full resolution.
            p.extend(self.prev_n_points..n_now);
            Some(p)
        } else {
            None
        };
        let result =
            self.engine
                .explain_with_candidate_positions(&relation, &self.query, positions)?;
        self.prev_cuts = result.segmentation.cuts().to_vec();
        self.prev_n_points = result.stats.n_points;
        self.last_result = Some(result.clone());
        Ok(result)
    }

    /// Forgets the cached cuts and result, so the next refresh is a full
    /// re-run (needed after restating data for already-seen timestamps).
    pub fn reset_cache(&mut self) {
        self.prev_cuts.clear();
        self.prev_n_points = 0;
        self.last_result = None;
    }

    fn materialize(&self) -> Result<Relation, TsExplainError> {
        let mut b = Relation::builder(self.schema.clone());
        for row in &self.rows {
            b.push_row(row.clone())?;
        }
        Ok(b.finish())
    }

    fn relation_points(&self, relation: &Relation) -> Result<usize, TsExplainError> {
        Ok(relation
            .dim_column(self.query.time_attr())?
            .dict()
            .len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Optimizations, TsExplainConfig};
    use tsexplain_relation::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap()
    }

    fn rows_for(range: std::ops::Range<i64>) -> Vec<Vec<Datum>> {
        let mut rows = Vec::new();
        for t in range {
            let ny = if t <= 10 { 8.0 * t as f64 } else { 80.0 };
            let ca = if t <= 10 { 2.0 } else { 2.0 + 9.0 * (t - 10) as f64 };
            rows.push(vec![Datum::Attr(t.into()), "NY".into(), ny.into()]);
            rows.push(vec![Datum::Attr(t.into()), "CA".into(), ca.into()]);
        }
        rows
    }

    fn streaming() -> StreamingExplainer {
        let engine = TsExplain::new(
            TsExplainConfig::new(["state"]).with_optimizations(Optimizations::none()),
        );
        StreamingExplainer::new(engine, schema(), AggQuery::sum("t", "v"))
    }

    #[test]
    fn incremental_matches_batch_on_replay() {
        // Batch over everything at once…
        let mut batch = streaming();
        batch.append_rows(rows_for(0..21));
        let full = batch.refresh().unwrap();

        // …vs. streaming in two chunks.
        let mut s = streaming();
        s.append_rows(rows_for(0..12));
        let first = s.refresh().unwrap();
        assert!(first.stats.n_points == 12);
        s.append_rows(rows_for(12..21));
        let second = s.refresh().unwrap();

        assert_eq!(second.stats.n_points, 21);
        assert_eq!(
            second.segmentation.cuts(),
            full.segmentation.cuts(),
            "replayed stream should find the same cuts"
        );
    }

    #[test]
    fn refresh_restricts_candidates_after_first_run() {
        let mut s = streaming();
        s.append_rows(rows_for(0..15));
        let first = s.refresh().unwrap();
        assert_eq!(first.stats.candidate_positions, 15);
        s.append_rows(rows_for(15..20));
        let second = s.refresh().unwrap();
        // Candidates: endpoints + previous cuts + the 5 new points.
        assert!(
            second.stats.candidate_positions < 20,
            "got {}",
            second.stats.candidate_positions
        );
    }

    #[test]
    fn reset_cache_forces_full_rerun() {
        let mut s = streaming();
        s.append_rows(rows_for(0..15));
        let _ = s.refresh().unwrap();
        s.append_rows(rows_for(15..20));
        s.reset_cache();
        let full = s.refresh().unwrap();
        assert_eq!(full.stats.candidate_positions, 20);
    }
}
