use tsexplain_relation::{AggQuery, Datum, Relation, Schema};

use crate::error::TsExplainError;
use crate::request::ExplainRequest;
use crate::result::ExplainResult;
use crate::session::{ExplainSession, Explainer, SessionStats};

/// Real-time time-series explanation (paper §8, "Real-time Time Series").
///
/// The paper's sketch: explain the existing series once, cache its cut
/// points, and when new data arrives "run the segmentation algorithm based
/// on the existing time series' cutting point and newly arrived data
/// points". Concretely, each [`StreamingExplainer::refresh`] after an
/// append restricts the DP's candidate cut positions to the previous cut
/// points plus every point at or after the previous horizon — the settled
/// past is only re-cut at previously chosen boundaries while the fresh
/// tail is segmented at full resolution.
///
/// Since the session redesign this type is a thin stateful wrapper over
/// [`ExplainSession`]: appended rows extend the session's cached cube
/// incrementally at the tail (`O(new rows)` per refresh) instead of
/// re-materializing and re-aggregating every buffered row, and restated
/// history (rows at already-settled timestamps) triggers a transparent
/// full rebuild inside the session — [`StreamingExplainer::reset_cache`]
/// now only forgets the cut points.
pub struct StreamingExplainer {
    session: ExplainSession,
    request: ExplainRequest,
    prev_cuts: Vec<usize>,
    prev_n_points: usize,
    last_result: Option<ExplainResult>,
}

impl StreamingExplainer {
    /// Creates a streaming explainer over an initially empty stream; rows
    /// are appended over time.
    pub fn new(
        request: ExplainRequest,
        schema: Schema,
        query: AggQuery,
    ) -> Result<Self, TsExplainError> {
        let empty = Relation::builder(schema).finish();
        Ok(StreamingExplainer {
            session: ExplainSession::new(empty, query)?,
            request,
            prev_cuts: Vec::new(),
            prev_n_points: 0,
            last_result: None,
        })
    }

    /// Creates a streaming explainer seeded with already-arrived history.
    pub fn with_history(
        request: ExplainRequest,
        relation: Relation,
        query: AggQuery,
    ) -> Result<Self, TsExplainError> {
        Ok(StreamingExplainer {
            session: ExplainSession::new(relation, query)?,
            request,
            prev_cuts: Vec::new(),
            prev_n_points: 0,
            last_result: None,
        })
    }

    /// The per-refresh request (K policy, top-m, metrics, …).
    pub fn request(&self) -> &ExplainRequest {
        &self.request
    }

    /// Replaces the per-refresh request (takes effect on the next
    /// [`StreamingExplainer::refresh`]).
    pub fn set_request(&mut self, request: ExplainRequest) {
        self.request = request;
        self.last_result = None;
    }

    /// The underlying serving session (cache statistics, schema, …).
    pub fn session(&self) -> &ExplainSession {
        &self.session
    }

    /// Cache instrumentation of the underlying session.
    pub fn stats(&self) -> SessionStats {
        self.session.stats()
    }

    /// Appends new raw rows (typically for new timestamps). Rows at
    /// already-settled timestamps force a full rebuild inside the session
    /// *and* unfreeze the previously chosen cut points — restated history
    /// can shift the time axis, so cached cut indices would otherwise
    /// point at the wrong timestamps.
    pub fn append_rows(&mut self, rows: Vec<Vec<Datum>>) -> Result<(), TsExplainError> {
        let rebuilds_before = self.session.stats().rebuilds;
        self.session.append_rows(rows)?;
        if self.session.stats().rebuilds > rebuilds_before {
            self.reset_cache();
        }
        Ok(())
    }

    /// Number of distinct timestamps buffered so far.
    pub fn n_points(&self) -> usize {
        self.session.n_points()
    }

    /// Re-explains the accumulated data incrementally.
    ///
    /// New data is detected by timestamp count; if nothing new arrived the
    /// cached result is returned as-is.
    pub fn refresh(&mut self) -> Result<ExplainResult, TsExplainError> {
        if self.request.time_range().is_some() {
            // A windowed request is served ad hoc: the cached cut points
            // are full-horizon indices and do not apply to a sliced cube,
            // and a windowed result must not overwrite the incremental cut
            // state either.
            return self.session.explain_with_positions(&self.request, None);
        }
        let n_now = self.session.n_points();
        if n_now == self.prev_n_points {
            if let Some(cached) = &self.last_result {
                // No new timestamps: the evolving explanation is unchanged.
                return Ok(cached.clone());
            }
        }
        let positions = if self.prev_n_points >= 2 && n_now >= self.prev_n_points {
            let mut p: Vec<usize> = self.prev_cuts.clone();
            p.push(self.prev_n_points - 1);
            // All new points are candidates at full resolution.
            p.extend(self.prev_n_points..n_now);
            Some(p)
        } else {
            None
        };
        let result = self
            .session
            .explain_with_positions(&self.request, positions)?;
        self.prev_cuts = result.segmentation.cuts().to_vec();
        self.prev_n_points = result.stats.n_points;
        self.last_result = Some(result.clone());
        Ok(result)
    }

    /// Forgets the cached cut points and result, so the next refresh
    /// segments the whole horizon at full resolution again.
    pub fn reset_cache(&mut self) {
        self.prev_cuts.clear();
        self.prev_n_points = 0;
        self.last_result = None;
    }
}

impl Explainer for StreamingExplainer {
    /// Answers `request` incrementally: the request replaces the stored
    /// per-refresh request, and the refresh reuses previously settled cut
    /// points exactly like [`StreamingExplainer::refresh`].
    fn explain(&mut self, request: &ExplainRequest) -> Result<ExplainResult, TsExplainError> {
        if *request != self.request {
            self.request = request.clone();
            self.last_result = None;
        }
        self.refresh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;
    use tsexplain_relation::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap()
    }

    fn rows_for(range: std::ops::Range<i64>) -> Vec<Vec<Datum>> {
        let mut rows = Vec::new();
        for t in range {
            let ny = if t <= 10 { 8.0 * t as f64 } else { 80.0 };
            let ca = if t <= 10 {
                2.0
            } else {
                2.0 + 9.0 * (t - 10) as f64
            };
            rows.push(vec![Datum::Attr(t.into()), "NY".into(), ny.into()]);
            rows.push(vec![Datum::Attr(t.into()), "CA".into(), ca.into()]);
        }
        rows
    }

    fn request() -> ExplainRequest {
        ExplainRequest::new(["state"]).with_optimizations(Optimizations::none())
    }

    fn streaming() -> StreamingExplainer {
        StreamingExplainer::new(request(), schema(), AggQuery::sum("t", "v")).unwrap()
    }

    #[test]
    fn incremental_matches_batch_on_replay() {
        // Batch over everything at once…
        let mut batch = streaming();
        batch.append_rows(rows_for(0..21)).unwrap();
        let full = batch.refresh().unwrap();

        // …vs. streaming in two chunks.
        let mut s = streaming();
        s.append_rows(rows_for(0..12)).unwrap();
        let first = s.refresh().unwrap();
        assert!(first.stats.n_points == 12);
        s.append_rows(rows_for(12..21)).unwrap();
        let second = s.refresh().unwrap();

        assert_eq!(second.stats.n_points, 21);
        assert_eq!(
            second.segmentation.cuts(),
            full.segmentation.cuts(),
            "replayed stream should find the same cuts"
        );
    }

    #[test]
    fn refresh_restricts_candidates_after_first_run() {
        let mut s = streaming();
        s.append_rows(rows_for(0..15)).unwrap();
        let first = s.refresh().unwrap();
        assert_eq!(first.stats.candidate_positions, 15);
        s.append_rows(rows_for(15..20)).unwrap();
        let second = s.refresh().unwrap();
        // Candidates: endpoints + previous cuts + the 5 new points.
        assert!(
            second.stats.candidate_positions < 20,
            "got {}",
            second.stats.candidate_positions
        );
    }

    #[test]
    fn reset_cache_forces_full_rerun() {
        let mut s = streaming();
        s.append_rows(rows_for(0..15)).unwrap();
        let _ = s.refresh().unwrap();
        s.append_rows(rows_for(15..20)).unwrap();
        s.reset_cache();
        let full = s.refresh().unwrap();
        assert_eq!(full.stats.candidate_positions, 20);
    }

    #[test]
    fn refreshes_reuse_the_session_cube() {
        let mut s = streaming();
        s.append_rows(rows_for(0..12)).unwrap();
        s.refresh().unwrap();
        s.append_rows(rows_for(12..16)).unwrap();
        s.refresh().unwrap();
        s.append_rows(rows_for(16..21)).unwrap();
        s.refresh().unwrap();
        let stats = s.stats();
        assert_eq!(stats.cubes_built, 1, "one cube across all refreshes");
        assert_eq!(stats.cube_refreshes, 2, "tail appends refresh, not rebuild");
        assert_eq!(stats.rebuilds, 0);
    }

    #[test]
    fn quiet_refresh_returns_cached_result() {
        let mut s = streaming();
        s.append_rows(rows_for(0..10)).unwrap();
        let first = s.refresh().unwrap();
        let again = s.refresh().unwrap();
        assert_eq!(first.segmentation, again.segmentation);
        let stats = s.stats();
        // One real request; the second refresh never touched the session.
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn seeded_history_constructor() {
        let mut b = Relation::builder(schema());
        for row in rows_for(0..12) {
            b.push_row(row).unwrap();
        }
        let mut s =
            StreamingExplainer::with_history(request(), b.finish(), AggQuery::sum("t", "v"))
                .unwrap();
        let first = s.refresh().unwrap();
        assert_eq!(first.stats.n_points, 12);
        s.append_rows(rows_for(12..18)).unwrap();
        assert_eq!(s.refresh().unwrap().stats.n_points, 18);
    }

    #[test]
    fn restated_history_unfreezes_cut_points() {
        // Seed with the *late* phases only, settle cuts, then backfill the
        // early history: the cached cut indices would point at the wrong
        // timestamps on the shifted axis, so the next refresh must run at
        // full resolution.
        let mut b = Relation::builder(schema());
        for row in rows_for(14..21) {
            b.push_row(row).unwrap();
        }
        let mut s =
            StreamingExplainer::with_history(request(), b.finish(), AggQuery::sum("t", "v"))
                .unwrap();
        let first = s.refresh().unwrap();
        assert_eq!(first.stats.n_points, 7);
        s.append_rows(rows_for(0..14)).unwrap();
        assert_eq!(s.stats().rebuilds, 1);
        let full = s.refresh().unwrap();
        assert_eq!(full.stats.n_points, 21);
        assert_eq!(
            full.stats.candidate_positions, 21,
            "backfilled points must be cut candidates again"
        );
        // The result matches a cold batch run over the union.
        let mut batch = streaming();
        batch.append_rows(rows_for(0..21)).unwrap();
        let cold = batch.refresh().unwrap();
        assert_eq!(full.segmentation.cuts(), cold.segmentation.cuts());
    }

    #[test]
    fn windowed_requests_bypass_the_cut_cache() {
        let mut s = streaming();
        s.append_rows(rows_for(0..21)).unwrap();
        let full = s.refresh().unwrap();
        // A windowed request through the trait: served ad hoc at full
        // resolution within the window…
        let windowed = Explainer::explain(
            &mut s,
            &request().with_time_range(11i64, 20i64).with_fixed_k(1),
        )
        .unwrap();
        assert_eq!(windowed.stats.n_points, 10);
        assert_eq!(windowed.stats.candidate_positions, 10);
        assert_eq!(windowed.segments[0].explanations[0].label, "state=CA");
        // …without corrupting the incremental cut state: the next
        // full-horizon refresh (restricted to the previously settled cut
        // candidates) still finds the pre-window cuts. Fixed K, because
        // the elbow is undefined over so few candidate positions.
        let again = Explainer::explain(&mut s, &request().with_fixed_k(2)).unwrap();
        assert_eq!(again.stats.n_points, 21);
        assert_eq!(again.segmentation.cuts(), full.segmentation.cuts());
    }

    #[test]
    fn explainer_trait_switches_request() {
        let mut s = streaming();
        s.append_rows(rows_for(0..21)).unwrap();
        let auto = Explainer::explain(&mut s, &request()).unwrap();
        let fixed = Explainer::explain(&mut s, &request().with_fixed_k(2)).unwrap();
        assert_eq!(fixed.chosen_k, 2);
        assert!(auto.chosen_k >= 1);
        // Both requests share one cube (same cube-relevant knobs).
        assert_eq!(s.stats().cubes_built, 1);
    }
}
