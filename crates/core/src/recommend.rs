//! Explain-by attribute recommendation (paper §9 lists "recommending
//! explain-by attributes" as future work).
//!
//! The score of an attribute is the average share of each unit step's
//! movement that the attribute's single best slice accounts for: an
//! attribute whose top slice repeatedly explains most of the change is a
//! promising drill-down dimension, while an attribute whose slices all
//! move a little explains nothing crisply.

use tsexplain_cube::{CubeConfig, ExplanationCube};
use tsexplain_diff::{CascadingAnalysts, DiffMetric};
use tsexplain_relation::{AggQuery, ColumnType, Relation};

use crate::error::TsExplainError;

/// One recommended attribute with its diagnostics.
#[derive(Clone, Debug)]
pub struct AttributeScore {
    /// The dimension attribute.
    pub attribute: String,
    /// Mean share of per-step movement explained by the attribute's top
    /// slice, in `[0, 1]`; higher = crisper explanations.
    pub coverage: f64,
    /// The attribute's cardinality (context for the analyst: a perfect
    /// coverage from a million-value attribute is less useful).
    pub cardinality: usize,
}

/// Ranks candidate explain-by attributes for `query` over `relation`.
///
/// `candidates` defaults to every dimension attribute except the query's
/// time attribute (the paper's fallback when the user gives no domain
/// knowledge, §3.1.1).
pub fn recommend_explain_by(
    relation: &Relation,
    query: &AggQuery,
    candidates: Option<&[&str]>,
) -> Result<Vec<AttributeScore>, TsExplainError> {
    let names: Vec<String> = match candidates {
        Some(list) => list.iter().map(|s| s.to_string()).collect(),
        None => relation
            .schema()
            .fields()
            .iter()
            .filter(|f| f.column_type() == ColumnType::Dimension && f.name() != query.time_attr())
            .map(|f| f.name().to_string())
            .collect(),
    };

    let mut scores = Vec::with_capacity(names.len());
    for name in names {
        let config = CubeConfig::new([name.as_str()]).with_max_order(1);
        let cube = ExplanationCube::build(relation, query, &config)?;
        scores.push(AttributeScore {
            coverage: attribute_coverage(&cube),
            cardinality: relation.dim_column(&name)?.dict().len(),
            attribute: name,
        });
    }
    scores.sort_by(|a, b| {
        b.coverage
            .partial_cmp(&a.coverage)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cardinality.cmp(&b.cardinality))
    });
    Ok(scores)
}

/// Mean top-1 contribution share over the moving unit steps.
fn attribute_coverage(cube: &ExplanationCube) -> f64 {
    let mut ca = CascadingAnalysts::new(cube, DiffMetric::AbsoluteChange, 1);
    let n = cube.n_points();
    let mut total_share = 0.0;
    let mut moving_steps = 0usize;
    for x in 0..n - 1 {
        let delta = (cube.total_value(x + 1) - cube.total_value(x)).abs();
        if delta <= 0.0 {
            continue;
        }
        moving_steps += 1;
        let top = ca.top_m((x, x + 1));
        if let Some(item) = top.items().first() {
            total_share += (item.gamma / delta).min(1.0);
        }
    }
    if moving_steps == 0 {
        0.0
    } else {
        total_share / moving_steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_relation::{Datum, Field, Schema};

    /// `driver` concentrates each step's change in one slice; `noise` has
    /// values that split every step evenly.
    fn relation() -> Relation {
        let schema = Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("driver"),
            Field::dimension("noise"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for t in 0..12i64 {
            // "driver" = d0 carries all the movement; d1 is flat.
            // "noise" = alternating labels that each carry half of it.
            for (d, nz, v) in [
                ("d0", if t % 2 == 0 { "n0" } else { "n1" }, 10.0 * t as f64),
                ("d1", if t % 2 == 0 { "n1" } else { "n0" }, 7.0),
            ] {
                b.push_row(vec![
                    Datum::Attr(t.into()),
                    Datum::from(d),
                    Datum::from(nz),
                    Datum::from(v),
                ])
                .unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn driver_attribute_ranks_first() {
        let rel = relation();
        let query = AggQuery::sum("t", "v");
        let scores = recommend_explain_by(&rel, &query, None).unwrap();
        assert_eq!(scores.len(), 2);
        assert_eq!(scores[0].attribute, "driver");
        assert!(scores[0].coverage > scores[1].coverage);
        assert!(scores[0].coverage > 0.9, "coverage {}", scores[0].coverage);
    }

    #[test]
    fn explicit_candidates_respected() {
        let rel = relation();
        let query = AggQuery::sum("t", "v");
        let scores = recommend_explain_by(&rel, &query, Some(&["noise"])).unwrap();
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0].attribute, "noise");
        assert_eq!(scores[0].cardinality, 2);
    }

    #[test]
    fn unknown_candidate_errors() {
        let rel = relation();
        let query = AggQuery::sum("t", "v");
        assert!(recommend_explain_by(&rel, &query, Some(&["nope"])).is_err());
    }
}
