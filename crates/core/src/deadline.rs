//! Per-request deadlines: the serving-side budget behind cooperative
//! cancellation.
//!
//! A [`Deadline`] is minted once per request — from the server's
//! `--request-timeout-ms` cap and/or the request's own wire `timeout_ms`
//! (clamped to the cap, so a client can tighten but never loosen the
//! server's budget) — and carries the [`CancelToken`] the compute layers
//! poll. The contract is all-or-nothing: a request either completes
//! byte-identical to an undeadlined run, or errors with
//! [`crate::TsExplainError::Cancelled`] and every partial result
//! (half-built cube, truncated DP table, unpriced memo entries) is
//! discarded. This module is the *only* place the serving path reads the
//! clock for deadline purposes; the determinism-scoped compute crates see
//! nothing but the token.

use std::time::{Duration, Instant};

pub use tsexplain_parallel::CancelToken;

/// A request's time budget: when it started, how much it was given, and
/// the shared token that trips once the budget is spent.
#[derive(Clone, Debug)]
pub struct Deadline {
    started: Instant,
    budget: Duration,
    token: CancelToken,
}

impl Deadline {
    /// Mints a deadline of `budget` starting now.
    pub fn new(budget: Duration) -> Self {
        let started = Instant::now();
        Deadline {
            started,
            budget,
            token: CancelToken::with_deadline(started + budget),
        }
    }

    /// Mints the effective deadline for a request: the server cap, the wire
    /// `timeout_ms` clamped to the cap, or `None` when neither applies
    /// (requests without a budget run exactly as before this layer
    /// existed).
    pub fn mint(server_cap: Option<Duration>, wire_timeout_ms: Option<u64>) -> Option<Deadline> {
        let wire = wire_timeout_ms.map(Duration::from_millis);
        let budget = match (server_cap, wire) {
            (Some(cap), Some(w)) => Some(w.min(cap)),
            (Some(cap), None) => Some(cap),
            (None, Some(w)) => Some(w),
            (None, None) => None,
        };
        budget.map(Deadline::new)
    }

    /// The cancellation token compute loops poll. Cloning is cheap and all
    /// clones share state.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Milliseconds elapsed since the deadline was minted — the honest
    /// figure a `deadline_exceeded` error reports.
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The budget in milliseconds.
    pub fn budget_ms(&self) -> u64 {
        self.budget.as_millis() as u64
    }

    /// Whether the budget is already spent (also trips the token).
    pub fn expired(&self) -> bool {
        self.token.is_cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_clamps_wire_to_cap() {
        let d = Deadline::mint(Some(Duration::from_millis(100)), Some(5_000)).unwrap();
        assert_eq!(d.budget_ms(), 100, "wire timeout cannot loosen the cap");
        let d = Deadline::mint(Some(Duration::from_millis(100)), Some(20)).unwrap();
        assert_eq!(d.budget_ms(), 20, "wire timeout may tighten it");
    }

    #[test]
    fn mint_without_either_is_none() {
        assert!(Deadline::mint(None, None).is_none());
        assert_eq!(Deadline::mint(None, Some(7)).unwrap().budget_ms(), 7);
        let cap_only = Deadline::mint(Some(Duration::from_millis(9)), None).unwrap();
        assert_eq!(cap_only.budget_ms(), 9);
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::new(Duration::from_millis(0));
        assert!(d.expired());
        assert!(d.token().is_cancelled(), "sticky");
    }

    #[test]
    fn generous_budget_does_not_expire() {
        let d = Deadline::new(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.elapsed_ms() < 3_600_000);
    }
}
