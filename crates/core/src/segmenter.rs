//! The serializable segmentation-strategy selector of the serving API.
//!
//! The paper's central comparison (§7.2) pits the explanation-aware DP
//! against three shape-only baselines. [`SegmenterSpec`] makes that choice
//! a first-class, wire-crossable request parameter: every
//! [`crate::ExplainRequest`] names its strategy, the session runs whatever
//! was asked against the *same* cached cube (cube cache keys are
//! strategy-independent), and [`crate::ExplainResult::strategy`] records
//! which one produced the answer. Per-strategy parameters (the FLUSS /
//! NNSegment windows) are validated upfront, before any pipeline work.

use std::fmt;

use tsexplain_baselines::{BottomUpSegmenter, FlussSegmenter, NnSegmentSegmenter};
use tsexplain_segment::{DpSegmenter, Segmenter};

use crate::request::InvalidRequest;

/// Which segmentation strategy a request runs (default: the paper's DP).
///
/// Window-parameterized strategies carry their window here, so a spec is
/// self-contained and serializable (`{"strategy": "fluss", "window": 12}`
/// on the wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SegmenterSpec {
    /// The explanation-aware K-Segmentation DP (paper §5) — the default.
    #[default]
    Dp,
    /// Bottom-up piecewise-linear approximation (paper ref. 21).
    BottomUp,
    /// FLUSS semantic segmentation (paper ref. 9) with subsequence window
    /// `w` (needs `n ≥ 2w + 2`).
    Fluss {
        /// Subsequence window length.
        window: usize,
    },
    /// The NNSegment / LimeSegment approximation (paper ref. 42) with
    /// adjacent-window length and exclusion zone `w` (needs `n ≥ 2w + 1`).
    NnSegment {
        /// Adjacent-window length.
        window: usize,
    },
}

/// The four strategy names, in the paper's order (DP first) — what a
/// `/compare` fan-out runs.
pub const STRATEGIES: [&str; 4] = ["dp", "bottom_up", "fluss", "nnsegment"];

impl SegmenterSpec {
    /// The FLUSS spec with window `w`.
    pub fn fluss(window: usize) -> Self {
        SegmenterSpec::Fluss { window }
    }

    /// The NNSegment spec with window `w`.
    pub fn nnsegment(window: usize) -> Self {
        SegmenterSpec::NnSegment { window }
    }

    /// All four strategies sharing one explicit `window` — THE fan-out
    /// set (`/compare`, `loadgen --segmenter all`), in [`STRATEGIES`]
    /// order.
    pub fn all_with_window(window: usize) -> [SegmenterSpec; 4] {
        [
            SegmenterSpec::Dp,
            SegmenterSpec::BottomUp,
            SegmenterSpec::fluss(window),
            SegmenterSpec::nnsegment(window),
        ]
    }

    /// All four strategies for a series of `n` points, windows auto-sized
    /// via [`default_window_for`].
    pub fn all_for(n: usize) -> [SegmenterSpec; 4] {
        SegmenterSpec::all_with_window(default_window_for(n))
    }

    /// The stable wire name (`"dp"`, `"bottom_up"`, `"fluss"`,
    /// `"nnsegment"`).
    pub fn name(&self) -> &'static str {
        match self {
            SegmenterSpec::Dp => "dp",
            SegmenterSpec::BottomUp => "bottom_up",
            SegmenterSpec::Fluss { .. } => "fluss",
            SegmenterSpec::NnSegment { .. } => "nnsegment",
        }
    }

    /// The window parameter, for strategies that have one.
    pub fn window(&self) -> Option<usize> {
        match self {
            SegmenterSpec::Fluss { window } | SegmenterSpec::NnSegment { window } => Some(*window),
            _ => None,
        }
    }

    /// Whether the strategy cuts only at candidate positions (the DP), as
    /// opposed to segmenting the full-resolution aggregate. Sketch
    /// selection (O2) is only worth computing for the former.
    pub fn uses_candidate_positions(&self) -> bool {
        matches!(self, SegmenterSpec::Dp)
    }

    /// Structural validation that needs no series length: a window, where
    /// present, must be at least 2.
    pub fn validate(&self) -> Result<(), InvalidRequest> {
        match self.window() {
            Some(w) if w < 2 => Err(InvalidRequest::SegmenterWindow {
                strategy: self.name().to_string(),
                window: w,
                n: 0,
            }),
            _ => Ok(()),
        }
    }

    /// Validates the window against the (possibly time-sliced) series
    /// length `n`: FLUSS needs `n ≥ 2w + 2` (two non-overlapping
    /// subsequences plus a boundary), NNSegment `n ≥ 2w + 1` (two adjacent
    /// windows around an interior split) — below that the strategy cannot
    /// propose a single cut and the request is rejected upfront.
    pub(crate) fn validate_for_series(&self, n: usize) -> Result<(), InvalidRequest> {
        let feasible = match self {
            SegmenterSpec::Dp | SegmenterSpec::BottomUp => true,
            SegmenterSpec::Fluss { window } => n >= 2 * window + 2,
            SegmenterSpec::NnSegment { window } => n > 2 * window,
        };
        if feasible {
            Ok(())
        } else {
            Err(InvalidRequest::SegmenterWindow {
                strategy: self.name().to_string(),
                window: self.window().unwrap_or(0),
                n,
            })
        }
    }

    /// Instantiates the strategy behind the spec.
    pub fn build(&self) -> Box<dyn Segmenter> {
        match *self {
            SegmenterSpec::Dp => Box::new(DpSegmenter),
            SegmenterSpec::BottomUp => Box::new(BottomUpSegmenter),
            SegmenterSpec::Fluss { window } => Box::new(FlussSegmenter { window }),
            SegmenterSpec::NnSegment { window } => Box::new(NnSegmentSegmenter { window }),
        }
    }
}

impl fmt::Display for SegmenterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.window() {
            Some(w) => write!(f, "{}(window={w})", self.name()),
            None => write!(f, "{}", self.name()),
        }
    }
}

/// A serviceable default window for the window-parameterized strategies on
/// an `n`-point series: `clamp(n / 8, 2, 25)`. Always feasible for
/// `n ≥ 6` under both strategies' length requirements.
pub fn default_window_for(n: usize) -> usize {
    (n / 8).clamp(2, 25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_windows() {
        assert_eq!(SegmenterSpec::default(), SegmenterSpec::Dp);
        assert_eq!(SegmenterSpec::Dp.name(), "dp");
        assert_eq!(SegmenterSpec::fluss(9).window(), Some(9));
        assert_eq!(SegmenterSpec::BottomUp.window(), None);
        assert_eq!(
            SegmenterSpec::nnsegment(4).to_string(),
            "nnsegment(window=4)"
        );
        let names: Vec<&str> = SegmenterSpec::all_for(64)
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(names, STRATEGIES);
    }

    #[test]
    fn structural_window_validation() {
        assert!(SegmenterSpec::fluss(1).validate().is_err());
        assert!(SegmenterSpec::nnsegment(0).validate().is_err());
        assert!(SegmenterSpec::fluss(2).validate().is_ok());
        assert!(SegmenterSpec::Dp.validate().is_ok());
    }

    #[test]
    fn series_length_window_validation() {
        // FLUSS: n ≥ 2w + 2.
        assert!(SegmenterSpec::fluss(10).validate_for_series(22).is_ok());
        assert!(SegmenterSpec::fluss(10).validate_for_series(21).is_err());
        // NNSegment: n ≥ 2w + 1.
        assert!(SegmenterSpec::nnsegment(10).validate_for_series(21).is_ok());
        assert!(SegmenterSpec::nnsegment(10)
            .validate_for_series(20)
            .is_err());
        // Window-free strategies never fail here.
        assert!(SegmenterSpec::Dp.validate_for_series(2).is_ok());
        assert!(SegmenterSpec::BottomUp.validate_for_series(2).is_ok());
    }

    #[test]
    fn default_windows_are_always_feasible() {
        for n in 6..500 {
            let w = default_window_for(n);
            assert!(
                SegmenterSpec::fluss(w).validate_for_series(n).is_ok(),
                "n={n}"
            );
            assert!(SegmenterSpec::nnsegment(w).validate_for_series(n).is_ok());
        }
    }

    #[test]
    fn build_produces_the_named_strategy() {
        for spec in SegmenterSpec::all_for(40) {
            assert_eq!(spec.build().name(), spec.name());
        }
    }
}
