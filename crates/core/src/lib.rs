//! # TSExplain
//!
//! A from-scratch Rust implementation of **TSExplain: Explaining Aggregated
//! Time Series by Surfacing Evolving Contributors** (Chen & Huang,
//! ICDE 2023).
//!
//! Given a relation, a group-by time-series query ("what happened") and a
//! set of explain-by attributes, TSExplain answers "why" by partitioning
//! the time horizon into segments with *consistent* top contributors and
//! attaching the top-m non-overlapping explanations to each segment — the
//! evolving explanations of Definition 3.7.
//!
//! ```
//! use tsexplain::{TsExplain, TsExplainConfig};
//! use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};
//!
//! // A tiny relation: two states over six days.
//! let schema = Schema::new(vec![
//!     Field::dimension("date"),
//!     Field::dimension("state"),
//!     Field::measure("cases"),
//! ]).unwrap();
//! let mut b = Relation::builder(schema);
//! for (t, ny, ca) in [(0, 0.0, 5.0), (1, 10.0, 5.0), (2, 20.0, 5.0),
//!                     (3, 20.0, 15.0), (4, 20.0, 30.0), (5, 20.0, 50.0)] {
//!     b.push_row(vec![Datum::Attr((t as i64).into()), "NY".into(), ny.into()]).unwrap();
//!     b.push_row(vec![Datum::Attr((t as i64).into()), "CA".into(), ca.into()]).unwrap();
//! }
//! let relation = b.finish();
//!
//! let config = TsExplainConfig::new(["state"]);
//! let result = TsExplain::new(config)
//!     .explain(&relation, &AggQuery::sum("date", "cases"))
//!     .unwrap();
//! // NY explains the first rise, CA the second.
//! assert_eq!(result.segments.len(), result.chosen_k);
//! ```
//!
//! The pipeline (paper Fig. 7) is: **(a)** precompute the per-explanation
//! series cube, **(b)** derive top-m non-overlapping explanations per
//! candidate segment with the Cascading Analysts algorithm, **(c)** run the
//! explanation-aware K-Segmentation DP and pick K with the elbow method.
//! Optimizations `filter`, guess-and-verify (O1) and sketching (O2) are
//! individually toggleable via [`Optimizations`].

mod config;
mod elbow;
mod engine;
mod error;
mod latency;
mod recommend;
mod result;
mod seasonal;
mod streaming;

pub use config::{KSelection, Optimizations, TsExplainConfig};
pub use elbow::elbow_k;
pub use engine::TsExplain;
pub use error::TsExplainError;
pub use latency::LatencyBreakdown;
pub use recommend::{recommend_explain_by, AttributeScore};
pub use result::{ExplainResult, ExplanationItem, PipelineStats, SegmentExplanation};
pub use seasonal::{classical_decompose, Decomposition};
pub use streaming::StreamingExplainer;

// Curated re-exports so downstream users need only this crate.
pub use tsexplain_cube::{CubeConfig, ExplanationCube};
pub use tsexplain_diff::{diff_two_relations, DiffMetric, Effect};
pub use tsexplain_relation::{
    AggFn, AggQuery, AggState, AttrValue, Conjunction, Datum, Field, MeasureExpr, Predicate,
    Relation, Schema,
};
pub use tsexplain_segment::{Segmentation, SketchConfig, VarianceMetric};
