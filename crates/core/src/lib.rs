//! # TSExplain
//!
//! A from-scratch Rust implementation of **TSExplain: Explaining Aggregated
//! Time Series by Surfacing Evolving Contributors** (Chen & Huang,
//! ICDE 2023).
//!
//! Given a relation, a group-by time-series query ("what happened") and a
//! set of explain-by attributes, TSExplain answers "why" by partitioning
//! the time horizon into segments with *consistent* top contributors and
//! attaching the top-m non-overlapping explanations to each segment — the
//! evolving explanations of Definition 3.7.
//!
//! ## The serving session: register once, query many
//!
//! The pipeline (paper Fig. 7) splits into an expensive precompute step —
//! the explanation cube — and cheap per-query modules (Cascading
//! Analysts plus K-Segmentation). [`ExplainSession`] exploits that split: it registers
//! a [`Relation`] + [`AggQuery`] once, keeps a keyed cache of prepared
//! cubes, and answers any number of [`ExplainRequest`]s (varying K, top-m,
//! difference metric, time window) without repeating precompute:
//!
//! ```
//! use tsexplain::{DiffMetric, ExplainRequest, ExplainSession};
//! use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};
//!
//! // A tiny relation: two states over six days.
//! let schema = Schema::new(vec![
//!     Field::dimension("date"),
//!     Field::dimension("state"),
//!     Field::measure("cases"),
//! ]).unwrap();
//! let mut b = Relation::builder(schema);
//! for (t, ny, ca) in [(0, 0.0, 5.0), (1, 10.0, 5.0), (2, 20.0, 5.0),
//!                     (3, 20.0, 15.0), (4, 20.0, 30.0), (5, 20.0, 50.0)] {
//!     b.push_row(vec![Datum::Attr((t as i64).into()), "NY".into(), ny.into()]).unwrap();
//!     b.push_row(vec![Datum::Attr((t as i64).into()), "CA".into(), ca.into()]).unwrap();
//! }
//!
//! // Register once…
//! let mut session = ExplainSession::new(b.finish(), AggQuery::sum("date", "cases")).unwrap();
//!
//! // …then ask as many questions as the analyst has. The explanation cube
//! // is built on the first request and reused afterwards.
//! let result = session.explain(&ExplainRequest::new(["state"])).unwrap();
//! assert_eq!(result.segments.len(), result.chosen_k);
//! let k2 = session.explain(&ExplainRequest::new(["state"]).with_fixed_k(2)).unwrap();
//! assert_eq!(k2.chosen_k, 2);
//! let rel = session
//!     .explain(&ExplainRequest::new(["state"]).with_diff_metric(DiffMetric::RelativeChange))
//!     .unwrap();
//! assert!(rel.stats.cube_from_cache);
//! assert_eq!(session.stats().cubes_built, 1);
//!
//! // Responses serialize for a service boundary.
//! let json = serde_json::to_string(&result).unwrap();
//! assert!(json.contains("\"segments\""));
//! ```
//!
//! Requests are validated upfront — unknown attributes, an empty
//! explain-by set or an infeasible fixed K come back as
//! [`TsExplainError::InvalidRequest`] before any pipeline work runs.
//!
//! Live data goes through the same session: [`ExplainSession::append_rows`]
//! extends every cached cube incrementally at the tail, and
//! [`StreamingExplainer`] wraps a session with the paper's §8 cut-point
//! reuse. Both the batch session and the streaming wrapper implement
//! [`Explainer`], so serving code can treat them uniformly.
//!
//! For serving many datasets from one process, [`SessionRegistry`] hosts a
//! thread-safe multi-tenant map of sessions: per-tenant interior locking
//! (one tenant's rebuild never blocks another's cache hit) and a global
//! LRU-by-bytes cube eviction policy under a configurable memory budget
//! (each session also enforces a local budget, default
//! [`DEFAULT_CUBE_CACHE_BUDGET`]). The `tsexplain-server` crate serves the
//! registry over HTTP/JSON.
//!
//! ## Pluggable segmentation strategies
//!
//! The paper's central comparison (§7.2) pits the explanation-aware DP
//! against shape-only baselines. [`SegmenterSpec`] makes the strategy a
//! per-request, serializable parameter — `ExplainRequest::new([...])
//! .with_segmenter(SegmenterSpec::BottomUp)` runs bottom-up (likewise
//! FLUSS and NNSegment, each with a validated window) through the *same*
//! cube-backed explanation stage as the DP, and
//! [`ExplainResult::strategy`] records which strategy answered. Cube cache
//! keys are strategy-independent, so all four strategies share one cube
//! per session.
//!
//! The pipeline (paper Fig. 7) is: **(a)** precompute the per-explanation
//! series cube, **(b)** derive top-m non-overlapping explanations per
//! candidate segment with the Cascading Analysts algorithm, **(c)** run the
//! explanation-aware K-Segmentation DP and pick K with the elbow method.
//! Optimizations `filter`, guess-and-verify (O1) and sketching (O2) are
//! individually toggleable via [`Optimizations`].

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
mod config;
mod deadline;
mod durability;
mod error;
mod latency;
mod pipeline;
mod recommend;
mod registry;
mod request;
mod result;
mod seasonal;
mod segmenter;
mod serde_impls;
mod session;
mod streaming;

pub use config::Optimizations;
pub use deadline::{CancelToken, Deadline};
pub use durability::CubeSpill;
pub use error::TsExplainError;
pub use latency::{LatencyBreakdown, MemoCounters, ParallelTimings};
pub use recommend::{recommend_explain_by, AttributeScore};
pub use registry::{
    DatasetId, DatasetSnapshot, RegistryError, RegistryStats, SessionRegistry,
    DEFAULT_REGISTRY_BUDGET,
};
pub use request::{ExplainRequest, InvalidRequest};
pub use result::{ExplainResult, ExplanationItem, PipelineStats, SegmentExplanation};
pub use seasonal::{classical_decompose, Decomposition};
pub use segmenter::{default_window_for, SegmenterSpec, STRATEGIES};
pub use session::{
    ExplainSession, Explainer, PreparedCube, SessionStats, DEFAULT_CUBE_CACHE_BUDGET,
};
pub use streaming::StreamingExplainer;

// The intra-query parallel execution layer (deterministic chunk-ordered
// fan-out; `TSX_THREADS`, `ExplainRequest::with_threads`).
pub use tsexplain_parallel::{ParallelCtx, MAX_DEFAULT_THREADS, THREADS_ENV};

// The durable storage engine (WAL + snapshots + recovery-on-boot;
// `SessionRegistry::with_store`, `tsx-server --data-dir`).
pub use tsexplain_store::{
    DataStore, RecoveredTenant, Recovery, StoreError, StoreMetrics, TenantCheckpoint,
};

// Curated re-exports so downstream users need only this crate.
pub use tsexplain_cube::{CubeConfig, CubeError, ExplanationCube, IncrementalCube};
pub use tsexplain_diff::{diff_two_relations, DiffMetric, Effect};
pub use tsexplain_relation::{
    AggFn, AggQuery, AggState, AttrValue, Conjunction, Datum, Field, MeasureExpr, Predicate,
    Relation, Schema,
};
pub use tsexplain_segment::{
    elbow_k, DpSegmenter, KSelection, Segmentation, Segmenter, SegmenterOutcome, SketchConfig,
    VarianceMetric,
};
