use std::fmt;

use tsexplain_cube::CubeError;
use tsexplain_relation::RelationError;
use tsexplain_segment::SegmentError;

use crate::request::InvalidRequest;

/// Errors surfaced by the TSExplain engine and serving session.
#[derive(Clone, Debug, PartialEq)]
pub enum TsExplainError {
    /// The request failed upfront validation (unknown attributes, empty
    /// explain-by, infeasible K, empty time window, …).
    InvalidRequest(InvalidRequest),
    /// Cube construction failed.
    Cube(CubeError),
    /// A substrate error.
    Relation(RelationError),
    /// Segmentation failed (e.g. an infeasible fixed K).
    Segment(SegmentError),
    /// The aggregated series has fewer than two points.
    SeriesTooShort(usize),
    /// Seasonal decomposition needs at least two full periods.
    PeriodTooLong {
        /// Series length.
        n: usize,
        /// Requested period.
        period: usize,
    },
    /// The durable store rejected a write the request's acknowledgement
    /// depends on (WAL append or checkpoint I/O). The in-memory state may
    /// be ahead of disk; the unacknowledged mutation is the part a crash
    /// would lose.
    Storage(String),
    /// The request's deadline (or an explicit cancel) tripped mid-compute.
    /// All-or-nothing: every partial result was discarded, caches and
    /// counters are as if the request never ran. `stage` names the pipeline
    /// stage that observed the trip.
    Cancelled {
        /// Which stage observed the cancellation ("start", "cube",
        /// "segmentation", "cascading").
        stage: &'static str,
    },
}

impl fmt::Display for TsExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsExplainError::InvalidRequest(e) => write!(f, "invalid request: {e}"),
            TsExplainError::Cube(e) => write!(f, "cube error: {e}"),
            TsExplainError::Relation(e) => write!(f, "relation error: {e}"),
            TsExplainError::Segment(e) => write!(f, "segmentation error: {e}"),
            TsExplainError::SeriesTooShort(n) => {
                write!(f, "aggregated series has {n} point(s); need at least 2")
            }
            TsExplainError::PeriodTooLong { n, period } => {
                write!(f, "period {period} too long for a series of {n} points")
            }
            TsExplainError::Storage(e) => write!(f, "storage error: {e}"),
            TsExplainError::Cancelled { stage } => {
                write!(
                    f,
                    "request cancelled during {stage}; partial work discarded"
                )
            }
        }
    }
}

impl std::error::Error for TsExplainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TsExplainError::InvalidRequest(e) => Some(e),
            TsExplainError::Cube(e) => Some(e),
            TsExplainError::Relation(e) => Some(e),
            TsExplainError::Segment(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InvalidRequest> for TsExplainError {
    fn from(e: InvalidRequest) -> Self {
        TsExplainError::InvalidRequest(e)
    }
}

impl From<CubeError> for TsExplainError {
    fn from(e: CubeError) -> Self {
        match e {
            // Cancellation is a property of the request, not of the cube:
            // surface it uniformly so the serving layer maps one variant.
            CubeError::Cancelled => TsExplainError::Cancelled { stage: "cube" },
            e => TsExplainError::Cube(e),
        }
    }
}

impl From<RelationError> for TsExplainError {
    fn from(e: RelationError) -> Self {
        TsExplainError::Relation(e)
    }
}

impl From<SegmentError> for TsExplainError {
    fn from(e: SegmentError) -> Self {
        match e {
            SegmentError::Cancelled => TsExplainError::Cancelled {
                stage: "segmentation",
            },
            e => TsExplainError::Segment(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: TsExplainError = CubeError::NoExplainBy.into();
        assert!(e.to_string().contains("explain-by"));
        let e: TsExplainError = SegmentError::TooFewPoints(1).into();
        assert!(e.to_string().contains("segmentation"));
        assert!(TsExplainError::SeriesTooShort(1).to_string().contains('1'));
    }
}
