//! The per-request explanation pipeline over a prepared cube: modules (b)
//! and (c) of paper Fig. 7 — segmentation by the request's strategy, then
//! Cascading-Analysts explanations of whatever scheme came back.
//!
//! This is the single implementation behind every entry point: the
//! [`crate::ExplainSession`] serving path and the streaming refresh (which
//! passes `forced_positions`). Precompute — the cube — is the session's
//! job; the pipeline reports its precompute latency as zero and the caller
//! fills it in.

use tsexplain_cube::ExplanationCube;
use tsexplain_diff::TopExplStrategy;
use tsexplain_segment::{select_sketch, SegmentationContext};

use crate::error::TsExplainError;
use crate::latency::LatencyBreakdown;
use crate::request::ExplainRequest;
use crate::result::{ExplainResult, ExplanationItem, PipelineStats, SegmentExplanation};

/// Runs the segmentation strategy named by `request` and explains the
/// resulting scheme.
///
/// `forced_positions` restricts the DP's candidate cut positions (sorted
/// point indices; the endpoints are added if missing) — the streaming
/// extension's hook (§8): previous cut points plus the newly arrived
/// points. Shape-only strategies segment the full-resolution aggregate
/// regardless.
pub(crate) fn explain_cube_request(
    cube: &ExplanationCube,
    request: &ExplainRequest,
    forced_positions: Option<Vec<usize>>,
) -> Result<ExplainResult, TsExplainError> {
    let n = cube.n_points();
    if n < 2 {
        return Err(TsExplainError::SeriesTooShort(n));
    }
    request
        .validate_for_series(n)
        .map_err(TsExplainError::InvalidRequest)?;

    let optimizations = request.optimizations();
    let strategy = match optimizations.guess_and_verify {
        Some(initial_guess) => TopExplStrategy::GuessVerify { initial_guess },
        None => TopExplStrategy::Exact,
    };
    let parallel = request.parallel_ctx();
    // Entry poll: guarantees every request observes at least one poll, so
    // a zero (or already-spent) budget cancels deterministically through
    // the real engine path rather than depending on loop timing.
    if parallel.is_cancelled() {
        return Err(TsExplainError::Cancelled { stage: "start" });
    }
    let mut ctx = SegmentationContext::new(
        cube,
        request.diff_metric(),
        request.top_m(),
        strategy,
        request.variance_metric(),
    )
    .with_parallel(parallel.clone());

    let spec = request.segmenter();
    let positions: Vec<usize> = match forced_positions {
        Some(mut p) => {
            p.push(0);
            p.push(n - 1);
            p.retain(|&x| x < n);
            p.sort_unstable();
            p.dedup();
            p
        }
        // Sketch selection prunes the DP's search space; strategies that
        // ignore candidate positions shouldn't pay for it.
        None => match request
            .sketching()
            .filter(|_| spec.uses_candidate_positions())
        {
            Some(sketch_config) => select_sketch(&mut ctx, &sketch_config),
            None => (0..n).collect(),
        },
    };

    let outcome = {
        let _span = tsexplain_obs::trace::span("segmentation");
        spec.build()
            .segment(&mut ctx, &positions, request.k_selection())
            .map_err(TsExplainError::from)?
    };

    let segments: Vec<SegmentExplanation> = {
        let _span = tsexplain_obs::trace::span("cascading");
        outcome
            .segmentation
            .segments()
            .into_iter()
            .map(|seg| describe_segment(cube, &mut ctx, seg))
            .collect()
    };
    // All-or-nothing: a trip during the cascading stage leaves truncated
    // explanation lists — discard them rather than serve a partial answer.
    if parallel.is_cancelled() {
        return Err(TsExplainError::Cancelled { stage: "cascading" });
    }

    let timers = ctx.timers();
    let latency = LatencyBreakdown {
        precompute: Default::default(),
        cascading: timers.cascading,
        segmentation: timers.segmentation + outcome.solve_time,
        parallel: crate::latency::ParallelTimings {
            threads: parallel.threads(),
            cascading: timers.par_cascading,
            segmentation: timers.par_segmentation,
        },
        memo: crate::latency::MemoCounters {
            hits: ctx.memo_hits(),
            misses: ctx.memo_misses(),
        },
    };
    let stats = PipelineStats {
        epsilon: cube.n_candidates(),
        filtered_epsilon: cube.n_selectable(),
        n_points: n,
        ca_calls: ctx.ca_calls(),
        candidate_positions: positions.len(),
        cube_from_cache: false,
    };

    Ok(ExplainResult {
        strategy: spec.name().to_string(),
        total_variance: outcome.total_variance,
        segmentation: outcome.segmentation,
        chosen_k: outcome.chosen_k,
        k_variance_curve: outcome.k_variance_curve,
        segments,
        timestamps: cube.timestamps().to_vec(),
        aggregate: cube.total_values(),
        latency,
        stats,
    })
}

fn describe_segment(
    cube: &ExplanationCube,
    ctx: &mut SegmentationContext<'_>,
    seg: (usize, usize),
) -> SegmentExplanation {
    // var(P) = cost / |P| (Eq. 7); flags incohesive segments (§9).
    let variance = ctx.segment_cost(seg) / (seg.1 - seg.0) as f64;
    let explained = ctx.explained(seg);
    let explanations = explained
        .top
        .items()
        .iter()
        .map(|item| ExplanationItem {
            label: cube.label(item.id),
            gamma: item.gamma,
            effect: item.effect,
            series: (seg.0..=seg.1).map(|t| cube.value_at(item.id, t)).collect(),
        })
        .collect();
    SegmentExplanation {
        start: seg.0,
        end: seg.1,
        start_time: cube.timestamps()[seg.0].clone(),
        end_time: cube.timestamps()[seg.1].clone(),
        explanations,
        variance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;
    use crate::request::InvalidRequest;
    use crate::segmenter::SegmenterSpec;
    use crate::session::ExplainSession;
    use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

    /// Three clean phases over 30 points: NY rises (0..10), CA rises
    /// (10..20), TX rises (20..29).
    fn three_phase_relation() -> Relation {
        let schema = Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for t in 0..30i64 {
            let ny = if t <= 10 { 8.0 * t as f64 } else { 80.0 };
            let ca = if t <= 10 {
                2.0
            } else if t <= 20 {
                2.0 + 9.0 * (t - 10) as f64
            } else {
                92.0
            };
            let tx = if t <= 20 {
                5.0
            } else {
                5.0 + 10.0 * (t - 20) as f64
            };
            for (s, v) in [("NY", ny), ("CA", ca), ("TX", tx)] {
                b.push_row(vec![Datum::Attr(t.into()), Datum::from(s), Datum::from(v)])
                    .unwrap();
            }
        }
        b.finish()
    }

    fn session() -> ExplainSession {
        ExplainSession::new(three_phase_relation(), AggQuery::sum("t", "v")).unwrap()
    }

    fn request(optimizations: Optimizations) -> ExplainRequest {
        ExplainRequest::new(["state"]).with_optimizations(optimizations)
    }

    #[test]
    fn recovers_three_phases_with_auto_k() {
        let result = session().explain(&request(Optimizations::none())).unwrap();
        assert_eq!(result.chosen_k, 3, "curve {:?}", result.k_variance_curve);
        assert_eq!(result.strategy, "dp");
        let cuts = result.segmentation.cuts();
        assert!((9..=11).contains(&cuts[0]), "cuts {cuts:?}");
        assert!((19..=21).contains(&cuts[1]), "cuts {cuts:?}");
        // Each segment's top explanation is its driving state.
        let tops: Vec<&str> = result
            .segments
            .iter()
            .map(|s| s.explanations[0].label.as_str())
            .collect();
        assert_eq!(tops, vec!["state=NY", "state=CA", "state=TX"]);
    }

    #[test]
    fn fixed_k_is_respected() {
        let result = session()
            .explain(&request(Optimizations::none()).with_fixed_k(2))
            .unwrap();
        assert_eq!(result.chosen_k, 2);
        assert_eq!(result.segments.len(), 2);
    }

    #[test]
    fn optimized_matches_vanilla_segmentation() {
        let vanilla = session().explain(&request(Optimizations::none())).unwrap();
        let optimized = session().explain(&request(Optimizations::all())).unwrap();
        assert_eq!(vanilla.chosen_k, optimized.chosen_k);
        assert_eq!(
            vanilla.segmentation.cuts(),
            optimized.segmentation.cuts(),
            "optimizations must not change this clean result"
        );
    }

    #[test]
    fn result_is_self_describing() {
        let result = session().explain(&request(Optimizations::none())).unwrap();
        assert_eq!(result.aggregate.len(), 30);
        assert_eq!(result.timestamps.len(), 30);
        assert_eq!(result.stats.epsilon, 3);
        assert!(result.stats.ca_calls > 0);
        assert!(result.latency.total().as_nanos() > 0);
        // Segment series have the right lengths.
        for seg in &result.segments {
            for item in &seg.explanations {
                assert_eq!(item.series.len(), seg.end - seg.start + 1);
            }
        }
        let display = result.to_string();
        assert!(display.contains("state="));
    }

    #[test]
    fn candidate_positions_restrict_cuts() {
        let result = session()
            .explain_with_positions(
                &request(Optimizations::none()).with_fixed_k(2),
                Some(vec![7, 20]),
            )
            .unwrap();
        // Only 7 and 20 are available as interior cuts.
        assert!(result
            .segmentation
            .cuts()
            .iter()
            .all(|c| [7, 20].contains(c)));
    }

    #[test]
    fn shape_strategies_run_through_the_same_pipeline() {
        let mut s = session();
        for spec in [
            SegmenterSpec::BottomUp,
            SegmenterSpec::fluss(3),
            SegmenterSpec::nnsegment(4),
        ] {
            let result = s
                .explain(&request(Optimizations::none()).with_segmenter(spec))
                .unwrap();
            assert_eq!(result.strategy, spec.name());
            assert_eq!(result.segments.len(), result.chosen_k);
            assert_eq!(result.chosen_k, result.segmentation.k());
            assert!(result.total_variance.is_finite());
            // Every segment still gets cube-backed explanations.
            assert!(result.segments.iter().all(|seg| {
                seg.explanations
                    .iter()
                    .all(|e| e.series.len() == seg.end - seg.start + 1)
            }));
        }
    }

    #[test]
    fn dp_objective_is_never_worse_than_a_baseline_at_equal_k() {
        // The fixture is the paper's §7.2 motif: the aggregate is nearly
        // linear (slopes 8 → 9 → 10) while the *contributors* change
        // sharply, so shape-only cuts may land anywhere — but on the
        // shared explanation-aware objective the DP, which optimizes it
        // exactly, must never lose at equal K.
        let mut s = session();
        let dp = s
            .explain(&request(Optimizations::none()).with_fixed_k(3))
            .unwrap();
        let bu = s
            .explain(
                &request(Optimizations::none())
                    .with_fixed_k(3)
                    .with_segmenter(SegmenterSpec::BottomUp),
            )
            .unwrap();
        assert_eq!(bu.chosen_k, 3);
        assert!(
            dp.total_variance <= bu.total_variance + 1e-9,
            "dp {} vs bottom_up {}",
            dp.total_variance,
            bu.total_variance
        );
    }

    #[test]
    fn too_short_series_errors() {
        let schema = Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        b.push_row(vec![Datum::Attr(0i64.into()), "x".into(), 1.0.into()])
            .unwrap();
        let mut s = ExplainSession::new(b.finish(), AggQuery::sum("t", "v")).unwrap();
        let err = s.explain(&request(Optimizations::none())).unwrap_err();
        assert_eq!(err, TsExplainError::SeriesTooShort(1));
    }

    #[test]
    fn infeasible_fixed_k_errors() {
        let mut s = session();
        // K = 29 = n − 1 is feasible; K = 30 is not.
        assert!(s
            .explain(&request(Optimizations::none()).with_fixed_k(29))
            .is_ok());
        let err = s
            .explain(&request(Optimizations::none()).with_fixed_k(30))
            .unwrap_err();
        assert!(
            matches!(
                err,
                TsExplainError::InvalidRequest(InvalidRequest::InfeasibleK { k: 30, n: 30 })
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn oversized_windows_are_rejected_against_the_series() {
        let mut s = session();
        // n = 30: FLUSS needs n ≥ 2w + 2 → w = 14 fits, w = 15 does not.
        assert!(s
            .explain(&request(Optimizations::none()).with_segmenter(SegmenterSpec::fluss(14)))
            .is_ok());
        let err = s
            .explain(&request(Optimizations::none()).with_segmenter(SegmenterSpec::fluss(15)))
            .unwrap_err();
        assert!(
            matches!(
                err,
                TsExplainError::InvalidRequest(InvalidRequest::SegmenterWindow {
                    window: 15,
                    n: 30,
                    ..
                })
            ),
            "got {err:?}"
        );
    }
}
