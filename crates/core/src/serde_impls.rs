//! JSON serialization of the request/response layer (vendored-serde
//! impls), so [`ExplainRequest`]s and [`ExplainResult`]s can cross a
//! service boundary as JSON.
//!
//! Deserialized responses are structurally revalidated where it matters —
//! a [`Segmentation`] re-runs its invariant checks on the way in — and the
//! encoding is stable: plain objects with snake_case members, enums as
//! their paper-facing names.

use serde::{Deserialize, Error, Serialize, Value};

use crate::config::{KSelection, Optimizations};
use crate::latency::LatencyBreakdown;
use crate::request::ExplainRequest;
use crate::result::{ExplainResult, ExplanationItem, PipelineStats, SegmentExplanation};

impl Serialize for LatencyBreakdown {
    fn serialize(&self) -> Value {
        Value::object([
            ("precompute", self.precompute.serialize()),
            ("cascading", self.cascading.serialize()),
            ("segmentation", self.segmentation.serialize()),
        ])
    }
}

impl Deserialize for LatencyBreakdown {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(LatencyBreakdown {
            precompute: value.field("precompute")?,
            cascading: value.field("cascading")?,
            segmentation: value.field("segmentation")?,
        })
    }
}

impl Serialize for PipelineStats {
    fn serialize(&self) -> Value {
        Value::object([
            ("epsilon", self.epsilon.serialize()),
            ("filtered_epsilon", self.filtered_epsilon.serialize()),
            ("n_points", self.n_points.serialize()),
            ("ca_calls", self.ca_calls.serialize()),
            ("candidate_positions", self.candidate_positions.serialize()),
            ("cube_from_cache", self.cube_from_cache.serialize()),
        ])
    }
}

impl Deserialize for PipelineStats {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(PipelineStats {
            epsilon: value.field("epsilon")?,
            filtered_epsilon: value.field("filtered_epsilon")?,
            n_points: value.field("n_points")?,
            ca_calls: value.field("ca_calls")?,
            candidate_positions: value.field("candidate_positions")?,
            cube_from_cache: value.field("cube_from_cache")?,
        })
    }
}

impl Serialize for ExplanationItem {
    fn serialize(&self) -> Value {
        Value::object([
            ("label", self.label.serialize()),
            ("gamma", self.gamma.serialize()),
            ("effect", self.effect.serialize()),
            ("series", self.series.serialize()),
        ])
    }
}

impl Deserialize for ExplanationItem {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(ExplanationItem {
            label: value.field("label")?,
            gamma: value.field("gamma")?,
            effect: value.field("effect")?,
            series: value.field("series")?,
        })
    }
}

impl Serialize for SegmentExplanation {
    fn serialize(&self) -> Value {
        Value::object([
            ("start", self.start.serialize()),
            ("end", self.end.serialize()),
            ("start_time", self.start_time.serialize()),
            ("end_time", self.end_time.serialize()),
            ("explanations", self.explanations.serialize()),
            ("variance", self.variance.serialize()),
        ])
    }
}

impl Deserialize for SegmentExplanation {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(SegmentExplanation {
            start: value.field("start")?,
            end: value.field("end")?,
            start_time: value.field("start_time")?,
            end_time: value.field("end_time")?,
            explanations: value.field("explanations")?,
            variance: value.field("variance")?,
        })
    }
}

impl Serialize for ExplainResult {
    fn serialize(&self) -> Value {
        Value::object([
            ("segmentation", self.segmentation.serialize()),
            ("chosen_k", self.chosen_k.serialize()),
            ("k_variance_curve", self.k_variance_curve.serialize()),
            ("total_variance", self.total_variance.serialize()),
            ("segments", self.segments.serialize()),
            ("timestamps", self.timestamps.serialize()),
            ("aggregate", self.aggregate.serialize()),
            ("latency", self.latency.serialize()),
            ("stats", self.stats.serialize()),
        ])
    }
}

impl Deserialize for ExplainResult {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(ExplainResult {
            segmentation: value.field("segmentation")?,
            chosen_k: value.field("chosen_k")?,
            k_variance_curve: value.field("k_variance_curve")?,
            total_variance: value.field("total_variance")?,
            segments: value.field("segments")?,
            timestamps: value.field("timestamps")?,
            aggregate: value.field("aggregate")?,
            latency: value.field("latency")?,
            stats: value.field("stats")?,
        })
    }
}

impl Serialize for KSelection {
    fn serialize(&self) -> Value {
        match self {
            KSelection::Auto { max_k } => Value::object([
                ("mode", Value::String("auto".into())),
                ("max_k", max_k.serialize()),
            ]),
            KSelection::Fixed(k) => Value::object([
                ("mode", Value::String("fixed".into())),
                ("k", k.serialize()),
            ]),
        }
    }
}

impl Deserialize for KSelection {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.get("mode").and_then(Value::as_str) {
            Some("auto") => Ok(KSelection::Auto {
                max_k: value.field("max_k")?,
            }),
            Some("fixed") => Ok(KSelection::Fixed(value.field("k")?)),
            _ => Err(Error::new(
                "expected K selection mode \"auto\" or \"fixed\"",
            )),
        }
    }
}

impl Serialize for Optimizations {
    fn serialize(&self) -> Value {
        Value::object([
            ("filter_ratio", self.filter_ratio.serialize()),
            ("guess_and_verify", self.guess_and_verify.serialize()),
            ("sketching", self.sketching.serialize()),
        ])
    }
}

impl Deserialize for Optimizations {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(Optimizations {
            filter_ratio: value.field("filter_ratio")?,
            guess_and_verify: value.field("guess_and_verify")?,
            sketching: value.field("sketching")?,
        })
    }
}

impl Serialize for ExplainRequest {
    fn serialize(&self) -> Value {
        Value::object([
            ("explain_by", self.explain_by().serialize()),
            ("top_m", self.top_m().serialize()),
            ("max_order", self.max_order().serialize()),
            ("diff_metric", self.diff_metric().serialize()),
            ("variance_metric", self.variance_metric().serialize()),
            ("k", self.k_selection().serialize()),
            ("optimizations", self.optimizations().serialize()),
            ("smoothing_window", self.smoothing_window().serialize()),
            ("time_range", self.time_range().serialize()),
        ])
    }
}

impl Deserialize for ExplainRequest {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let explain_by: Vec<String> = value.field("explain_by")?;
        let mut request = ExplainRequest::new(explain_by)
            .with_top_m(value.field("top_m")?)
            .with_max_order(value.field("max_order")?)
            .with_diff_metric(value.field("diff_metric")?)
            .with_variance_metric(value.field("variance_metric")?)
            .with_optimizations(value.field("optimizations")?)
            .with_smoothing(value.field("smoothing_window")?);
        request = match value.field::<KSelection>("k")? {
            KSelection::Auto { max_k } => request.with_max_k(max_k),
            KSelection::Fixed(k) => request.with_fixed_k(k),
        };
        if let Some((start, end)) = value
            .field::<Option<(tsexplain_relation::AttrValue, tsexplain_relation::AttrValue)>>(
                "time_range",
            )?
        {
            request = request.with_time_range(start, end);
        }
        Ok(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TsExplainConfig;
    use std::time::Duration;
    use tsexplain_diff::{DiffMetric, Effect};
    use tsexplain_relation::AttrValue;
    use tsexplain_segment::Segmentation;

    fn sample_result() -> ExplainResult {
        ExplainResult {
            segmentation: Segmentation::new(5, vec![2]).unwrap(),
            chosen_k: 2,
            k_variance_curve: vec![(1, 3.0), (2, 1.0)],
            total_variance: 1.0,
            segments: vec![SegmentExplanation {
                start: 0,
                end: 2,
                start_time: AttrValue::from("d0"),
                end_time: AttrValue::from("d2"),
                explanations: vec![ExplanationItem {
                    label: "state=NY".into(),
                    gamma: 12.5,
                    effect: Effect::Plus,
                    series: vec![0.0, 5.0, 12.5],
                }],
                variance: 0.125,
            }],
            timestamps: ["d0", "d1", "d2", "d3", "d4"].map(AttrValue::from).to_vec(),
            aggregate: vec![0.0, 5.0, 12.5, 12.5, 12.5],
            latency: LatencyBreakdown {
                precompute: Duration::from_micros(1500),
                cascading: Duration::from_micros(250),
                segmentation: Duration::from_micros(40),
            },
            stats: PipelineStats {
                epsilon: 3,
                filtered_epsilon: 2,
                n_points: 5,
                ca_calls: 9,
                candidate_positions: 5,
                cube_from_cache: true,
            },
        }
    }

    #[test]
    fn result_roundtrips_through_json_text() {
        let result = sample_result();
        let json = serde_json::to_string(&result).unwrap();
        let back: ExplainResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.segmentation, result.segmentation);
        assert_eq!(back.chosen_k, result.chosen_k);
        assert_eq!(back.k_variance_curve, result.k_variance_curve);
        assert_eq!(back.total_variance, result.total_variance);
        assert_eq!(back.timestamps, result.timestamps);
        assert_eq!(back.aggregate, result.aggregate);
        assert_eq!(back.latency.precompute, result.latency.precompute);
        assert_eq!(back.stats, result.stats);
        assert_eq!(back.segments.len(), 1);
        let seg = &back.segments[0];
        assert_eq!(seg.explanations[0].label, "state=NY");
        assert_eq!(seg.explanations[0].effect, Effect::Plus);
        assert_eq!(seg.explanations[0].series, vec![0.0, 5.0, 12.5]);
        assert_eq!(seg.variance, 0.125);
    }

    #[test]
    fn result_json_is_readable() {
        let json = serde_json::to_string_pretty(&sample_result()).unwrap();
        for needle in [
            "\"segments\"",
            "\"state=NY\"",
            "\"chosen_k\": 2",
            "\"cube_from_cache\": true",
            "\"effect\": \"+\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn request_roundtrips_with_all_knobs() {
        let request = ExplainRequest::new(["state", "pack"])
            .with_top_m(5)
            .with_max_order(2)
            .with_diff_metric(DiffMetric::RiskRatio)
            .with_fixed_k(4)
            .with_smoothing(7)
            .with_optimizations(Optimizations::o1())
            .with_time_range("2020-01-01", "2020-06-30");
        let json = serde_json::to_string(&request).unwrap();
        let back: ExplainRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn default_request_roundtrips() {
        let request = ExplainRequest::from_config(&TsExplainConfig::new(["a"]));
        let back: ExplainRequest =
            serde_json::from_str(&serde_json::to_string(&request).unwrap()).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn forged_segmentations_are_rejected() {
        let mut value = serde_json::to_value(&sample_result());
        // Corrupt the cuts so they fall outside the interior.
        if let Value::Object(map) = &mut value {
            map.insert(
                "segmentation".into(),
                Value::object([
                    ("n_points", 5usize.serialize()),
                    ("cuts", vec![17usize].serialize()),
                ]),
            );
        }
        assert!(ExplainResult::deserialize(&value).is_err());
    }
}
