//! JSON serialization of the request/response layer (vendored-serde
//! impls), so [`ExplainRequest`]s and [`ExplainResult`]s can cross a
//! service boundary as JSON.
//!
//! Deserialized responses are structurally revalidated where it matters —
//! a [`Segmentation`](tsexplain_segment::Segmentation) re-runs its
//! invariant checks on the way in — and the encoding is stable: plain
//! objects with snake_case members, enums as their paper-facing names.
//! Requests deserialize *default-tolerantly*: only `explain_by` is
//! required, every other member falls back to the paper's default when
//! absent — `{"explain_by": ["state"]}` is a complete wire request, and
//! `{"explain_by": ["state"], "segmenter": {"strategy": "fluss",
//! "window": 12}}` selects a baseline strategy.

use serde::{Deserialize, Error, Serialize, Value};

use tsexplain_segment::KSelection;

use crate::config::Optimizations;
use crate::latency::{LatencyBreakdown, MemoCounters, ParallelTimings};
use crate::request::ExplainRequest;
use crate::result::{ExplainResult, ExplanationItem, PipelineStats, SegmentExplanation};
use crate::segmenter::SegmenterSpec;

/// Deserializes an optional object member, substituting `default` when the
/// member is absent or JSON `null` — the request layer's tolerance rule.
fn field_or<T: Deserialize>(value: &Value, key: &str, default: T) -> Result<T, Error> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(member) => T::deserialize(member).map_err(|e| e.contextualize(key)),
    }
}

impl Serialize for ParallelTimings {
    fn serialize(&self) -> Value {
        Value::object([
            ("threads", self.threads.serialize()),
            ("cascading", self.cascading.serialize()),
            ("segmentation", self.segmentation.serialize()),
        ])
    }
}

impl Deserialize for ParallelTimings {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(ParallelTimings {
            threads: value.field("threads")?,
            cascading: value.field("cascading")?,
            segmentation: value.field("segmentation")?,
        })
    }
}

impl Serialize for MemoCounters {
    fn serialize(&self) -> Value {
        Value::object([
            ("hits", self.hits.serialize()),
            ("misses", self.misses.serialize()),
        ])
    }
}

impl Deserialize for MemoCounters {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(MemoCounters {
            hits: value.field("hits")?,
            misses: value.field("misses")?,
        })
    }
}

impl Serialize for LatencyBreakdown {
    fn serialize(&self) -> Value {
        Value::object([
            ("precompute", self.precompute.serialize()),
            ("cascading", self.cascading.serialize()),
            ("segmentation", self.segmentation.serialize()),
            ("parallel", self.parallel.serialize()),
            ("memo", self.memo.serialize()),
        ])
    }
}

impl Deserialize for LatencyBreakdown {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(LatencyBreakdown {
            precompute: value.field("precompute")?,
            cascading: value.field("cascading")?,
            segmentation: value.field("segmentation")?,
            // Results predating the parallel layer / the memo carry no
            // such blocks; defaults keep old payloads decodable.
            parallel: field_or(value, "parallel", ParallelTimings::default())?,
            memo: field_or(value, "memo", MemoCounters::default())?,
        })
    }
}

impl Serialize for PipelineStats {
    fn serialize(&self) -> Value {
        Value::object([
            ("epsilon", self.epsilon.serialize()),
            ("filtered_epsilon", self.filtered_epsilon.serialize()),
            ("n_points", self.n_points.serialize()),
            ("ca_calls", self.ca_calls.serialize()),
            ("candidate_positions", self.candidate_positions.serialize()),
            ("cube_from_cache", self.cube_from_cache.serialize()),
        ])
    }
}

impl Deserialize for PipelineStats {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(PipelineStats {
            epsilon: value.field("epsilon")?,
            filtered_epsilon: value.field("filtered_epsilon")?,
            n_points: value.field("n_points")?,
            ca_calls: value.field("ca_calls")?,
            candidate_positions: value.field("candidate_positions")?,
            cube_from_cache: value.field("cube_from_cache")?,
        })
    }
}

impl Serialize for ExplanationItem {
    fn serialize(&self) -> Value {
        Value::object([
            ("label", self.label.serialize()),
            ("gamma", self.gamma.serialize()),
            ("effect", self.effect.serialize()),
            ("series", self.series.serialize()),
        ])
    }
}

impl Deserialize for ExplanationItem {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(ExplanationItem {
            label: value.field("label")?,
            gamma: value.field("gamma")?,
            effect: value.field("effect")?,
            series: value.field("series")?,
        })
    }
}

impl Serialize for SegmentExplanation {
    fn serialize(&self) -> Value {
        Value::object([
            ("start", self.start.serialize()),
            ("end", self.end.serialize()),
            ("start_time", self.start_time.serialize()),
            ("end_time", self.end_time.serialize()),
            ("explanations", self.explanations.serialize()),
            ("variance", self.variance.serialize()),
        ])
    }
}

impl Deserialize for SegmentExplanation {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(SegmentExplanation {
            start: value.field("start")?,
            end: value.field("end")?,
            start_time: value.field("start_time")?,
            end_time: value.field("end_time")?,
            explanations: value.field("explanations")?,
            variance: value.field("variance")?,
        })
    }
}

impl Serialize for ExplainResult {
    fn serialize(&self) -> Value {
        Value::object([
            ("strategy", self.strategy.serialize()),
            ("segmentation", self.segmentation.serialize()),
            ("chosen_k", self.chosen_k.serialize()),
            ("k_variance_curve", self.k_variance_curve.serialize()),
            ("total_variance", self.total_variance.serialize()),
            ("segments", self.segments.serialize()),
            ("timestamps", self.timestamps.serialize()),
            ("aggregate", self.aggregate.serialize()),
            ("latency", self.latency.serialize()),
            ("stats", self.stats.serialize()),
        ])
    }
}

impl Deserialize for ExplainResult {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(ExplainResult {
            // Results predating the strategy field default to the DP.
            strategy: field_or(value, "strategy", "dp".to_string())?,
            segmentation: value.field("segmentation")?,
            chosen_k: value.field("chosen_k")?,
            k_variance_curve: value.field("k_variance_curve")?,
            total_variance: value.field("total_variance")?,
            segments: value.field("segments")?,
            timestamps: value.field("timestamps")?,
            aggregate: value.field("aggregate")?,
            latency: value.field("latency")?,
            stats: value.field("stats")?,
        })
    }
}

impl Serialize for Optimizations {
    fn serialize(&self) -> Value {
        Value::object([
            ("filter_ratio", self.filter_ratio.serialize()),
            ("guess_and_verify", self.guess_and_verify.serialize()),
            ("sketching", self.sketching.serialize()),
        ])
    }
}

impl Deserialize for Optimizations {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(Optimizations {
            filter_ratio: value.field("filter_ratio")?,
            guess_and_verify: value.field("guess_and_verify")?,
            sketching: value.field("sketching")?,
        })
    }
}

impl Serialize for SegmenterSpec {
    fn serialize(&self) -> Value {
        let mut members = vec![("strategy", Value::String(self.name().into()))];
        if let Some(w) = self.window() {
            members.push(("window", w.serialize()));
        }
        Value::object(members)
    }
}

impl Deserialize for SegmenterSpec {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let name = value
            .get("strategy")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::new("expected a segmenter object with a \"strategy\" member"))?;
        match name {
            "dp" => Ok(SegmenterSpec::Dp),
            "bottom_up" => Ok(SegmenterSpec::BottomUp),
            "fluss" => Ok(SegmenterSpec::Fluss {
                window: value.field("window")?,
            }),
            "nnsegment" => Ok(SegmenterSpec::NnSegment {
                window: value.field("window")?,
            }),
            other => Err(Error::new(format!(
                "unknown segmentation strategy {other:?} \
                 (expected \"dp\", \"bottom_up\", \"fluss\" or \"nnsegment\")"
            ))),
        }
    }
}

impl Serialize for ExplainRequest {
    fn serialize(&self) -> Value {
        Value::object([
            ("explain_by", self.explain_by().serialize()),
            ("top_m", self.top_m().serialize()),
            ("max_order", self.max_order().serialize()),
            ("diff_metric", self.diff_metric().serialize()),
            ("variance_metric", self.variance_metric().serialize()),
            ("k", self.k_selection().serialize()),
            ("optimizations", self.optimizations().serialize()),
            ("smoothing_window", self.smoothing_window().serialize()),
            ("time_range", self.time_range().serialize()),
            ("segmenter", self.segmenter().serialize()),
            ("threads", self.threads().serialize()),
            ("timeout_ms", self.timeout_ms().serialize()),
        ])
    }
}

impl Deserialize for ExplainRequest {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let explain_by: Vec<String> = value.field("explain_by")?;
        let defaults = ExplainRequest::new(Vec::<String>::new());
        let mut request = ExplainRequest::new(explain_by)
            .with_top_m(field_or(value, "top_m", defaults.top_m())?)
            .with_max_order(field_or(value, "max_order", defaults.max_order())?)
            .with_diff_metric(field_or(value, "diff_metric", defaults.diff_metric())?)
            .with_variance_metric(field_or(
                value,
                "variance_metric",
                defaults.variance_metric(),
            )?)
            .with_optimizations(field_or(value, "optimizations", defaults.optimizations())?)
            .with_smoothing(field_or(
                value,
                "smoothing_window",
                defaults.smoothing_window(),
            )?)
            .with_segmenter(field_or(value, "segmenter", defaults.segmenter())?);
        if let Some(threads) = field_or::<Option<usize>>(value, "threads", None)? {
            request = request.with_threads(threads);
        }
        // The client's requested time budget; the serving layer clamps it
        // to the server cap when minting the deadline. The runtime cancel
        // token is deliberately NOT a wire member.
        if let Some(timeout_ms) = field_or::<Option<u64>>(value, "timeout_ms", None)? {
            request = request.with_timeout_ms(timeout_ms);
        }
        request = match field_or(value, "k", defaults.k_selection())? {
            KSelection::Auto { max_k } => request.with_max_k(max_k),
            KSelection::Fixed(k) => request.with_fixed_k(k),
        };
        if let Some((start, end)) = field_or::<
            Option<(tsexplain_relation::AttrValue, tsexplain_relation::AttrValue)>,
        >(value, "time_range", None)?
        {
            request = request.with_time_range(start, end);
        }
        Ok(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tsexplain_diff::{DiffMetric, Effect};
    use tsexplain_relation::AttrValue;
    use tsexplain_segment::Segmentation;

    fn sample_result() -> ExplainResult {
        ExplainResult {
            strategy: "dp".into(),
            segmentation: Segmentation::new(5, vec![2]).unwrap(),
            chosen_k: 2,
            k_variance_curve: vec![(1, 3.0), (2, 1.0)],
            total_variance: 1.0,
            segments: vec![SegmentExplanation {
                start: 0,
                end: 2,
                start_time: AttrValue::from("d0"),
                end_time: AttrValue::from("d2"),
                explanations: vec![ExplanationItem {
                    label: "state=NY".into(),
                    gamma: 12.5,
                    effect: Effect::Plus,
                    series: vec![0.0, 5.0, 12.5],
                }],
                variance: 0.125,
            }],
            timestamps: ["d0", "d1", "d2", "d3", "d4"].map(AttrValue::from).to_vec(),
            aggregate: vec![0.0, 5.0, 12.5, 12.5, 12.5],
            latency: LatencyBreakdown {
                precompute: Duration::from_micros(1500),
                cascading: Duration::from_micros(250),
                segmentation: Duration::from_micros(40),
                parallel: ParallelTimings {
                    threads: 4,
                    cascading: Duration::from_micros(200),
                    segmentation: Duration::from_micros(10),
                },
                memo: MemoCounters {
                    hits: 21,
                    misses: 190,
                },
            },
            stats: PipelineStats {
                epsilon: 3,
                filtered_epsilon: 2,
                n_points: 5,
                ca_calls: 9,
                candidate_positions: 5,
                cube_from_cache: true,
            },
        }
    }

    #[test]
    fn result_roundtrips_through_json_text() {
        let result = sample_result();
        let json = serde_json::to_string(&result).unwrap();
        let back: ExplainResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.strategy, result.strategy);
        assert_eq!(back.segmentation, result.segmentation);
        assert_eq!(back.chosen_k, result.chosen_k);
        assert_eq!(back.k_variance_curve, result.k_variance_curve);
        assert_eq!(back.total_variance, result.total_variance);
        assert_eq!(back.timestamps, result.timestamps);
        assert_eq!(back.aggregate, result.aggregate);
        assert_eq!(back.latency.precompute, result.latency.precompute);
        assert_eq!(back.latency.memo.hits, result.latency.memo.hits);
        assert_eq!(back.latency.memo.misses, result.latency.memo.misses);
        assert_eq!(back.stats, result.stats);
        assert_eq!(back.segments.len(), 1);
        let seg = &back.segments[0];
        assert_eq!(seg.explanations[0].label, "state=NY");
        assert_eq!(seg.explanations[0].effect, Effect::Plus);
        assert_eq!(seg.explanations[0].series, vec![0.0, 5.0, 12.5]);
        assert_eq!(seg.variance, 0.125);
    }

    #[test]
    fn result_json_is_readable() {
        let json = serde_json::to_string_pretty(&sample_result()).unwrap();
        for needle in [
            "\"segments\"",
            "\"state=NY\"",
            "\"chosen_k\": 2",
            "\"cube_from_cache\": true",
            "\"effect\": \"+\"",
            "\"strategy\": \"dp\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn request_roundtrips_with_all_knobs() {
        let request = ExplainRequest::new(["state", "pack"])
            .with_top_m(5)
            .with_max_order(2)
            .with_diff_metric(DiffMetric::RiskRatio)
            .with_fixed_k(4)
            .with_smoothing(7)
            .with_optimizations(Optimizations::o1())
            .with_segmenter(SegmenterSpec::nnsegment(6))
            .with_time_range("2020-01-01", "2020-06-30");
        let json = serde_json::to_string(&request).unwrap();
        let back: ExplainRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn default_request_roundtrips() {
        let request = ExplainRequest::new(["a"]);
        let back: ExplainRequest =
            serde_json::from_str(&serde_json::to_string(&request).unwrap()).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn segmenter_specs_roundtrip() {
        for spec in [
            SegmenterSpec::Dp,
            SegmenterSpec::BottomUp,
            SegmenterSpec::fluss(12),
            SegmenterSpec::nnsegment(8),
        ] {
            let back = SegmenterSpec::deserialize(&spec.serialize()).unwrap();
            assert_eq!(back, spec);
        }
        // Window-free strategies omit the member entirely.
        assert!(serde_json::to_string(&SegmenterSpec::Dp)
            .unwrap()
            .contains("\"strategy\":\"dp\""));
        assert!(!serde_json::to_string(&SegmenterSpec::BottomUp)
            .unwrap()
            .contains("window"));
    }

    #[test]
    fn segmenter_spec_rejects_garbage() {
        let unknown = Value::object([("strategy", Value::String("kmeans".into()))]);
        assert!(SegmenterSpec::deserialize(&unknown)
            .unwrap_err()
            .to_string()
            .contains("kmeans"));
        // A windowed strategy without its window is incomplete.
        let missing = Value::object([("strategy", Value::String("fluss".into()))]);
        assert!(SegmenterSpec::deserialize(&missing)
            .unwrap_err()
            .to_string()
            .contains("window"));
        assert!(SegmenterSpec::deserialize(&Value::String("dp".into())).is_err());
    }

    #[test]
    fn minimal_wire_requests_fall_back_to_defaults() {
        let minimal: ExplainRequest = serde_json::from_str(r#"{"explain_by": ["state"]}"#).unwrap();
        assert_eq!(minimal, ExplainRequest::new(["state"]));
        let with_strategy: ExplainRequest = serde_json::from_str(
            r#"{"explain_by": ["state"], "segmenter": {"strategy": "fluss", "window": 12}}"#,
        )
        .unwrap();
        assert_eq!(with_strategy.segmenter(), SegmenterSpec::fluss(12));
        assert_eq!(with_strategy.top_m(), 3);
        // explain_by itself stays required.
        assert!(serde_json::from_str::<ExplainRequest>("{}").is_err());
    }

    #[test]
    fn results_without_a_strategy_field_default_to_dp() {
        let mut value = serde_json::to_value(&sample_result());
        if let Value::Object(map) = &mut value {
            map.remove("strategy");
        }
        let back = ExplainResult::deserialize(&value).unwrap();
        assert_eq!(back.strategy, "dp");
    }

    #[test]
    fn results_without_a_memo_block_default_to_zero_counters() {
        let mut value = serde_json::to_value(&sample_result());
        if let Value::Object(map) = &mut value {
            let mut latency = match map.get("latency") {
                Some(Value::Object(l)) => l.clone(),
                other => panic!("latency block missing: {other:?}"),
            };
            latency.remove("memo");
            map.insert("latency".into(), Value::Object(latency));
        }
        let back = ExplainResult::deserialize(&value).unwrap();
        assert_eq!(back.latency.memo.hits, 0);
        assert_eq!(back.latency.memo.misses, 0);
    }

    #[test]
    fn forged_segmentations_are_rejected() {
        let mut value = serde_json::to_value(&sample_result());
        // Corrupt the cuts so they fall outside the interior.
        if let Value::Object(map) = &mut value {
            map.insert(
                "segmentation".into(),
                Value::object([
                    ("n_points", 5usize.serialize()),
                    ("cuts", vec![17usize].serialize()),
                ]),
            );
        }
        assert!(ExplainResult::deserialize(&value).is_err());
    }
}
