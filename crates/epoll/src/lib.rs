//! Readiness primitives for the tsx-server connection multiplexer:
//! a thin, safe wrapper over Linux `epoll(7)` and `eventfd(2)` built on
//! raw libc syscalls — the same dependency-free vendoring spirit as the
//! rest of the workspace (the build environment has no crates.io access,
//! and the symbols live in the platform libc that `std` already links).
//!
//! This is deliberately the *only* workspace crate containing `unsafe`:
//! the FFI declarations and the two places that hand raw pointers to the
//! kernel are confined here behind a safe API, so every other crate keeps
//! the workspace-wide `#![forbid(unsafe_code)]`.
//!
//! The API is exactly what a parking multiplexer needs and nothing more:
//!
//! * [`Poller`] — one epoll instance. [`Poller::add`] registers a file
//!   descriptor for level-triggered readability (plus peer-hangup
//!   detection), [`Poller::remove`] deregisters it, and [`Poller::wait`]
//!   blocks until readiness or a timeout, filling a caller-owned event
//!   buffer with `(token, readable, hangup)` triples.
//! * [`Waker`] — an `eventfd` that other threads ring to interrupt a
//!   blocked [`Poller::wait`]; registered with the poller like any other
//!   fd and drained on wake.
//!
//! Level-triggered mode is a correctness choice, not a default: the
//! reactor hands readable connections to blocking workers and re-parks
//! them afterwards, and level-triggering means bytes that arrived while
//! the connection was *unparked* re-fire immediately on re-registration —
//! no lost-wakeup window.
//!
//! On non-Linux targets the same API compiles but [`Poller::new`] and
//! [`Waker::new`] return `io::ErrorKind::Unsupported`; the event-driven
//! server core is a Linux subsystem (as is every deployment target this
//! workspace serves), and a stub beats a platform `compile_error!`.

#![deny(clippy::print_stdout)]

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The caller's token from [`Poller::add`].
    pub token: u64,
    /// Bytes (or an accepted connection) are ready to read.
    pub readable: bool,
    /// The peer hung up or the descriptor errored; with `readable` also
    /// set, buffered bytes are still worth draining first.
    pub hangup: bool,
}

pub use sys::{Poller, Waker};

#[cfg(target_os = "linux")]
mod sys {
    use super::Event;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_uint, c_void};
    use std::time::Duration;

    // The subset of libc this crate speaks. The symbols come from the
    // platform libc `std` links; no external crate is involved.
    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    /// `struct epoll_event`. Packed on x86-64 (the kernel ABI there has
    /// no padding between `events` and `data`); naturally aligned
    /// elsewhere — the same `cfg_attr` split libc itself uses.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLLIN: u32 = 0x1;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_NONBLOCK: c_int = 0o4000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EINTR: i32 = 4;

    /// How many kernel events one `epoll_wait` drains at most. Spillover
    /// is not lost — level-triggered fds re-report on the next call.
    const WAIT_BATCH: usize = 256;

    /// An owned file descriptor closed on drop (pre-`OwnedFd`-idiom,
    /// local so the crate needs nothing beyond the syscalls above).
    #[derive(Debug)]
    struct Fd(RawFd);

    impl Drop for Fd {
        fn drop(&mut self) {
            // Nothing useful can be done about a failed close on drop.
            unsafe {
                close(self.0);
            }
        }
    }

    fn last_error() -> io::Error {
        io::Error::last_os_error()
    }

    /// One epoll instance: register fds with tokens, wait for readiness.
    #[derive(Debug)]
    pub struct Poller {
        epfd: Fd,
    }

    impl Poller {
        /// A fresh epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(last_error());
            }
            Ok(Poller { epfd: Fd(fd) })
        }

        /// Registers `fd` for level-triggered readability + peer hangup,
        /// reported under `token`.
        pub fn add(&self, fd: RawFd, token: u64) -> io::Result<()> {
            let mut event = EpollEvent {
                events: EPOLLIN | EPOLLRDHUP,
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd.0, EPOLL_CTL_ADD, fd, &mut event) };
            if rc < 0 {
                return Err(last_error());
            }
            Ok(())
        }

        /// Deregisters `fd`. Removing an fd the kernel already dropped
        /// (peer close) reports an error the caller is free to ignore.
        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            let mut event = EpollEvent { events: 0, data: 0 };
            let rc = unsafe { epoll_ctl(self.epfd.0, EPOLL_CTL_DEL, fd, &mut event) };
            if rc < 0 {
                return Err(last_error());
            }
            Ok(())
        }

        /// Blocks until at least one registered fd is ready or `timeout`
        /// elapses (`None` = forever), replacing `events`' contents.
        /// Returns the number of events delivered; `0` means timeout.
        /// `EINTR` is retried internally.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let timeout_ms: c_int = match timeout {
                // Round up so a 0<t<1ms timeout still sleeps, and saturate
                // instead of wrapping for absurdly long ones.
                Some(t) => t
                    .as_millis()
                    .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                    .min(c_int::MAX as u128) as c_int,
                None => -1,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
            let n = loop {
                let rc = unsafe {
                    epoll_wait(
                        self.epfd.0,
                        buf.as_mut_ptr(),
                        WAIT_BATCH as c_int,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                if last_error().raw_os_error() != Some(EINTR) {
                    return Err(last_error());
                }
            };
            for raw in buf.iter().take(n) {
                // Copy out of the (possibly packed) struct before use.
                let bits = raw.events;
                let token = raw.data;
                events.push(Event {
                    token,
                    readable: bits & EPOLLIN != 0,
                    hangup: bits & (EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(n)
        }
    }

    /// An `eventfd`-based wakeup: any thread may [`Waker::wake`] to
    /// interrupt the poller blocked in [`Poller::wait`].
    #[derive(Debug)]
    pub struct Waker {
        fd: Fd,
    }

    impl Waker {
        /// A fresh non-blocking eventfd.
        pub fn new() -> io::Result<Waker> {
            let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
            if fd < 0 {
                return Err(last_error());
            }
            Ok(Waker { fd: Fd(fd) })
        }

        /// The raw fd, for registration with a [`Poller`].
        pub fn raw_fd(&self) -> RawFd {
            self.fd.0
        }

        /// Rings the wakeup. Infallible by design: the only failure mode
        /// of a non-blocking eventfd write is a saturated counter, which
        /// means a wake is already pending — mission accomplished.
        pub fn wake(&self) {
            let one: u64 = 1;
            unsafe {
                write(self.fd.0, (&one as *const u64).cast(), 8);
            }
        }

        /// Clears pending wakeups so level-triggered polling does not
        /// spin; call on every waker readiness event.
        pub fn drain(&self) {
            let mut buf: u64 = 0;
            unsafe {
                // One read resets the whole eventfd counter.
                read(self.fd.0, (&mut buf as *mut u64).cast(), 8);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::Event;
    use std::io;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "the event-driven server core requires Linux epoll",
        )
    }

    /// Stub poller for non-Linux targets: compiles, never constructs.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        /// Always `Unsupported` off Linux.
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist), present for API parity.
        pub fn add(&self, _fd: i32, _token: u64) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist), present for API parity.
        pub fn remove(&self, _fd: i32) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist), present for API parity.
        pub fn wait(
            &self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    /// Stub waker for non-Linux targets: compiles, never constructs.
    #[derive(Debug)]
    pub struct Waker {}

    impl Waker {
        /// Always `Unsupported` off Linux.
        pub fn new() -> io::Result<Waker> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist), present for API parity.
        pub fn raw_fd(&self) -> i32 {
            -1
        }

        /// Unreachable (no instance can exist), present for API parity.
        pub fn wake(&self) {}

        /// Unreachable (no instance can exist), present for API parity.
        pub fn drain(&self) {}
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn waker_interrupts_an_idle_wait() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.raw_fd(), 7).unwrap();

        let remote = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });
        let mut events = Vec::new();
        // Far longer than the wake delay: only the waker can end this early.
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        t.join().unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        waker.drain();
        // Drained: an immediate poll times out instead of re-firing.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0, "drained waker must not re-report readiness");
    }

    #[test]
    fn sockets_report_readable_and_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 1).unwrap();

        let mut events = Vec::new();
        // Nothing pending yet: a short wait times out.
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(5)))
                .unwrap(),
            0
        );

        let mut client = TcpStream::connect(addr).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        let (server_side, _) = listener.accept().unwrap();
        poller.add(server_side.as_raw_fd(), 2).unwrap();
        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));

        // Level-triggered: unconsumed bytes re-report on the next wait.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));

        drop(client);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 2).unwrap();
        assert!(ev.hangup, "peer close must surface as hangup");

        poller.remove(server_side.as_raw_fd()).unwrap();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(5)))
                .unwrap(),
            0,
            "deregistered fds must stay silent"
        );
    }
}
