//! Cooperative cancellation for the parallel execution layer.
//!
//! A [`CancelToken`] is a cheap, cloneable handle polled by long-running
//! compute loops (cube enumeration, cost-matrix rows, DP layers, auto-K
//! sweeps) at their natural chunk boundaries. Cancellation is **sticky**
//! and **all-or-nothing**: once a poll observes the token cancelled it
//! stays cancelled, the enclosing request discards every partial result
//! and surfaces a typed error, and a rerun of the same request without a
//! token is byte-identical to a run that never carried one — polling is
//! observation only, it never feeds the computation.
//!
//! Three trip conditions, checked in poll order:
//!
//! 1. an explicit [`CancelToken::cancel`] call,
//! 2. a wall-clock deadline ([`CancelToken::with_deadline`]) — the one
//!    place in the determinism-scoped crates that may read the clock,
//!    because its only effect is *whether* the request errors, never what
//!    a successful answer contains,
//! 3. a poll-count fuse ([`CancelToken::after_polls`]), the deterministic
//!    test hook the cancellation-injection proptests use to trip at an
//!    arbitrary poll point without involving time at all.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Wall-clock trip point, if this token carries a deadline.
    deadline: Option<Instant>,
    /// Deterministic trip point: cancel once `polls` reaches this count.
    fuse: Option<u64>,
    /// Total polls observed, across every clone and thread.
    polls: AtomicU64,
}

/// A shared cancellation flag polled cooperatively by compute loops
/// (see module docs). Clones observe the same state.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    fn with_inner(deadline: Option<Instant>, fuse: Option<u64>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
                fuse,
                polls: AtomicU64::new(0),
            }),
        }
    }

    /// A token that only trips on an explicit [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken::with_inner(None, None)
    }

    /// A token that trips once the wall clock reaches `deadline` (or on
    /// an explicit cancel, whichever comes first).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken::with_inner(Some(deadline), None)
    }

    /// A token that trips once more than `n` polls have been observed —
    /// the deterministic injection hook for cancellation proptests.
    /// `n = 0` is cancelled from the first poll on.
    pub fn after_polls(n: u64) -> Self {
        CancelToken::with_inner(None, Some(n))
    }

    /// Cancels the token explicitly; every subsequent poll (on any clone,
    /// from any thread) observes it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Polls the token: true once cancelled (explicitly, past the
    /// deadline, or past the poll fuse). Sticky — never reverts.
    pub fn is_cancelled(&self) -> bool {
        let inner = &*self.inner;
        let polls = inner.polls.fetch_add(1, Ordering::Relaxed) + 1;
        if inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(fuse) = inner.fuse {
            if polls > fuse {
                inner.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        if let Some(deadline) = inner.deadline {
            // The single legitimate clock read in the determinism-scoped
            // crates: it decides only whether the request errors, never
            // what a successful answer contains.
            // tsx-lint: allow(wall-clock, deadline trip check; sticky cancel only errors the request, successful output never observes time)
            if Instant::now() >= deadline {
                inner.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Total polls observed so far across every clone — what the
    /// injection proptests use to bound their fuse range.
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::Relaxed)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// Clone-identity equality: two tokens are equal when they share state.
/// (Lets request types that embed an optional token keep `PartialEq`.)
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for CancelToken {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn explicit_cancel_is_sticky_and_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(token.is_cancelled(), "sticky");
        assert_eq!(token, clone);
        assert_ne!(token, CancelToken::new());
    }

    #[test]
    fn deadline_trips_once_passed() {
        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(expired.is_cancelled());
        let distant = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!distant.is_cancelled());
    }

    #[test]
    fn poll_fuse_trips_deterministically() {
        let token = CancelToken::after_polls(3);
        assert!(!token.is_cancelled());
        assert!(!token.is_cancelled());
        assert!(!token.is_cancelled());
        assert!(token.is_cancelled(), "fourth poll exceeds the fuse of 3");
        assert!(token.is_cancelled(), "sticky");
        assert!(CancelToken::after_polls(0).is_cancelled(), "0 = immediate");
        assert!(token.polls() >= 5);
    }

    #[test]
    fn polls_count_across_threads() {
        let token = CancelToken::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let token = token.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        assert!(!token.is_cancelled());
                    }
                });
            }
        });
        assert_eq!(token.polls(), 400);
    }
}
