//! # tsexplain-parallel
//!
//! The workspace's intra-query parallel execution layer: a dependency-free
//! scoped-thread fan-out with **deterministic chunk-ordered reduction**.
//!
//! Every hot path that adopts [`ParallelCtx`] — cube candidate
//! enumeration, the DP cost matrix, the auto-K scoring sweep, the server's
//! `/compare` strategy fan-out — splits its work into contiguous chunks
//! whose boundaries depend only on `(n, threads)`, runs each chunk on its
//! own scoped thread, and concatenates the per-chunk results *in chunk
//! order*. The output is therefore a pure function of the input, never of
//! OS scheduling: running with 1, 2 or 64 threads produces byte-identical
//! results. That determinism is the layer's contract, and the workspace's
//! test harness enforces it (golden files replayed at several thread
//! counts, plus parallel-vs-sequential equality proptests).
//!
//! Thread-count resolution, lowest priority first:
//!
//! 1. the machine (`std::thread::available_parallelism`, capped at
//!    [`MAX_DEFAULT_THREADS`]),
//! 2. the `TSX_THREADS` environment variable (`0` or unset = machine
//!    default, `1` = sequential),
//! 3. an explicit per-request override (`ExplainRequest::with_threads` /
//!    `tsx-server --threads`), which callers express by constructing
//!    [`ParallelCtx::new`] directly.
//!
//! Worker threads are spawned per parallel region (`std::thread::scope`),
//! not pooled: regions are coarse (whole cost matrices, whole cube
//! enumerations), so spawn cost is noise, and scoped borrows keep the API
//! free of `Arc`/`'static` ceremony — chunk closures borrow the query's
//! data directly.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
use std::ops::Range;
use std::sync::OnceLock;
use std::thread;

mod cancel;

pub use cancel::CancelToken;

/// Cap on the machine-derived default thread count. Explicit requests
/// (`ParallelCtx::new`, `TSX_THREADS=32`) may exceed it.
pub const MAX_DEFAULT_THREADS: usize = 8;

/// Hard ceiling on any configured thread count — far above any sane
/// setting, it only guards against `TSX_THREADS=1000000` spawning storms.
pub const MAX_THREADS: usize = 256;

/// The environment variable that sets the default intra-query thread
/// count (`0` or unset = machine default, `1` = sequential).
pub const THREADS_ENV: &str = "TSX_THREADS";

/// An intra-query parallel execution context (see module docs): a thread
/// count plus deterministic chunked fan-out/reduce primitives, optionally
/// carrying the request's [`CancelToken`].
///
/// Cancellation never changes a *successful* result: workers poll the
/// token at chunk boundaries and early-exit with truncated output, but
/// every adopting hot path re-checks [`ParallelCtx::is_cancelled`] after
/// the fan-out and discards the whole region's output in favour of a
/// typed error. Either the request runs to completion byte-identical to
/// an uncancelled run, or it errors — never a third outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParallelCtx {
    threads: usize,
    cancel: Option<CancelToken>,
}

impl ParallelCtx {
    /// A context running `threads` workers per parallel region; `0` means
    /// the machine default. Clamped to [`MAX_THREADS`].
    pub fn new(threads: usize) -> Self {
        let threads = match threads {
            0 => machine_default(),
            t => t.min(MAX_THREADS),
        };
        ParallelCtx {
            threads,
            cancel: None,
        }
    }

    /// The sequential context: every region runs inline on the caller's
    /// thread. Parallel and sequential execution are byte-identical by
    /// contract; this is the reference the harness compares against.
    pub fn sequential() -> Self {
        ParallelCtx {
            threads: 1,
            cancel: None,
        }
    }

    /// The process-wide default: [`THREADS_ENV`] when set (cached after the
    /// first read), the machine default otherwise.
    pub fn from_env() -> Self {
        static ENV_THREADS: OnceLock<usize> = OnceLock::new();
        let threads = *ENV_THREADS.get_or_init(|| match std::env::var(THREADS_ENV) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(0) | Err(_) => machine_default(),
                Ok(t) => t.min(MAX_THREADS),
            },
            Err(_) => machine_default(),
        });
        ParallelCtx {
            threads,
            cancel: None,
        }
    }

    /// Attaches the request's cancellation token: every fan-out under
    /// this context polls it at chunk boundaries, and adopting hot loops
    /// poll it via [`ParallelCtx::is_cancelled`].
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Polls the attached token; always false when none is attached.
    /// Sticky: once true, stays true.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// The configured worker count (≥ 1; 1 = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when regions run inline on the caller's thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Splits `0..n` into at most `threads` contiguous chunks and runs `f`
    /// on each chunk, one scoped thread per chunk; the per-chunk outputs
    /// are concatenated **in chunk order**.
    ///
    /// Chunk boundaries depend only on `(n, threads)` and the reduction
    /// order is fixed, so the result is independent of scheduling — the
    /// determinism contract. With one thread (or one chunk) `f` runs
    /// inline with no spawns.
    ///
    /// When a [`CancelToken`] is attached and trips, workers that have
    /// not yet started their chunk skip it (their slot contributes
    /// nothing), so the fan-out joins promptly and the returned vector
    /// may be **truncated**. Callers that attach a token must re-check
    /// [`ParallelCtx::is_cancelled`] after the region and discard the
    /// output; without a token the result is always complete.
    pub fn run_chunks<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> Vec<T> + Sync,
    {
        let ranges = self.chunk_ranges(n);
        if ranges.len() <= 1 {
            if self.is_cancelled() {
                return Vec::new();
            }
            return f(0..n);
        }
        let mut parts: Vec<Option<Vec<T>>> = Vec::new();
        parts.resize_with(ranges.len(), || None);
        thread::scope(|scope| {
            // Give each chunk's output slot to exactly one worker; the
            // iteration below re-reads them in chunk order.
            for (slot, range) in parts.iter_mut().zip(ranges.iter().cloned()) {
                let f = &f;
                let ctx = &*self;
                scope.spawn(move || {
                    // Chunk-boundary poll: a cancelled fan-out stops
                    // spending CPU and joins cleanly; the region's caller
                    // discards the truncated output.
                    if ctx.is_cancelled() {
                        *slot = Some(Vec::new());
                    } else {
                        *slot = Some(f(range));
                    }
                });
            }
        });
        let mut out = Vec::with_capacity(n);
        for part in parts {
            out.extend(part.expect("scope joins every worker"));
        }
        out
    }

    /// Maps `f` over `0..n` with deterministic ordering: `out[i] = f(i)`,
    /// computed across the worker chunks. Convenience over
    /// [`ParallelCtx::run_chunks`] for per-index work.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_chunks(n, |range| range.map(&f).collect())
    }

    /// The contiguous chunk decomposition of `0..n` this context uses: at
    /// most `threads` chunks of near-equal size (the first `n % chunks`
    /// chunks are one element longer). Deterministic in `(n, threads)`.
    pub fn chunk_ranges(&self, n: usize) -> Vec<Range<usize>> {
        if n == 0 {
            return Vec::new();
        }
        let chunks = self.threads.min(n).max(1);
        let base = n / chunks;
        let extra = n % chunks;
        let mut ranges = Vec::with_capacity(chunks);
        let mut start = 0;
        for c in 0..chunks {
            let len = base + usize::from(c < extra);
            ranges.push(start..start + len);
            start += len;
        }
        debug_assert_eq!(start, n);
        ranges
    }
}

impl Default for ParallelCtx {
    /// The process default ([`ParallelCtx::from_env`]).
    fn default() -> Self {
        ParallelCtx::from_env()
    }
}

fn machine_default() -> usize {
    thread::available_parallelism()
        .map(|n| n.get().min(MAX_DEFAULT_THREADS))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_ranges_partition_exactly() {
        for threads in [1, 2, 3, 7, 8] {
            let ctx = ParallelCtx::new(threads);
            for n in [0usize, 1, 2, 5, 16, 97] {
                let ranges = ctx.chunk_ranges(n);
                assert!(ranges.len() <= threads.max(1));
                let mut expected = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected, "contiguous");
                    assert!(!r.is_empty(), "no empty chunks");
                    expected = r.end;
                }
                assert_eq!(expected, n, "covers 0..{n} with {threads} threads");
            }
        }
    }

    #[test]
    fn map_preserves_index_order_at_any_thread_count() {
        let reference: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let ctx = ParallelCtx::new(threads);
            assert_eq!(ctx.map(257, |i| i * i), reference, "threads={threads}");
        }
    }

    #[test]
    fn run_chunks_concatenates_in_chunk_order() {
        let ctx = ParallelCtx::new(4);
        let out = ctx.run_chunks(10, |range| range.map(|i| i as u64).collect());
        assert_eq!(out, (0..10u64).collect::<Vec<_>>());
        // Variable-length chunk outputs also concatenate in order.
        let out = ctx.run_chunks(8, |range| {
            range.flat_map(|i| std::iter::repeat_n(i, i % 3)).collect()
        });
        let expected: Vec<usize> = (0..8).flat_map(|i| std::iter::repeat_n(i, i % 3)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_regions_actually_fan_out() {
        let ctx = ParallelCtx::new(4);
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        ctx.run_chunks(4, |range| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            // Hold the slot long enough for the other workers to arrive.
            std::thread::sleep(std::time::Duration::from_millis(30));
            live.fetch_sub(1, Ordering::SeqCst);
            range.collect::<Vec<_>>()
        });
        // Even on a single-core machine all four scoped threads coexist.
        assert_eq!(peak.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn sequential_context_runs_inline() {
        let ctx = ParallelCtx::sequential();
        assert!(ctx.is_sequential());
        let caller = std::thread::current().id();
        let ids = ctx.map(3, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn zero_means_machine_default_and_caps_apply() {
        let ctx = ParallelCtx::new(0);
        assert!(ctx.threads() >= 1 && ctx.threads() <= MAX_DEFAULT_THREADS);
        assert_eq!(ParallelCtx::new(100_000).threads(), MAX_THREADS);
        assert_eq!(ParallelCtx::new(3).threads(), 3);
    }

    #[test]
    fn cancelled_fanout_joins_cleanly_and_truncates() {
        let token = CancelToken::new();
        token.cancel();
        let ctx = ParallelCtx::new(4).with_cancel(token.clone());
        assert!(ctx.is_cancelled());
        let out = ctx.run_chunks(100, |range| range.collect::<Vec<usize>>());
        assert!(out.is_empty(), "cancelled workers skip their chunks");
        // An untripped token leaves results complete and ordered.
        let live = ParallelCtx::new(4).with_cancel(CancelToken::new());
        let out = live.run_chunks(100, |range| range.collect::<Vec<usize>>());
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert!(!live.is_cancelled());
    }

    #[test]
    fn mid_region_cancel_truncates_but_joins() {
        // Trip the token from inside the first chunk; later workers
        // (throttled by the barrier-free schedule) may or may not have
        // started, but the join itself must always complete and the
        // caller observes the cancellation.
        let token = CancelToken::after_polls(1);
        let ctx = ParallelCtx::new(4).with_cancel(token);
        let out = ctx.run_chunks(64, |range| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            range.collect::<Vec<usize>>()
        });
        assert!(out.len() <= 64);
        assert!(ctx.is_cancelled());
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        // The determinism contract in miniature: a floating-point reduction
        // with a fixed chunk decomposition would differ if reduction order
        // ever depended on scheduling; per-index outputs never do.
        let work = |i: usize| ((i as f64) * 0.1).sin();
        let reference: Vec<f64> = (0..1000).map(work).collect();
        for threads in [2, 5, 8] {
            let got = ParallelCtx::new(threads).map(1000, work);
            assert!(got.iter().zip(&reference).all(|(a, b)| a == b));
        }
    }
}
