//! # tsexplain-baselines
//!
//! The three explanation-agnostic segmentation baselines the paper
//! compares against (§7.2). All of them segment the *aggregated* series by
//! visual shape alone and take the segment count K as input:
//!
//! * [`bottom_up`] — piecewise-linear approximation by greedy merging from
//!   the finest segments (Keogh et al. (paper ref. 21), the strongest baseline in the
//!   paper's experiments),
//! * [`fluss`] — matrix-profile-based semantic segmentation via the
//!   corrected arc curve (Gharghabi et al. (paper ref. 9)), built on the from-scratch
//!   [`matrix_profile_index`],
//! * [`nnsegment`] — the LimeSegment changepoint detector (paper ref. 42),
//!   approximated as documented in DESIGN.md §4.5: adjacent-window
//!   z-normalized dissimilarity maxima with an exclusion zone.
//!
//! Each returns interior cut positions compatible with
//! `tsexplain_segment::Segmentation`.
//!
//! The [`adapters`] module additionally wraps each baseline into the
//! [`tsexplain_segment::Segmenter`] strategy boundary
//! ([`BottomUpSegmenter`], [`FlussSegmenter`], [`NnSegmentSegmenter`]), so
//! all of them are selectable per-request through the serving API next to
//! the paper's explanation-aware DP.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
mod adapters;
mod bottom_up;
mod common;
mod fluss;
mod matrix_profile;
mod nnsegment;

pub use adapters::{BottomUpSegmenter, FlussSegmenter, NnSegmentSegmenter};
pub use bottom_up::bottom_up;
pub use common::{interpolation_sse, znormalized_distance};
pub use fluss::{corrected_arc_curve, fluss};
pub use matrix_profile::matrix_profile_index;
pub use nnsegment::nnsegment;
