/// Sum of squared errors of approximating `series[a..=b]` by the straight
/// line through its endpoints — the piecewise-linear-approximation error
/// used by Bottom-Up (paper ref. 21).
pub fn interpolation_sse(series: &[f64], a: usize, b: usize) -> f64 {
    debug_assert!(a <= b && b < series.len());
    if b - a < 2 {
        return 0.0;
    }
    let (va, vb) = (series[a], series[b]);
    let span = (b - a) as f64;
    let mut sse = 0.0;
    for (off, &v) in series[a..=b].iter().enumerate() {
        let interp = va + (vb - va) * off as f64 / span;
        let d = v - interp;
        sse += d * d;
    }
    sse
}

/// Z-normalized Euclidean distance between two equal-length windows.
///
/// Flat windows (zero variance) are treated as all-zero after
/// normalization: two flat windows are identical (distance 0), a flat vs.
/// a non-flat window are maximally far for their length.
pub fn znormalized_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let za = znorm(a);
    let zb = znorm(b);
    za.iter()
        .zip(&zb)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

fn znorm(w: &[f64]) -> Vec<f64> {
    let n = w.len() as f64;
    let mean = w.iter().sum::<f64>() / n;
    let var = w.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let std = var.sqrt();
    if std <= 1e-12 {
        return vec![0.0; w.len()];
    }
    w.iter().map(|x| (x - mean) / std).collect()
}

/// Greedily selects up to `k` extrema indices of `scores` (largest first
/// when `maxima`, smallest first otherwise), suppressing anything within
/// `exclusion` of an already-selected index.
pub(crate) fn select_extrema(
    scores: &[f64],
    k: usize,
    exclusion: usize,
    maxima: bool,
) -> Vec<usize> {
    let mut banned = vec![false; scores.len()];
    let mut picked = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best: Option<usize> = None;
        for (i, &s) in scores.iter().enumerate() {
            if banned[i] || !s.is_finite() {
                continue;
            }
            let better = match best {
                None => true,
                Some(j) => {
                    if maxima {
                        s > scores[j]
                    } else {
                        s < scores[j]
                    }
                }
            };
            if better {
                best = Some(i);
            }
        }
        let Some(i) = best else { break };
        picked.push(i);
        let lo = i.saturating_sub(exclusion);
        let hi = (i + exclusion).min(scores.len() - 1);
        for b in &mut banned[lo..=hi] {
            *b = true;
        }
    }
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sse_zero_for_linear_segments() {
        let s = [0.0, 2.0, 4.0, 6.0];
        assert_eq!(interpolation_sse(&s, 0, 3), 0.0);
        assert_eq!(interpolation_sse(&s, 0, 1), 0.0);
    }

    #[test]
    fn sse_positive_for_bends() {
        let s = [0.0, 5.0, 0.0];
        assert_eq!(interpolation_sse(&s, 0, 2), 25.0);
    }

    #[test]
    fn znorm_distance_invariant_to_scale_and_offset() {
        let a = [1.0, 2.0, 3.0, 2.0];
        let b: Vec<f64> = a.iter().map(|x| 100.0 + 7.0 * x).collect();
        assert!(znormalized_distance(&a, &b) < 1e-9);
    }

    #[test]
    fn znorm_distance_detects_shape_change() {
        let up = [0.0, 1.0, 2.0, 3.0];
        let down = [3.0, 2.0, 1.0, 0.0];
        assert!(znormalized_distance(&up, &down) > 1.0);
    }

    #[test]
    fn flat_windows_are_close() {
        assert_eq!(znormalized_distance(&[5.0; 4], &[9.0; 4]), 0.0);
    }

    #[test]
    fn extrema_respect_exclusion() {
        let scores = [0.0, 10.0, 9.5, 0.0, 0.0, 8.0, 0.0];
        let picked = select_extrema(&scores, 2, 2, true);
        assert_eq!(picked, vec![1, 5]);
    }

    #[test]
    fn extrema_minima_mode() {
        let scores = [5.0, 1.0, 5.0, 5.0, 0.5, 5.0];
        let picked = select_extrema(&scores, 2, 1, false);
        assert_eq!(picked, vec![1, 4]);
    }
}
