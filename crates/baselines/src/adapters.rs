//! [`Segmenter`] adapters over the §7.2 shape-only baselines.
//!
//! Each adapter wraps one of the loose baseline functions ([`crate::bottom_up`],
//! [`crate::fluss`], [`crate::nnsegment`]) into the pluggable strategy
//! boundary of `tsexplain-segment`, so the baselines are selectable
//! per-request through the same serving surface as the paper's DP — the
//! apples-to-apples harness the §7.2 comparison calls for.
//!
//! The shared protocol lives in
//! [`tsexplain_segment::shape_segmenter_outcome`]: a fixed K proposes
//! cuts once; auto K proposes for every `k ≤ max_k`, scores each scheme
//! with the explanation-aware objective `Σ |P_i| · var(P_i)`, and
//! elbow-selects. Only the cut proposal differs between strategies, and
//! every reported `total_variance` is on the DP's own scale.
//!
//! Shape strategies segment the full-resolution aggregated series: the
//! candidate-position restriction (sketching O2, streaming refreshes) is a
//! DP search-space concept and is deliberately ignored here — the
//! baselines are cheap enough to rerun whole.
//!
//! Window-parameterized strategies (FLUSS, NNSegment) assume the caller
//! validated the window against the series length upfront (the serving
//! layer rejects `window < 2`, FLUSS with `n < 2·window + 2` and
//! NNSegment with `n < 2·window + 1` as invalid requests); out-of-range
//! windows here degrade to the underlying functions' graceful empty-cut
//! behaviour rather than panicking.

use tsexplain_segment::{
    shape_segmenter_outcome, KSelection, SegmentError, SegmentationContext, Segmenter,
    SegmenterOutcome,
};

use crate::bottom_up::bottom_up;
use crate::fluss::{corrected_arc_curve, fluss_cuts_from_cac};
use crate::matrix_profile::matrix_profile_index;
use crate::nnsegment::{nnsegment_cuts_from_scores, nnsegment_scores};

/// Bottom-Up piecewise-linear segmentation (Keogh et al., paper ref. 21)
/// behind the [`Segmenter`] boundary — the strongest shape baseline in the
/// paper's experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct BottomUpSegmenter;

impl Segmenter for BottomUpSegmenter {
    fn name(&self) -> &'static str {
        "bottom_up"
    }

    fn segment(
        &self,
        ctx: &mut SegmentationContext<'_>,
        _positions: &[usize],
        k: KSelection,
    ) -> Result<SegmenterOutcome, SegmentError> {
        shape_segmenter_outcome(ctx, k, bottom_up)
    }
}

/// FLUSS semantic segmentation (Gharghabi et al., paper ref. 9) behind the
/// [`Segmenter`] boundary.
///
/// The matrix profile and corrected arc curve are computed once per call
/// and shared across every `k` the auto-K sweep explores — only the
/// minima extraction is per-`k`.
#[derive(Clone, Copy, Debug)]
pub struct FlussSegmenter {
    /// Subsequence window length `w` (≥ 2; the series needs `n ≥ 2w + 2`).
    pub window: usize,
}

impl Segmenter for FlussSegmenter {
    fn name(&self) -> &'static str {
        "fluss"
    }

    fn segment(
        &self,
        ctx: &mut SegmentationContext<'_>,
        _positions: &[usize],
        k: KSelection,
    ) -> Result<SegmenterOutcome, SegmentError> {
        let w = self.window;
        let mut cac: Option<Vec<f64>> = None;
        shape_segmenter_outcome(ctx, k, move |series, k| {
            let n = series.len();
            if k <= 1 || n < 2 * w + 2 {
                return Vec::new();
            }
            let cac = cac.get_or_insert_with(|| {
                let (_, nn_index) = matrix_profile_index(series, w);
                corrected_arc_curve(&nn_index, w)
            });
            fluss_cuts_from_cac(cac, k, w, n)
        })
    }
}

/// The NNSegment / LimeSegment approximation (paper ref. 42) behind the
/// [`Segmenter`] boundary.
///
/// The adjacent-window dissimilarity scores are computed once per call and
/// shared across the auto-K sweep.
#[derive(Clone, Copy, Debug)]
pub struct NnSegmentSegmenter {
    /// Adjacent-window length `w`, doubling as the exclusion zone (≥ 2;
    /// the series needs `n ≥ 2w + 1`).
    pub window: usize,
}

impl Segmenter for NnSegmentSegmenter {
    fn name(&self) -> &'static str {
        "nnsegment"
    }

    fn segment(
        &self,
        ctx: &mut SegmentationContext<'_>,
        _positions: &[usize],
        k: KSelection,
    ) -> Result<SegmenterOutcome, SegmentError> {
        let w = self.window;
        let mut scores: Option<Vec<f64>> = None;
        shape_segmenter_outcome(ctx, k, move |series, k| {
            let n = series.len();
            if k <= 1 || w < 2 || n < 2 * w + 1 {
                return Vec::new();
            }
            let scores = scores.get_or_insert_with(|| nnsegment_scores(series, w));
            nnsegment_cuts_from_scores(scores, k, w)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_cube::{CubeConfig, ExplanationCube};
    use tsexplain_diff::{DiffMetric, TopExplStrategy};
    use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};
    use tsexplain_segment::VarianceMetric;

    /// Three contributors driving three clean phases over 36 points; the
    /// aggregate bends at 12 and 24.
    fn cube() -> ExplanationCube {
        let schema = Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for t in 0..36i64 {
            let ny = if t <= 12 { 8.0 * t as f64 } else { 96.0 };
            let ca = if t <= 12 {
                2.0
            } else if t <= 24 {
                2.0 - 6.0 * (t - 12) as f64
            } else {
                -70.0
            };
            let tx = if t <= 24 {
                5.0
            } else {
                5.0 + 10.0 * (t - 24) as f64
            };
            for (s, v) in [("NY", ny), ("CA", ca), ("TX", tx)] {
                b.push_row(vec![Datum::Attr(t.into()), Datum::from(s), Datum::from(v)])
                    .unwrap();
            }
        }
        ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("t", "v"),
            &CubeConfig::new(["state"]),
        )
        .unwrap()
    }

    fn context(cube: &ExplanationCube) -> SegmentationContext<'_> {
        SegmentationContext::new(
            cube,
            DiffMetric::AbsoluteChange,
            3,
            TopExplStrategy::Exact,
            VarianceMetric::Tse,
        )
    }

    fn all_positions(cube: &ExplanationCube) -> Vec<usize> {
        (0..cube.n_points()).collect()
    }

    #[test]
    fn bottom_up_adapter_matches_the_loose_function() {
        let cube = cube();
        let mut ctx = context(&cube);
        let positions = all_positions(&cube);
        let outcome = BottomUpSegmenter
            .segment(&mut ctx, &positions, KSelection::Fixed(3))
            .unwrap();
        let direct = crate::bottom_up(cube.total_values_slice(), 3);
        assert_eq!(outcome.segmentation.cuts(), direct.as_slice());
        assert_eq!(outcome.chosen_k, 3);
        assert_eq!(BottomUpSegmenter.name(), "bottom_up");
    }

    #[test]
    fn fluss_adapter_matches_the_loose_function() {
        let cube = cube();
        let mut ctx = context(&cube);
        let positions = all_positions(&cube);
        let w = 4;
        let outcome = FlussSegmenter { window: w }
            .segment(&mut ctx, &positions, KSelection::Fixed(2))
            .unwrap();
        let direct = crate::fluss(cube.total_values_slice(), 2, w);
        assert_eq!(outcome.segmentation.cuts(), direct.as_slice());
    }

    #[test]
    fn nnsegment_adapter_matches_the_loose_function() {
        let cube = cube();
        let mut ctx = context(&cube);
        let positions = all_positions(&cube);
        let w = 5;
        let outcome = NnSegmentSegmenter { window: w }
            .segment(&mut ctx, &positions, KSelection::Fixed(3))
            .unwrap();
        let direct = crate::nnsegment(cube.total_values_slice(), 3, w);
        assert_eq!(outcome.segmentation.cuts(), direct.as_slice());
    }

    #[test]
    fn adapters_match_the_loose_functions_across_windows_and_k() {
        // The adapters and the loose functions share their proposal cores
        // (fluss_cuts_from_cac / nnsegment_scores+cuts); this sweep pins
        // the agreement over the whole feasible (w, k) grid, not just one
        // point, so a future edit to either half cannot silently diverge.
        let cube = cube();
        let series = cube.total_values_slice();
        let n = series.len();
        for w in 2..=6 {
            for k in 2..=5 {
                if n >= 2 * w + 2 {
                    let outcome = FlussSegmenter { window: w }
                        .segment(&mut context(&cube), &[0, n - 1], KSelection::Fixed(k))
                        .unwrap();
                    assert_eq!(
                        outcome.segmentation.cuts(),
                        crate::fluss(series, k, w).as_slice(),
                        "fluss w={w} k={k}"
                    );
                }
                if n > 2 * w {
                    let outcome = NnSegmentSegmenter { window: w }
                        .segment(&mut context(&cube), &[0, n - 1], KSelection::Fixed(k))
                        .unwrap();
                    assert_eq!(
                        outcome.segmentation.cuts(),
                        crate::nnsegment(series, k, w).as_slice(),
                        "nnsegment w={w} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn auto_k_scores_on_the_explanation_objective() {
        let cube = cube();
        let mut ctx = context(&cube);
        let positions = all_positions(&cube);
        let outcome = BottomUpSegmenter
            .segment(&mut ctx, &positions, KSelection::Auto { max_k: 6 })
            .unwrap();
        assert_eq!(outcome.k_variance_curve.len(), 6);
        assert_eq!(outcome.chosen_k, outcome.segmentation.k());
        // The reported objective is the context's objective of the scheme.
        let mut fresh = context(&cube);
        let expected = fresh.objective(&outcome.segmentation);
        assert!((outcome.total_variance - expected).abs() < 1e-9);
        // The bends are exactly recoverable by shape alone here.
        assert_eq!(outcome.segmentation.cuts(), &[12, 24]);
    }

    #[test]
    fn adapters_ignore_candidate_position_restrictions() {
        let cube = cube();
        let mut ctx = context(&cube);
        // A sketchy candidate set that excludes the true bends entirely.
        let outcome = BottomUpSegmenter
            .segment(&mut ctx, &[0, 3, 35], KSelection::Fixed(3))
            .unwrap();
        assert_eq!(outcome.segmentation.cuts(), &[12, 24]);
    }

    #[test]
    fn oversized_windows_degrade_to_one_segment() {
        let cube = cube();
        for outcome in [
            FlussSegmenter { window: 40 }.segment(
                &mut context(&cube),
                &all_positions(&cube),
                KSelection::Fixed(3),
            ),
            NnSegmentSegmenter { window: 40 }.segment(
                &mut context(&cube),
                &all_positions(&cube),
                KSelection::Fixed(3),
            ),
        ] {
            let outcome = outcome.unwrap();
            assert_eq!(outcome.segmentation.k(), 1);
        }
    }
}
