use crate::common::select_extrema;
use crate::matrix_profile::matrix_profile_index;

/// The corrected arc curve (CAC) of FLUSS (paper ref. 9): for every split position,
/// the number of nearest-neighbour arcs crossing it, normalized by the
/// idealized parabola `2·i·(n−i)/n` and clamped to `[0, 1]`. Low values
/// mean few subsequences reach across the position — a semantic regime
/// boundary.
pub fn corrected_arc_curve(nn_index: &[usize], w: usize) -> Vec<f64> {
    let n_sub = nn_index.len();
    let mut diff = vec![0i64; n_sub + 1];
    for (i, &j) in nn_index.iter().enumerate() {
        let (a, b) = (i.min(j), i.max(j));
        // The arc (a, b) crosses every position p with a < p < b.
        if b > a + 1 {
            diff[a + 1] += 1;
            diff[b] -= 1;
        }
    }
    let mut cac = vec![1.0; n_sub];
    let mut running = 0i64;
    let nf = n_sub as f64;
    for (p, c) in cac.iter_mut().enumerate().take(n_sub).skip(1) {
        running += diff[p];
        let ideal = 2.0 * p as f64 * (nf - p as f64) / nf;
        if ideal > 0.0 {
            *c = (running as f64 / ideal).min(1.0);
        }
    }
    // FLUSS ignores the edges, where the parabola correction is unstable.
    let edge = (5 * w).min(n_sub / 4);
    for c in cac.iter_mut().take(edge) {
        *c = 1.0;
    }
    for c in cac.iter_mut().rev().take(edge) {
        *c = 1.0;
    }
    cac
}

/// The per-`k` half of FLUSS: extracts the `k − 1` lowest CAC minima with
/// a `5·w` exclusion zone and maps them to interior cut positions
/// (subsequence positions shifted by w/2 to the window centre, over a
/// series of `n` points). Shared by [`fluss`] and the auto-K
/// `FlussSegmenter` adapter, which reuses one CAC across every `k`.
pub(crate) fn fluss_cuts_from_cac(cac: &[f64], k: usize, w: usize, n: usize) -> Vec<usize> {
    if k <= 1 {
        return Vec::new();
    }
    let minima = select_extrema(cac, k - 1, 5 * w, false);
    let mut cuts: Vec<usize> = minima
        .into_iter()
        .map(|i| (i + w / 2).clamp(1, n - 2))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// FLUSS semantic segmentation (paper ref. 9): matrix profile index → corrected arc
/// curve → iterative extraction of the `k − 1` lowest CAC minima with a
/// `5·w` exclusion zone. Returns interior cut positions (subsequence
/// positions shifted by w/2 to the window centre).
pub fn fluss(series: &[f64], k: usize, w: usize) -> Vec<usize> {
    let n = series.len();
    assert!(k >= 1);
    if k == 1 || n < 2 * w + 2 {
        return Vec::new();
    }
    let (_, nn_index) = matrix_profile_index(series, w);
    let cac = corrected_arc_curve(&nn_index, w);
    fluss_cuts_from_cac(&cac, k, w, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fast sine then slow sine — the classic FLUSS regime change.
    fn two_regimes() -> (Vec<f64>, usize) {
        let mut series = Vec::new();
        for t in 0..120 {
            series.push((t as f64 * std::f64::consts::TAU / 8.0).sin());
        }
        for t in 0..120 {
            series.push((t as f64 * std::f64::consts::TAU / 24.0).sin() * 1.5);
        }
        (series, 120)
    }

    #[test]
    fn cac_dips_at_the_regime_boundary() {
        let (series, boundary) = two_regimes();
        let (_, nn) = matrix_profile_index(&series, 12);
        let cac = corrected_arc_curve(&nn, 12);
        let (argmin, min) = cac
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!(*min < 0.4, "CAC minimum {min}");
        assert!(
            argmin.abs_diff(boundary) <= 15,
            "CAC minimum at {argmin}, boundary {boundary}"
        );
    }

    #[test]
    fn fluss_finds_the_boundary() {
        let (series, boundary) = two_regimes();
        let cuts = fluss(&series, 2, 12);
        assert_eq!(cuts.len(), 1);
        assert!(
            cuts[0].abs_diff(boundary) <= 20,
            "cut at {} vs boundary {boundary}",
            cuts[0]
        );
    }

    #[test]
    fn k_one_returns_nothing() {
        let (series, _) = two_regimes();
        assert!(fluss(&series, 1, 12).is_empty());
    }

    #[test]
    fn short_series_degrades_gracefully() {
        let series = vec![1.0; 10];
        assert!(fluss(&series, 3, 8).is_empty());
    }

    #[test]
    fn cuts_are_interior_and_sorted() {
        let (series, _) = two_regimes();
        let cuts = fluss(&series, 4, 10);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        assert!(cuts.iter().all(|&c| c > 0 && c < series.len() - 1));
    }
}
