use crate::common::interpolation_sse;

/// Bottom-Up piecewise-linear segmentation (Keogh et al. (paper ref. 21)).
///
/// Starts from the finest boundary-sharing segmentation (every unit
/// segment on its own) and repeatedly merges the adjacent pair whose
/// merged segment has the lowest linear-interpolation error, until `k`
/// segments remain. Keogh et al. report this as the best offline
/// shape-based segmenter, and the paper finds it the most competitive
/// explanation-agnostic baseline (§7.3).
///
/// Returns the K−1 interior cut positions.
pub fn bottom_up(series: &[f64], k: usize) -> Vec<usize> {
    let n = series.len();
    assert!(n >= 2, "need at least two points");
    let k = k.clamp(1, n - 1);

    // Boundaries of the current segmentation (all points initially).
    let mut bounds: Vec<usize> = (0..n).collect();
    // merge_cost[i] = error of merging segments i and i+1, i.e. the SSE of
    // the would-be segment (bounds[i], bounds[i+2]).
    let mut merge_cost: Vec<f64> = (0..bounds.len() - 2)
        .map(|i| interpolation_sse(series, bounds[i], bounds[i + 2]))
        .collect();

    while bounds.len() - 1 > k {
        let (best, _) = merge_cost
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("at least one merge available");
        // Merging segments `best` and `best+1` removes boundary best+1.
        bounds.remove(best + 1);
        merge_cost.remove(best);
        // Refresh the costs that involve the merged segment.
        if best < merge_cost.len() {
            merge_cost[best] = interpolation_sse(series, bounds[best], bounds[best + 2]);
        }
        if best > 0 {
            merge_cost[best - 1] = interpolation_sse(series, bounds[best - 1], bounds[best + 1]);
        }
    }
    bounds[1..bounds.len() - 1].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_piecewise_linear_knees() {
        // Three exact linear pieces with knees at 4 and 9.
        let mut series = Vec::new();
        for t in 0..=4 {
            series.push(2.0 * t as f64);
        }
        for t in 1..=5 {
            series.push(8.0 - 1.5 * t as f64);
        }
        for t in 1..=5 {
            series.push(0.5 + 3.0 * t as f64);
        }
        let cuts = bottom_up(&series, 3);
        assert_eq!(cuts, vec![4, 9]);
    }

    #[test]
    fn k_one_returns_no_cuts() {
        let series = [1.0, 3.0, 2.0, 5.0];
        assert!(bottom_up(&series, 1).is_empty());
    }

    #[test]
    fn k_max_keeps_every_point() {
        let series = [1.0, 3.0, 2.0, 5.0];
        assert_eq!(bottom_up(&series, 3), vec![1, 2]);
    }

    #[test]
    fn cuts_are_sorted_interior_positions() {
        let series: Vec<f64> = (0..50)
            .map(|t| if t < 25 { t as f64 } else { 50.0 - t as f64 })
            .collect();
        let cuts = bottom_up(&series, 5);
        assert_eq!(cuts.len(), 4);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        assert!(cuts.iter().all(|&c| c > 0 && c < 49));
    }

    #[test]
    fn noisy_step_series_cut_near_step() {
        let series: Vec<f64> = (0..40)
            .map(|t| {
                let base = if t < 20 { 0.0 } else { 100.0 };
                base + (t % 3) as f64 * 0.1
            })
            .collect();
        let cuts = bottom_up(&series, 2);
        assert_eq!(cuts.len(), 1);
        assert!((18..=22).contains(&cuts[0]), "cut at {}", cuts[0]);
    }
}
