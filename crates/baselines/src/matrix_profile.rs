/// The z-normalized matrix profile and matrix profile index of `series`
/// for subsequence length `w`, computed with the textbook
/// running-dot-product scheme (STOMP-style diagonals, O(n²) time):
/// `profile[i]` is the z-normalized Euclidean distance from subsequence
/// `i` to its nearest non-trivial neighbour, and `index[i]` is that
/// neighbour's position.
///
/// A trivial-match exclusion zone of `⌈w/2⌉` around the diagonal is
/// applied, as in the FLUSS paper (paper ref. 9).
pub fn matrix_profile_index(series: &[f64], w: usize) -> (Vec<f64>, Vec<usize>) {
    let n = series.len();
    assert!(w >= 2, "window must have at least 2 points");
    assert!(n >= 2 * w, "series too short for window {w}");
    let n_sub = n - w + 1;
    let exclusion = w.div_ceil(2);

    // Per-subsequence mean and std via prefix sums.
    let mut prefix = vec![0.0; n + 1];
    let mut prefix_sq = vec![0.0; n + 1];
    for (i, &v) in series.iter().enumerate() {
        prefix[i + 1] = prefix[i] + v;
        prefix_sq[i + 1] = prefix_sq[i] + v * v;
    }
    let wf = w as f64;
    let mean = |i: usize| (prefix[i + w] - prefix[i]) / wf;
    let std = |i: usize| {
        let m = mean(i);
        ((prefix_sq[i + w] - prefix_sq[i]) / wf - m * m)
            .max(0.0)
            .sqrt()
    };
    let means: Vec<f64> = (0..n_sub).map(mean).collect();
    let stds: Vec<f64> = (0..n_sub).map(std).collect();

    let mut profile = vec![f64::INFINITY; n_sub];
    let mut index = vec![0usize; n_sub];

    // Walk diagonals: for offset d ≥ exclusion, slide the dot product of
    // (i, i + d) pairs in O(1) per step.
    for d in exclusion..n_sub {
        let mut dot: f64 = (0..w).map(|t| series[t] * series[t + d]).sum();
        for i in 0..n_sub - d {
            let j = i + d;
            if i > 0 {
                dot += series[i + w - 1] * series[j + w - 1] - series[i - 1] * series[j - 1];
            }
            let dist = znorm_dist(dot, means[i], stds[i], means[j], stds[j], wf);
            if dist < profile[i] {
                profile[i] = dist;
                index[i] = j;
            }
            if dist < profile[j] {
                profile[j] = dist;
                index[j] = i;
            }
        }
    }
    (profile, index)
}

/// Z-normalized distance from a running dot product, with the flat-window
/// conventions of `common::znormalized_distance`.
fn znorm_dist(dot: f64, mi: f64, si: f64, mj: f64, sj: f64, w: f64) -> f64 {
    const EPS: f64 = 1e-12;
    match (si <= EPS, sj <= EPS) {
        (true, true) => 0.0,
        (true, false) | (false, true) => (2.0 * w).sqrt(),
        (false, false) => {
            let corr = ((dot - w * mi * mj) / (w * si * sj)).clamp(-1.0, 1.0);
            (2.0 * w * (1.0 - corr)).max(0.0).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::znormalized_distance;

    fn brute_force(series: &[f64], w: usize) -> (Vec<f64>, Vec<usize>) {
        let n_sub = series.len() - w + 1;
        let exclusion = w.div_ceil(2);
        let mut profile = vec![f64::INFINITY; n_sub];
        let mut index = vec![0usize; n_sub];
        for i in 0..n_sub {
            for j in 0..n_sub {
                if i.abs_diff(j) < exclusion {
                    continue;
                }
                let d = znormalized_distance(&series[i..i + w], &series[j..j + w]);
                if d < profile[i] {
                    profile[i] = d;
                    index[i] = j;
                }
            }
        }
        (profile, index)
    }

    #[test]
    fn matches_brute_force_reference() {
        let series: Vec<f64> = (0..60)
            .map(|t| (t as f64 * 0.7).sin() * 3.0 + (t as f64 * 0.13).cos())
            .collect();
        let (fast_p, _) = matrix_profile_index(&series, 8);
        let (slow_p, _) = brute_force(&series, 8);
        for (f, s) in fast_p.iter().zip(&slow_p) {
            assert!((f - s).abs() < 1e-6, "fast {f} vs slow {s}");
        }
    }

    #[test]
    fn periodic_series_has_near_zero_profile() {
        let series: Vec<f64> = (0..100)
            .map(|t| (t as f64 * std::f64::consts::TAU / 10.0).sin())
            .collect();
        let (profile, _) = matrix_profile_index(&series, 10);
        // Every cycle repeats exactly → nearest neighbours are ~identical.
        let max = profile.iter().cloned().fold(0.0f64, f64::max);
        assert!(max < 1e-6, "max profile {max}");
    }

    #[test]
    fn neighbours_stay_within_regimes() {
        // Two regimes: fast sine, then slow sine. Nearest neighbours should
        // overwhelmingly stay on their own side.
        let mut series = Vec::new();
        for t in 0..80 {
            series.push((t as f64 * std::f64::consts::TAU / 8.0).sin());
        }
        for t in 0..80 {
            series.push((t as f64 * std::f64::consts::TAU / 20.0).sin() * 2.0);
        }
        let (_, index) = matrix_profile_index(&series, 12);
        let n_sub = index.len();
        let boundary = 80;
        let mut same_side = 0;
        for (i, &j) in index.iter().enumerate() {
            if (i < boundary) == (j < boundary) {
                same_side += 1;
            }
        }
        assert!(
            same_side as f64 / n_sub as f64 > 0.85,
            "only {same_side}/{n_sub} arcs stay within their regime"
        );
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_tiny_series() {
        matrix_profile_index(&[1.0, 2.0, 3.0], 2);
    }
}
