use crate::common::{select_extrema, znormalized_distance};

/// NNSegment (LimeSegment (paper ref. 42)), approximated as documented in
/// DESIGN.md §4.5: the authors' goal is to "divide a time series into
/// internally consistent subsequences" using nearest-neighbour window
/// statistics. We score every candidate split by the z-normalized
/// Euclidean distance between its two adjacent windows of length `w`,
/// then greedily take the `k − 1` highest-scoring positions with a `w`
/// exclusion zone.
///
/// This preserves what the paper's comparison relies on: a shape-driven,
/// window-parameterized, explanation-agnostic changepoint detector.
pub fn nnsegment(series: &[f64], k: usize, w: usize) -> Vec<usize> {
    let n = series.len();
    assert!(k >= 1);
    assert!(w >= 2, "window must have at least 2 points");
    if k == 1 || n < 2 * w + 1 {
        return Vec::new();
    }
    nnsegment_cuts_from_scores(&nnsegment_scores(series, w), k, w)
}

/// The precompute half of NNSegment: the adjacent-window dissimilarity
/// `score[i]` for every split position `i ∈ [w, n − w]` (other positions
/// are `-inf`). Requires `n ≥ 2w + 1`. Shared by [`nnsegment`] and the
/// auto-K `NnSegmentSegmenter` adapter, which reuses one score vector
/// across every `k`.
pub(crate) fn nnsegment_scores(series: &[f64], w: usize) -> Vec<f64> {
    let n = series.len();
    let mut scores = vec![f64::NEG_INFINITY; n];
    for i in w..=n - w {
        scores[i] = znormalized_distance(&series[i - w..i], &series[i..i + w]);
    }
    scores
}

/// The per-`k` half of NNSegment: greedily takes the `k − 1`
/// highest-scoring interior positions with a `w` exclusion zone.
pub(crate) fn nnsegment_cuts_from_scores(scores: &[f64], k: usize, w: usize) -> Vec<usize> {
    let n = scores.len();
    if k <= 1 {
        return Vec::new();
    }
    let mut cuts = select_extrema(scores, k - 1, w, true);
    cuts.retain(|&c| c > 0 && c < n - 1);
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_shape_change() {
        // Rising then falling ramp: the adjacent windows differ most at
        // the peak.
        let mut series: Vec<f64> = (0..30).map(|t| t as f64).collect();
        series.extend((0..30).map(|t| 30.0 - t as f64));
        let cuts = nnsegment(&series, 2, 8);
        assert_eq!(cuts.len(), 1);
        assert!(
            (26..=34).contains(&cuts[0]),
            "cut at {} should be near 30",
            cuts[0]
        );
    }

    #[test]
    fn respects_exclusion_zone() {
        let mut series: Vec<f64> = (0..20).map(|t| t as f64).collect();
        series.extend((0..20).map(|t| 20.0 - t as f64));
        series.extend((0..20).map(|t| t as f64));
        let cuts = nnsegment(&series, 3, 6);
        assert_eq!(cuts.len(), 2);
        assert!(cuts[1] - cuts[0] >= 6);
    }

    #[test]
    fn k_one_and_short_series() {
        let series = vec![1.0; 50];
        assert!(nnsegment(&series, 1, 10).is_empty());
        assert!(nnsegment(&series[..15], 3, 10).is_empty());
    }

    #[test]
    fn flat_series_yields_some_valid_cuts() {
        // No shape change anywhere: scores are all zero, but the output
        // must still be valid interior positions.
        let series = vec![2.0; 60];
        let cuts = nnsegment(&series, 3, 10);
        assert!(cuts.iter().all(|&c| c > 0 && c < 59));
        assert!(cuts.len() <= 2);
    }
}
