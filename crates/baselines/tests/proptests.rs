//! Property-based tests for the baselines: output validity on arbitrary
//! series and matrix-profile correctness against the naive reference.

use proptest::prelude::*;
use tsexplain_baselines::{
    bottom_up, fluss, matrix_profile_index, nnsegment, znormalized_distance,
};

fn series_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, 30..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three baselines return sorted interior cuts, at most K−1 of
    /// them, for any input series.
    #[test]
    fn baselines_output_valid_cuts(series in series_strategy(), k in 1usize..8) {
        let n = series.len();
        for (name, cuts) in [
            ("bottom_up", bottom_up(&series, k)),
            ("fluss", fluss(&series, k, 8)),
            ("nnsegment", nnsegment(&series, k, 8)),
        ] {
            prop_assert!(cuts.len() <= k.saturating_sub(1), "{name}: {cuts:?}");
            prop_assert!(cuts.windows(2).all(|w| w[0] < w[1]), "{name}: unsorted");
            prop_assert!(cuts.iter().all(|&c| c > 0 && c < n - 1), "{name}: boundary");
        }
    }

    /// Bottom-Up with K = 1 always returns nothing; K ≥ n−1 returns all
    /// interior points.
    #[test]
    fn bottom_up_extremes(series in series_strategy()) {
        let n = series.len();
        prop_assert!(bottom_up(&series, 1).is_empty());
        let all = bottom_up(&series, n - 1);
        prop_assert_eq!(all.len(), n - 2);
    }

    /// The diagonal-walk matrix profile equals the brute-force reference.
    #[test]
    fn matrix_profile_matches_naive(series in proptest::collection::vec(-50.0f64..50.0, 24..60)) {
        let w = 6;
        let (fast, _) = matrix_profile_index(&series, w);
        let n_sub = series.len() - w + 1;
        let exclusion = w.div_ceil(2);
        for i in 0..n_sub {
            let mut best = f64::INFINITY;
            for j in 0..n_sub {
                if i.abs_diff(j) < exclusion {
                    continue;
                }
                best = best.min(znormalized_distance(&series[i..i + w], &series[j..j + w]));
            }
            prop_assert!((fast[i] - best).abs() < 1e-6,
                "subsequence {i}: fast {} vs naive {best}", fast[i]);
        }
    }

    /// Z-normalized distance is a symmetric pseudo-metric, invariant to
    /// affine rescaling with positive slope.
    #[test]
    fn znorm_distance_properties(
        a in proptest::collection::vec(-50.0f64..50.0, 8..16),
        scale in 0.1f64..10.0,
        offset in -100.0f64..100.0,
    ) {
        let b: Vec<f64> = a.iter().map(|x| offset + scale * x).collect();
        prop_assert!(znormalized_distance(&a, &b) < 1e-6);
        let c: Vec<f64> = a.iter().rev().copied().collect();
        let d_ac = znormalized_distance(&a, &c);
        let d_ca = znormalized_distance(&c, &a);
        prop_assert!((d_ac - d_ca).abs() < 1e-9);
        prop_assert!(d_ac >= 0.0);
    }
}
