//! # tsexplain-eval
//!
//! Evaluation machinery for the TSExplain experiments:
//!
//! * [`distance_percent`] — the normalized edit distance between an output
//!   segmentation and the ground truth (paper §7.3, Fig. 10's metric).
//! * [`random_segmentation`] — uniform sampling of K-segmentation schemes
//!   (the 10 000-sample space of the §4.2.2 effectiveness study).
//! * [`ground_truth_rank`] / [`CachedObjective`] — where the ground truth
//!   ranks among sampled schemes under one variance metric (Fig. 6's
//!   per-dataset measurement), with memoized segment costs.
//! * [`rank_ascending`] / [`average_ranks`] — cross-metric ranking used to
//!   aggregate Fig. 6 over datasets and SNR levels.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
mod distance_percent;
mod gt_rank;
mod rank;
mod sampling;

pub use distance_percent::{cut_edit_distance, distance_percent};
pub use gt_rank::{ground_truth_rank, CachedObjective};
pub use rank::{average_ranks, rank_ascending};
pub use sampling::random_segmentation;
