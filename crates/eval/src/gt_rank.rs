use std::collections::{HashMap, HashSet};

use tsexplain_segment::{Segmentation, SegmentationContext};

/// Memoized `Σ |P_i| var(P_i)` objective evaluation.
///
/// The §4.2.2 study scores 10 000 sampled schemes per dataset per metric;
/// distinct segments number only `O(n²)`, so caching per-segment costs
/// turns the study from quadratic-in-samples to linear.
///
/// The caching normally lives in [`SegmentationContext`]'s own
/// segment-cost memo (every repeated segment is a lookup there); this
/// wrapper then only tracks which distinct segments the *study* touched.
/// When the context was built `without_memo()`, the wrapper falls back to
/// a local cost map so the study stays linear regardless of how the
/// context is configured.
pub struct CachedObjective<'c, 'a> {
    ctx: &'c mut SegmentationContext<'a>,
    seen: HashSet<(usize, usize)>,
    /// Local fallback cache, used only when the context's memo is off.
    local: Option<HashMap<(usize, usize), f64>>,
}

impl<'c, 'a> CachedObjective<'c, 'a> {
    /// Wraps a segmentation context with a cost memo.
    pub fn new(ctx: &'c mut SegmentationContext<'a>) -> Self {
        let local = (!ctx.memo_enabled()).then(HashMap::new);
        CachedObjective {
            ctx,
            seen: HashSet::new(),
            local,
        }
    }

    /// The memoized cost of one segment.
    pub fn segment_cost(&mut self, seg: (usize, usize)) -> f64 {
        self.seen.insert(seg);
        match &mut self.local {
            None => self.ctx.segment_cost(seg),
            Some(local) => {
                if let Some(&c) = local.get(&seg) {
                    return c;
                }
                let c = self.ctx.segment_cost(seg);
                local.insert(seg, c);
                c
            }
        }
    }

    /// The memoized objective of a whole scheme.
    pub fn objective(&mut self, scheme: &Segmentation) -> f64 {
        scheme
            .segments()
            .into_iter()
            .map(|seg| self.segment_cost(seg))
            .sum()
    }

    /// Number of distinct segments evaluated so far.
    pub fn distinct_segments(&self) -> usize {
        self.seen.len()
    }
}

/// The *ground truth rank* of §4.2.2: `1 +` the number of sampled schemes
/// whose objective is strictly lower than the ground truth's. Rank 1 means
/// no sampled scheme beats the ground truth — the behaviour a good
/// variance design must show on clean data.
pub fn ground_truth_rank(
    objective: &mut CachedObjective<'_, '_>,
    ground_truth: &Segmentation,
    samples: &[Segmentation],
) -> usize {
    let gt_score = objective.objective(ground_truth);
    let better = samples
        .iter()
        .filter(|s| objective.objective(s) < gt_score - 1e-12)
        .count();
    1 + better
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_cube::{CubeConfig, ExplanationCube};
    use tsexplain_diff::{DiffMetric, TopExplStrategy};
    use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};
    use tsexplain_segment::VarianceMetric;

    /// Two clean phases: x drives points 0..5, y drives 5..10.
    fn cube() -> ExplanationCube {
        let schema = Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("c"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for t in 0..10i64 {
            let x = if t <= 5 { 10.0 * t as f64 } else { 50.0 };
            let y = if t <= 5 {
                3.0
            } else {
                3.0 + 12.0 * (t - 5) as f64
            };
            for (c, v) in [("x", x), ("y", y)] {
                b.push_row(vec![Datum::Attr(t.into()), Datum::from(c), Datum::from(v)])
                    .unwrap();
            }
        }
        ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("t", "v"),
            &CubeConfig::new(["c"]),
        )
        .unwrap()
    }

    #[test]
    fn memo_avoids_recomputation() {
        let cube = cube();
        let mut ctx = SegmentationContext::new(
            &cube,
            DiffMetric::AbsoluteChange,
            3,
            TopExplStrategy::Exact,
            VarianceMetric::Tse,
        );
        let mut obj = CachedObjective::new(&mut ctx);
        let s1 = Segmentation::new(10, vec![5]).unwrap();
        let s2 = Segmentation::new(10, vec![5, 7]).unwrap();
        let a = obj.objective(&s1);
        let b = obj.objective(&s1);
        assert_eq!(a, b);
        let _ = obj.objective(&s2);
        // (0,5) shared between s1 and s2 is computed once.
        assert_eq!(obj.distinct_segments(), 4);
    }

    #[test]
    fn local_cache_keeps_study_linear_when_context_memo_is_off() {
        let cube = cube();
        let mut ctx = SegmentationContext::new(
            &cube,
            DiffMetric::AbsoluteChange,
            3,
            TopExplStrategy::Exact,
            VarianceMetric::Tse,
        )
        .without_memo();
        let mut obj = CachedObjective::new(&mut ctx);
        let s = Segmentation::new(10, vec![5]).unwrap();
        let a = obj.objective(&s);
        let derivations_after_first = obj.ctx.ca_derivations();
        let b = obj.objective(&s);
        assert_eq!(a.to_bits(), b.to_bits());
        // The repeat was served by the wrapper's local cache: no new
        // centroid derivations despite the context memo being disabled.
        assert_eq!(obj.ctx.ca_derivations(), derivations_after_first);
        assert_eq!(obj.distinct_segments(), 2);
    }

    #[test]
    fn ground_truth_ranks_first_on_clean_data() {
        let cube = cube();
        let mut ctx = SegmentationContext::new(
            &cube,
            DiffMetric::AbsoluteChange,
            3,
            TopExplStrategy::Exact,
            VarianceMetric::Tse,
        );
        let mut obj = CachedObjective::new(&mut ctx);
        let gt = Segmentation::new(10, vec![5]).unwrap();
        let samples: Vec<Segmentation> = (1..9)
            .map(|c| Segmentation::new(10, vec![c]).unwrap())
            .collect();
        let rank = ground_truth_rank(&mut obj, &gt, &samples);
        assert_eq!(rank, 1, "true cut must score best");
    }

    #[test]
    fn bad_scheme_ranks_behind_good_samples() {
        let cube = cube();
        let mut ctx = SegmentationContext::new(
            &cube,
            DiffMetric::AbsoluteChange,
            3,
            TopExplStrategy::Exact,
            VarianceMetric::Tse,
        );
        let mut obj = CachedObjective::new(&mut ctx);
        let bad = Segmentation::new(10, vec![1]).unwrap();
        let samples = vec![Segmentation::new(10, vec![5]).unwrap()];
        let rank = ground_truth_rank(&mut obj, &bad, &samples);
        assert_eq!(rank, 2);
    }
}
