use rand::seq::index::sample;
use rand::Rng;
use tsexplain_segment::Segmentation;

/// Draws a uniformly random K-segmentation of an n-point series: K−1
/// distinct interior cut positions out of the n−2 candidates (the
/// `C(n−2, K−1)` scheme space of §5.1, sampled for the §4.2.2 study).
pub fn random_segmentation<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Segmentation {
    assert!(n >= 2, "need at least two points");
    assert!(k >= 1 && k < n, "1 <= K <= n-1");
    let mut cuts: Vec<usize> = sample(rng, n - 2, k - 1)
        .into_iter()
        .map(|i| i + 1)
        .collect();
    cuts.sort_unstable();
    Segmentation::new(n, cuts).expect("sampled cuts are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_valid_schemes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = random_segmentation(&mut rng, 50, 6);
            assert_eq!(s.k(), 6);
            assert_eq!(s.n_points(), 50);
        }
    }

    #[test]
    fn k_one_has_no_cuts() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = random_segmentation(&mut rng, 10, 1);
        assert!(s.cuts().is_empty());
    }

    #[test]
    fn max_k_uses_every_position() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = random_segmentation(&mut rng, 10, 9);
        assert_eq!(s.cuts(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn cut_positions_cover_the_interior() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let s = random_segmentation(&mut rng, 12, 3);
            seen.extend(s.cuts().iter().copied());
        }
        // All interior positions 1..=10 should eventually appear.
        assert_eq!(seen.len(), 10);
    }
}
