/// Ranks `values` ascending (rank 1 = smallest) with *min-rank* tie
/// handling: tied entries share the rank of the first of their group.
///
/// This is the cross-metric ranking of Fig. 6 ("rank across all the eight
/// metrics … based on their own ground truth rank"); min-rank ties are
/// what makes the paper's 50 dB column read "all metrics rank 1st" when
/// every metric certifies the ground truth.
pub fn rank_ascending(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the 1-based rank of the first.
        let min_rank = (i + 1) as f64;
        for &idx in &order[i..=j] {
            ranks[idx] = min_rank;
        }
        i = j + 1;
    }
    ranks
}

/// Per-metric average rank over several datasets: `per_dataset[d][m]` is
/// metric `m`'s rank on dataset `d`; the result is the mean over `d`
/// (Fig. 6's y-axis at one SNR level).
pub fn average_ranks(per_dataset: &[Vec<f64>]) -> Vec<f64> {
    assert!(!per_dataset.is_empty());
    let m = per_dataset[0].len();
    let mut sums = vec![0.0; m];
    for row in per_dataset {
        assert_eq!(row.len(), m, "ragged rank table");
        for (s, r) in sums.iter_mut().zip(row) {
            *s += r;
        }
    }
    sums.iter_mut().for_each(|s| *s /= per_dataset.len() as f64);
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranking() {
        assert_eq!(rank_ascending(&[10.0, 1.0, 5.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ties_share_min_rank() {
        // 1, 1, 3 → ranks 1, 1, 3.
        assert_eq!(rank_ascending(&[1.0, 1.0, 3.0]), vec![1.0, 1.0, 3.0]);
        // All equal → everyone ranks 1st (the paper's 50 dB reading).
        assert_eq!(rank_ascending(&[2.0, 2.0, 2.0]), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn gap_after_tie() {
        assert_eq!(rank_ascending(&[5.0, 5.0, 1.0]), vec![2.0, 2.0, 1.0]);
    }

    #[test]
    fn averages_across_datasets() {
        let table = vec![vec![1.0, 2.0], vec![3.0, 2.0]];
        assert_eq!(average_ranks(&table), vec![2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_table_panics() {
        average_ranks(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
