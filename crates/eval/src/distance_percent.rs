use tsexplain_segment::Segmentation;

/// Edit distance between two sorted cut-position sequences.
///
/// With the oracle K (the paper's Fig. 10 protocol) both sequences have the
/// same length and the distance is the order-aligned sum `Σ |a_i − b_i|`.
/// For robustness against methods that return a different K, unmatched
/// cuts are charged a gap penalty via a monotone alignment DP; the paper's
/// experiments never hit that path.
pub fn cut_edit_distance(a: &[usize], b: &[usize], gap_penalty: usize) -> usize {
    if a.len() == b.len() {
        return a.iter().zip(b).map(|(&x, &y)| x.abs_diff(y)).sum();
    }
    // Needleman–Wunsch-style alignment over the two sorted sequences.
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![vec![usize::MAX / 2; m + 1]; n + 1];
    dp[0][0] = 0;
    for i in 0..=n {
        for j in 0..=m {
            let cur = dp[i][j];
            if i < n && j < m {
                let cost = a[i].abs_diff(b[j]);
                dp[i + 1][j + 1] = dp[i + 1][j + 1].min(cur + cost);
            }
            if i < n {
                dp[i + 1][j] = dp[i + 1][j].min(cur + gap_penalty);
            }
            if j < m {
                dp[i][j + 1] = dp[i][j + 1].min(cur + gap_penalty);
            }
        }
    }
    dp[n][m]
}

/// The paper's `distance percent (%)` (§7.3): the edit distance between the
/// output scheme's cuts and the ground-truth cuts, normalized by both the
/// segment count K and the series length n. Lower is better.
pub fn distance_percent(output: &Segmentation, ground_truth_cuts: &[usize]) -> f64 {
    let n = output.n_points();
    // K = number of segments (cuts + 1).
    let k = ground_truth_cuts.len().max(output.cuts().len()) + 1;
    let dist = cut_edit_distance(output.cuts(), ground_truth_cuts, n / 2);
    100.0 * dist as f64 / (k as f64 * n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_cuts_score_zero() {
        let s = Segmentation::new(100, vec![20, 50, 80]).unwrap();
        assert_eq!(distance_percent(&s, &[20, 50, 80]), 0.0);
    }

    #[test]
    fn equal_length_is_aligned_sum() {
        assert_eq!(cut_edit_distance(&[10, 50], &[12, 47], 100), 5);
    }

    #[test]
    fn distance_scales_with_displacement() {
        let near = Segmentation::new(100, vec![22, 51]).unwrap();
        let far = Segmentation::new(100, vec![40, 70]).unwrap();
        let gt = [20, 50];
        assert!(distance_percent(&near, &gt) < distance_percent(&far, &gt));
    }

    #[test]
    fn normalization_by_k_and_n() {
        // One cut off by 10 on n=100 with K−1 = 1, K = 2: 100·10/(2·100) = 5%.
        let s = Segmentation::new(100, vec![30]).unwrap();
        let dp = distance_percent(&s, &[20]);
        assert!((dp - 5.0).abs() < 1e-12);
    }

    #[test]
    fn unequal_lengths_use_gap_penalty() {
        // One extra cut costs one gap.
        let d = cut_edit_distance(&[20, 50, 80], &[20, 80], 30);
        assert_eq!(d, 30);
        // The alignment picks the cheaper pairing.
        let d = cut_edit_distance(&[20], &[18, 90], 25);
        assert_eq!(d, 2 + 25);
    }

    #[test]
    fn empty_vs_empty() {
        assert_eq!(cut_edit_distance(&[], &[], 10), 0);
        let s = Segmentation::whole(50).unwrap();
        assert_eq!(distance_percent(&s, &[]), 0.0);
    }
}
