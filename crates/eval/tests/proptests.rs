//! Property-based tests for the evaluation machinery.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsexplain_eval::{cut_edit_distance, distance_percent, random_segmentation, rank_ascending};
use tsexplain_segment::Segmentation;

proptest! {
    /// Sampled segmentations are always valid and uniform enough to cover
    /// the requested K.
    #[test]
    fn sampling_validity(seed in 0u64..1000, n in 3usize..60, k_raw in 1usize..10) {
        let k = k_raw.min(n - 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = random_segmentation(&mut rng, n, k);
        prop_assert_eq!(scheme.k(), k);
        prop_assert_eq!(scheme.n_points(), n);
    }

    /// Distance percent is 0 exactly on identical cut sequences and is
    /// symmetric in its aligned part.
    #[test]
    fn distance_percent_zero_iff_identical(
        n in 10usize..100,
        cuts in proptest::collection::btree_set(1usize..98, 0..5),
    ) {
        let cuts: Vec<usize> = cuts.into_iter().filter(|&c| c < n - 1).collect();
        let scheme = Segmentation::new(n, cuts.clone()).unwrap();
        prop_assert_eq!(distance_percent(&scheme, &cuts), 0.0);
        if let Some(&first) = cuts.first() {
            if first + 1 < n - 1 && !cuts.contains(&(first + 1)) {
                let mut moved = cuts.clone();
                moved[0] = first + 1;
                moved.sort_unstable();
                let shifted = Segmentation::new(n, moved).unwrap();
                prop_assert!(distance_percent(&shifted, &cuts) > 0.0);
            }
        }
    }

    /// Equal-length edit distance is a metric on aligned sequences.
    #[test]
    fn edit_distance_metric_properties(
        a in proptest::collection::btree_set(1usize..200, 1..6),
        b in proptest::collection::btree_set(1usize..200, 1..6),
    ) {
        let a: Vec<usize> = a.into_iter().collect();
        let b: Vec<usize> = b.into_iter().collect();
        prop_assert_eq!(cut_edit_distance(&a, &a, 100), 0);
        prop_assert_eq!(
            cut_edit_distance(&a, &b, 100),
            cut_edit_distance(&b, &a, 100)
        );
    }

    /// rank_ascending is a proper min-rank ranking: ranks live in
    /// `1..=n`, the minimum value ranks 1, and order agrees with the
    /// input order.
    #[test]
    fn ranks_are_consistent(values in proptest::collection::vec(0.0f64..100.0, 1..12)) {
        let ranks = rank_ascending(&values);
        let n = values.len() as f64;
        prop_assert!(ranks.iter().all(|&r| (1.0..=n).contains(&r)));
        prop_assert!(ranks.contains(&1.0));
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    prop_assert!(ranks[i] < ranks[j]);
                }
                if values[i] == values[j] {
                    prop_assert!((ranks[i] - ranks[j]).abs() < 1e-12);
                }
            }
        }
    }
}
