//! Property-based tests for the diff layer: Cascading Analysts optimality
//! against a brute-force oracle, guess-and-verify exactness, and score
//! invariants.

use proptest::prelude::*;
use tsexplain_cube::{CubeConfig, ExplId, ExplanationCube};
use tsexplain_diff::{CascadingAnalysts, DiffMetric, Effect, GuessVerify, ScoreContext};
use tsexplain_relation::{AggFn, AggQuery, Datum, Field, MeasureExpr, Relation, Schema};

/// Small two-attribute instances keep the brute-force subset oracle cheap.
fn rows_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8, f64)>> {
    proptest::collection::vec((0u8..3, 0u8..3, 0u8..2, 0.1f64..50.0), 6..40)
}

fn build_cube(rows: &[(u8, u8, u8, f64)]) -> ExplanationCube {
    let schema = Schema::new(vec![
        Field::dimension("t"),
        Field::dimension("a"),
        Field::dimension("b"),
        Field::measure("v"),
    ])
    .unwrap();
    let mut builder = Relation::builder(schema);
    for &(t, a, b, v) in rows {
        builder
            .push_row(vec![
                Datum::Attr((t as i64).into()),
                Datum::Attr((a as i64).into()),
                Datum::Attr((b as i64).into()),
                Datum::from(v),
            ])
            .unwrap();
    }
    ExplanationCube::build(
        &builder.finish(),
        &AggQuery::sum("t", "v"),
        &CubeConfig::new(["a", "b"]).without_redundancy_pruning(),
    )
    .unwrap()
}

/// Builds the same relation as [`build_cube`] but under an arbitrary
/// aggregate function — the bit-parity sweep covers every `AggFn`.
fn build_cube_with_agg(rows: &[(u8, u8, u8, f64)], agg: AggFn) -> ExplanationCube {
    let schema = Schema::new(vec![
        Field::dimension("t"),
        Field::dimension("a"),
        Field::dimension("b"),
        Field::measure("v"),
    ])
    .unwrap();
    let mut builder = Relation::builder(schema);
    for &(t, a, b, v) in rows {
        builder
            .push_row(vec![
                Datum::Attr((t as i64).into()),
                Datum::Attr((a as i64).into()),
                Datum::Attr((b as i64).into()),
                Datum::from(v),
            ])
            .unwrap();
    }
    ExplanationCube::build(
        &builder.finish(),
        &AggQuery::new("t", agg, MeasureExpr::column("v")),
        &CubeConfig::new(["a", "b"]).without_redundancy_pruning(),
    )
    .unwrap()
}

/// Best total γ over every non-overlapping subset of ≤ m candidates.
fn brute_force(cube: &ExplanationCube, seg: (usize, usize), m: usize) -> f64 {
    let ctx = ScoreContext::new(cube, DiffMetric::AbsoluteChange);
    let n = cube.n_candidates();
    assert!(n <= 20, "oracle too slow for {n}");
    let mut best = 0.0f64;
    for mask in 0u32..(1 << n) {
        if (mask.count_ones() as usize) > m {
            continue;
        }
        let chosen: Vec<ExplId> = (0..n as ExplId).filter(|&e| mask & (1 << e) != 0).collect();
        let ok = chosen.iter().enumerate().all(|(i, &a)| {
            chosen[i + 1..]
                .iter()
                .all(|&b| !cube.explanation(a).overlaps(cube.explanation(b)))
        });
        if ok {
            let score: f64 = chosen.iter().map(|&e| ctx.gamma(e, seg)).sum();
            best = best.max(score);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CA finds the optimal non-overlapping set whenever the candidate
    /// space is small enough to enumerate.
    #[test]
    fn cascading_matches_brute_force(rows in rows_strategy(), m in 1usize..4) {
        let cube = build_cube(&rows);
        if cube.n_points() < 2 || cube.n_candidates() > 20 {
            return Ok(());
        }
        let seg = (0, cube.n_points() - 1);
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, m);
        let (top, best) = ca.top_m_with_best(seg);
        let oracle = brute_force(&cube, seg, m);
        prop_assert!((top.total_score() - oracle).abs() < 1e-6,
            "m={m}: CA {} vs oracle {oracle}", top.total_score());
        prop_assert!((best[m] - oracle).abs() < 1e-6);
        // Selected explanations are pairwise non-overlapping.
        for (i, x) in top.items().iter().enumerate() {
            for y in &top.items()[i + 1..] {
                prop_assert!(!cube.explanation(x.id).overlaps(cube.explanation(y.id)));
            }
        }
    }

    /// Guess-and-verify returns the same optimum as exact CA for any
    /// initial guess.
    #[test]
    fn guess_verify_is_exact(rows in rows_strategy(), m in 1usize..4, initial in 1usize..8) {
        let cube = build_cube(&rows);
        if cube.n_points() < 2 {
            return Ok(());
        }
        let seg = (0, cube.n_points() - 1);
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, m);
        let exact = ca.top_m(seg).total_score();
        let mut gv = GuessVerify::new(&cube, initial);
        let (approx, _) = gv.top_m(&mut ca, seg);
        prop_assert!((approx.total_score() - exact).abs() < 1e-6,
            "gv {} vs exact {exact}", approx.total_score());
    }

    /// γ is non-negative under every metric, and effect matches the
    /// contribution sign.
    #[test]
    fn score_invariants(rows in rows_strategy()) {
        let cube = build_cube(&rows);
        if cube.n_points() < 2 {
            return Ok(());
        }
        for metric in DiffMetric::ALL {
            let ctx = ScoreContext::new(&cube, metric);
            for e in 0..cube.n_candidates() as ExplId {
                for a in 0..cube.n_points() - 1 {
                    let seg = (a, cube.n_points() - 1);
                    let gamma = ctx.gamma(e, seg);
                    prop_assert!(gamma >= 0.0 && gamma.is_finite());
                    let contribution = ctx.contribution(e, seg);
                    prop_assert_eq!(ctx.effect(e, seg), Effect::of(contribution));
                }
            }
        }
    }

    /// The columnar batched scorer is bit-for-bit identical to the scalar
    /// scorer across every difference metric × aggregate function ×
    /// random segment — the contract that lets every hot loop switch to
    /// `gamma_all` without moving a single golden byte. Also pins the
    /// masked variant: masked-out entries are exactly 0.0 and masked-in
    /// entries match the unmasked scan.
    #[test]
    fn batched_gamma_matches_scalar_bitwise(
        rows in rows_strategy(),
        agg_idx in 0usize..4,
        lo in 0usize..8,
        span in 1usize..8,
    ) {
        let cube = build_cube_with_agg(&rows, AggFn::ALL[agg_idx]);
        let n = cube.n_points();
        if n < 2 {
            return Ok(());
        }
        let a = lo % (n - 1);
        let b = (a + 1 + span % (n - 1 - a).max(1)).min(n - 1);
        let seg = (a, b);
        let n_cand = cube.n_candidates();
        // A nontrivial mask: every third candidate blocked.
        let mask: Vec<bool> = (0..n_cand).map(|e| e % 3 != 2).collect();
        for metric in DiffMetric::ALL {
            let ctx = ScoreContext::new(&cube, metric);
            let mut batched = vec![f64::NAN; n_cand];
            ctx.gamma_all(seg, &mut batched);
            for e in 0..n_cand as ExplId {
                let scalar = ctx.gamma(e, seg);
                prop_assert_eq!(
                    batched[e as usize].to_bits(),
                    scalar.to_bits(),
                    "{} / {:?} seg {:?} candidate {}: batched {} vs scalar {}",
                    metric, AggFn::ALL[agg_idx], seg, e, batched[e as usize], scalar
                );
            }
            let mut masked = vec![f64::NAN; n_cand];
            ctx.gamma_all_masked(seg, Some(&mask), &mut masked);
            for e in 0..n_cand {
                let expected = if mask[e] { batched[e] } else { 0.0 };
                prop_assert_eq!(masked[e].to_bits(), expected.to_bits());
            }
        }
    }

    /// For SUM, signed order-1 contributions along one attribute add up to
    /// the segment's total delta.
    #[test]
    fn contributions_partition_delta(rows in rows_strategy()) {
        let cube = build_cube(&rows);
        if cube.n_points() < 2 {
            return Ok(());
        }
        let seg = (0, cube.n_points() - 1);
        let ctx = ScoreContext::new(&cube, DiffMetric::AbsoluteChange);
        let delta = cube.total_value(seg.1) - cube.total_value(seg.0);
        for attr in 0..2u16 {
            let sum: f64 = (0..cube.n_candidates() as ExplId)
                .filter(|&e| {
                    let x = cube.explanation(e);
                    x.order() == 1 && x.constrains(attr)
                })
                .map(|e| ctx.contribution(e, seg))
                .sum();
            prop_assert!((sum - delta).abs() < 1e-6, "attr {attr}: {sum} vs {delta}");
        }
    }
}
