use std::fmt;

/// The difference-metric abstraction γ(E) of the diff operator
/// (paper ref. 1; §3.1.1).
///
/// All metrics are derived from the *contribution* of an explanation over a
/// segment — the amount by which including the slice's records changes the
/// endpoint-to-endpoint delta:
///
/// ```text
/// contribution(E) = [f(M,R_t) − f(M,R_c)] − [f(M,R_t − σ_E R_t) − f(M,R_c − σ_E R_c)]
/// ```
///
/// The paper's experiments all use [`DiffMetric::AbsoluteChange`]; the
/// other two are the "extended difference metric library" its conclusion
/// lists as future work, with semantics following the DIFF/MacroBase
/// lineage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiffMetric {
    /// `γ(E) = |contribution(E)|` (Definition 3.2).
    AbsoluteChange,
    /// Contribution normalized by the magnitude of the slice's control-side
    /// aggregate: `γ(E) = |contribution(E)| / max(|f(M, σ_E R_c)|, 1)`.
    /// Emphasizes slices that changed a lot *relative to their own size*.
    RelativeChange,
    /// Log risk ratio of the slice's share of the total at the two
    /// endpoints: `γ(E) = |ln(share_t / share_c)|` with shares clamped to a
    /// small positive floor. Emphasizes slices whose *relative weight* in
    /// the KPI shifted.
    RiskRatio,
}

impl DiffMetric {
    /// All supported metrics.
    pub const ALL: [DiffMetric; 3] = [
        DiffMetric::AbsoluteChange,
        DiffMetric::RelativeChange,
        DiffMetric::RiskRatio,
    ];
}

impl fmt::Display for DiffMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiffMetric::AbsoluteChange => "absolute-change",
            DiffMetric::RelativeChange => "relative-change",
            DiffMetric::RiskRatio => "risk-ratio",
        };
        write!(f, "{s}")
    }
}

/// The change effect τ(E) (Definition 3.3): the sign of the contribution.
///
/// `Plus` means including the slice's records makes the KPI delta larger
/// (the slice pushed the KPI *up* over the segment); `Minus` the opposite.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Effect {
    /// Positive contribution (`+` in the paper's tables).
    Plus,
    /// Negative contribution (`-` in the paper's tables).
    Minus,
    /// Exactly zero contribution.
    Zero,
}

impl Effect {
    /// Classifies a contribution value.
    pub fn of(contribution: f64) -> Effect {
        if contribution > 0.0 {
            Effect::Plus
        } else if contribution < 0.0 {
            Effect::Minus
        } else {
            Effect::Zero
        }
    }
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Effect::Plus => "+",
            Effect::Minus => "-",
            Effect::Zero => "0",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effect_classification() {
        assert_eq!(Effect::of(3.0), Effect::Plus);
        assert_eq!(Effect::of(-0.5), Effect::Minus);
        assert_eq!(Effect::of(0.0), Effect::Zero);
    }

    #[test]
    fn displays() {
        assert_eq!(Effect::Plus.to_string(), "+");
        assert_eq!(Effect::Minus.to_string(), "-");
        assert_eq!(DiffMetric::AbsoluteChange.to_string(), "absolute-change");
    }
}
