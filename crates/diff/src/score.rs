use tsexplain_cube::{ExplId, ExplanationCube};
use tsexplain_relation::AggFn;

use crate::metric::{DiffMetric, Effect};

/// Minimum share used when computing risk ratios, to keep logs finite.
const SHARE_FLOOR: f64 = 1e-9;

/// Evaluates difference scores γ(E) and change effects τ(E) for
/// explanations over segments of the cube's time series.
///
/// A segment is a pair of point indices `(a, b)` with `a < b`; its control
/// relation is the data at `t_a` and its test relation the data at `t_b`
/// (paper §3.2, "Explain trend in each segment"). Thanks to the cube's
/// decomposable states, each evaluation is O(1) — this is exactly the O(1)
/// per-(E, segment) cost the complexity analysis of §5.2 assumes.
#[derive(Clone, Copy, Debug)]
pub struct ScoreContext<'a> {
    cube: &'a ExplanationCube,
    metric: DiffMetric,
}

impl<'a> ScoreContext<'a> {
    /// Builds a scoring context over `cube` using `metric`.
    pub fn new(cube: &'a ExplanationCube, metric: DiffMetric) -> Self {
        ScoreContext { cube, metric }
    }

    /// The underlying cube.
    pub fn cube(&self) -> &'a ExplanationCube {
        self.cube
    }

    /// The metric in use.
    pub fn metric(&self) -> DiffMetric {
        self.metric
    }

    /// The signed contribution of `e` to the segment's delta:
    /// `[f(R_t) − f(R_c)] − [f(R_t − σ_E R_t) − f(R_c − σ_E R_c)]`.
    pub fn contribution(&self, e: ExplId, seg: (usize, usize)) -> f64 {
        let (a, b) = seg;
        debug_assert!(a < b, "segment endpoints must be ordered");
        let agg = self.cube.agg();
        let total_t = self.cube.total_state(b);
        let total_c = self.cube.total_state(a);
        let slice_t = self.cube.state(e, b);
        let slice_c = self.cube.state(e, a);
        let delta_with = total_t.value(agg) - total_c.value(agg);
        let delta_without = total_t.remove(slice_t).value(agg) - total_c.remove(slice_c).value(agg);
        delta_with - delta_without
    }

    /// The difference score γ(E) over the segment, under the context's
    /// metric. Always ≥ 0.
    pub fn gamma(&self, e: ExplId, seg: (usize, usize)) -> f64 {
        let contribution = self.contribution(e, seg);
        match self.metric {
            DiffMetric::AbsoluteChange => contribution.abs(),
            DiffMetric::RelativeChange => {
                let agg = self.cube.agg();
                let base = self.cube.state(e, seg.0).value(agg).abs().max(1.0);
                contribution.abs() / base
            }
            DiffMetric::RiskRatio => {
                let agg = self.cube.agg();
                let (a, b) = seg;
                let share = |t: usize| -> f64 {
                    let total = self.cube.total_state(t).value(agg).abs();
                    if total <= 0.0 {
                        return SHARE_FLOOR;
                    }
                    (self.cube.state(e, t).value(agg).abs() / total).max(SHARE_FLOOR)
                };
                (share(b) / share(a)).ln().abs()
            }
        }
    }

    /// The change effect τ(E) over the segment (Definition 3.3).
    pub fn effect(&self, e: ExplId, seg: (usize, usize)) -> Effect {
        Effect::of(self.contribution(e, seg))
    }

    /// Batched γ: writes `gamma(e, seg)` for **every** candidate into
    /// `out` (which must hold `n_candidates` slots). See
    /// [`ScoreContext::gamma_all_masked`] for the contract.
    pub fn gamma_all(&self, seg: (usize, usize), out: &mut [f64]) {
        self.gamma_all_masked(seg, None, out);
    }

    /// Batched γ over the cube's columnar storage: `out[e]` is set to
    /// `gamma(e, seg)` for every candidate with `mask[e]` (every candidate
    /// when `mask` is `None`) and to `0.0` otherwise.
    ///
    /// **Bit-for-bit contract:** each written score is produced by the
    /// same arithmetic, in the same order, as the scalar
    /// [`ScoreContext::gamma`] — the only difference is that the
    /// metric/aggregate dispatch is hoisted out of the loop and the
    /// per-candidate values come from the cube's pre-decoded time-major
    /// rows ([`tsexplain_cube::ValueMatrix`]) instead of per-access
    /// `AggState::value` calls. AVG and VARIANCE contributions need full
    /// state arithmetic (`remove` must see counts), so those paths walk
    /// the states with the dispatch hoisted; SUM/COUNT contributions and
    /// all share-based scores run on the contiguous rows.
    pub fn gamma_all_masked(&self, seg: (usize, usize), mask: Option<&[bool]>, out: &mut [f64]) {
        let (a, b) = seg;
        debug_assert!(a < b, "segment endpoints must be ordered");
        let cube = self.cube;
        let n = cube.n_candidates();
        debug_assert_eq!(out.len(), n, "output buffer must cover all candidates");
        debug_assert!(mask.is_none_or(|m| m.len() == n));
        let agg = cube.agg();
        let row_a = cube.values().row(a);
        let row_b = cube.values().row(b);
        let keep = |e: usize| mask.is_none_or(|m| m[e]);

        match self.metric {
            DiffMetric::AbsoluteChange | DiffMetric::RelativeChange => {
                let relative = self.metric == DiffMetric::RelativeChange;
                match agg {
                    // SUM/COUNT decode to the state's own field, so the
                    // complement value `(total − slice).value(agg)` is
                    // exactly `total_value − slice_value`: the whole
                    // contribution runs on the two rows.
                    AggFn::Sum | AggFn::Count => {
                        let total_a = cube.total_value(a);
                        let total_b = cube.total_value(b);
                        let delta_with = total_b - total_a;
                        for e in 0..n {
                            if !keep(e) {
                                out[e] = 0.0;
                                continue;
                            }
                            let delta_without = (total_b - row_b[e]) - (total_a - row_a[e]);
                            let contribution = delta_with - delta_without;
                            out[e] = if relative {
                                contribution.abs() / row_a[e].abs().max(1.0)
                            } else {
                                contribution.abs()
                            };
                        }
                    }
                    // AVG/VARIANCE complements are not value-derivable;
                    // keep the state arithmetic, hoisting the dispatch.
                    AggFn::Avg | AggFn::Variance => {
                        let total_a = cube.total_state(a);
                        let total_b = cube.total_state(b);
                        let delta_with = total_b.value(agg) - total_a.value(agg);
                        for e in 0..n {
                            if !keep(e) {
                                out[e] = 0.0;
                                continue;
                            }
                            let id = e as ExplId;
                            let delta_without = total_b.remove(cube.state(id, b)).value(agg)
                                - total_a.remove(cube.state(id, a)).value(agg);
                            let contribution = delta_with - delta_without;
                            out[e] = if relative {
                                contribution.abs() / row_a[e].abs().max(1.0)
                            } else {
                                contribution.abs()
                            };
                        }
                    }
                }
            }
            // Shares only need decoded values — row-based for every agg.
            DiffMetric::RiskRatio => {
                let total_a = cube.total_value(a).abs();
                let total_b = cube.total_value(b).abs();
                for e in 0..n {
                    if !keep(e) {
                        out[e] = 0.0;
                        continue;
                    }
                    let share_a = if total_a <= 0.0 {
                        SHARE_FLOOR
                    } else {
                        (row_a[e].abs() / total_a).max(SHARE_FLOOR)
                    };
                    let share_b = if total_b <= 0.0 {
                        SHARE_FLOOR
                    } else {
                        (row_b[e].abs() / total_b).max(SHARE_FLOOR)
                    };
                    out[e] = (share_b / share_a).ln().abs();
                }
            }
        }
    }

    /// `(γ, τ)` in one evaluation.
    pub fn gamma_effect(&self, e: ExplId, seg: (usize, usize)) -> (f64, Effect) {
        let contribution = self.contribution(e, seg);
        let gamma = match self.metric {
            DiffMetric::AbsoluteChange => contribution.abs(),
            _ => self.gamma(e, seg),
        };
        (gamma, Effect::of(contribution))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_cube::CubeConfig;
    use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

    /// Two states over three days; SUM(cases).
    ///   NY: 10, 20, 20  (rises then flat)
    ///   CA:  5,  5, 30  (flat then rises)
    fn cube() -> ExplanationCube {
        let schema = Schema::new(vec![
            Field::dimension("date"),
            Field::dimension("state"),
            Field::measure("cases"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        let rows = [
            ("d1", "NY", 10.0),
            ("d2", "NY", 20.0),
            ("d3", "NY", 20.0),
            ("d1", "CA", 5.0),
            ("d2", "CA", 5.0),
            ("d3", "CA", 30.0),
        ];
        for (d, s, v) in rows {
            b.push_row(vec![Datum::from(d), Datum::from(s), Datum::from(v)])
                .unwrap();
        }
        ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("date", "cases"),
            &CubeConfig::new(["state"]),
        )
        .unwrap()
    }

    fn id_of(cube: &ExplanationCube, label: &str) -> ExplId {
        (0..cube.n_candidates() as ExplId)
            .find(|&e| cube.label(e) == label)
            .unwrap()
    }

    #[test]
    fn absolute_change_reduces_to_endpoint_delta_for_sum() {
        let cube = cube();
        let ctx = ScoreContext::new(&cube, DiffMetric::AbsoluteChange);
        let ny = id_of(&cube, "state=NY");
        let ca = id_of(&cube, "state=CA");
        // Over (d1, d2): NY contributes +10, CA contributes 0.
        assert_eq!(ctx.gamma(ny, (0, 1)), 10.0);
        assert_eq!(ctx.gamma(ca, (0, 1)), 0.0);
        // Over (d2, d3): CA contributes +25.
        assert_eq!(ctx.gamma(ca, (1, 2)), 25.0);
        assert_eq!(ctx.gamma(ny, (1, 2)), 0.0);
    }

    #[test]
    fn effects_follow_contribution_sign() {
        let cube = cube();
        let ctx = ScoreContext::new(&cube, DiffMetric::AbsoluteChange);
        let ny = id_of(&cube, "state=NY");
        let ca = id_of(&cube, "state=CA");
        assert_eq!(ctx.effect(ny, (0, 1)), Effect::Plus);
        assert_eq!(ctx.effect(ca, (0, 1)), Effect::Zero);
        assert_eq!(ctx.effect(ca, (1, 2)), Effect::Plus);
    }

    #[test]
    fn gamma_is_nonnegative_for_declines() {
        // Build a declining slice: reverse the NY series by using (d2, d1)…
        // segments must be ordered, so instead test a decline via CA over a
        // cube where values drop.
        let schema = Schema::new(vec![
            Field::dimension("date"),
            Field::dimension("state"),
            Field::measure("cases"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for (d, s, v) in [("d1", "NY", 30.0), ("d2", "NY", 10.0)] {
            b.push_row(vec![Datum::from(d), Datum::from(s), Datum::from(v)])
                .unwrap();
        }
        let cube = ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("date", "cases"),
            &CubeConfig::new(["state"]),
        )
        .unwrap();
        let ctx = ScoreContext::new(&cube, DiffMetric::AbsoluteChange);
        assert_eq!(ctx.gamma(0, (0, 1)), 20.0);
        assert_eq!(ctx.effect(0, (0, 1)), Effect::Minus);
    }

    #[test]
    fn relative_change_normalizes_by_control_magnitude() {
        let cube = cube();
        let ctx = ScoreContext::new(&cube, DiffMetric::RelativeChange);
        let ny = id_of(&cube, "state=NY");
        // contribution 10 over control magnitude 10 → 1.0
        assert!((ctx.gamma(ny, (0, 1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn risk_ratio_detects_share_shift() {
        let cube = cube();
        let ctx = ScoreContext::new(&cube, DiffMetric::RiskRatio);
        let ca = id_of(&cube, "state=CA");
        // CA's share moves from 5/15 to 30/50 over (d1, d3): rr = 1.8.
        let expected = (0.6f64 / (1.0 / 3.0)).ln().abs();
        assert!((ctx.gamma(ca, (0, 2)) - expected).abs() < 1e-12);
    }

    #[test]
    fn gamma_effect_consistent_with_parts() {
        let cube = cube();
        let ctx = ScoreContext::new(&cube, DiffMetric::AbsoluteChange);
        for e in 0..cube.n_candidates() as ExplId {
            for seg in [(0usize, 1usize), (1, 2), (0, 2)] {
                let (g, eff) = ctx.gamma_effect(e, seg);
                assert_eq!(g, ctx.gamma(e, seg));
                assert_eq!(eff, ctx.effect(e, seg));
            }
        }
    }
}
