use tsexplain_cube::{DrillTrie, ExplId, ExplanationCube, NodeId, ROOT_NODE};

use crate::metric::DiffMetric;
use crate::score::ScoreContext;
use crate::top::{RankedExplanation, TopExplanations};

/// Relative tolerance for matching DP values during reconstruction.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// The Cascading Analysts algorithm (paper ref.\ 38; §5.2, Fig. 8).
///
/// The algorithm simulates an analyst's recursive drill-down: at every node
/// of the drill-down trie it either *takes* the node's data slice as an
/// explanation or picks **one** dimension to drill into and distributes its
/// explanation quota among that dimension's children. Because a node and
/// its descendants are never taken together, and siblings along one
/// dimension are disjoint slices, the selected explanations are
/// non-overlapping by construction (Definition 3.4).
///
/// Both the dimension choice and the quota assignment are dynamic programs:
/// `best[v][q]` is the maximum total γ obtainable with at most `q`
/// explanations inside `v`'s subtree, and children are combined with a
/// grouped-knapsack pass, giving the paper's `O(ε · |A| · m²)` per-segment
/// bound. `Best[q]` at the root for every `q ≤ m` falls out as a side
/// product — which is what the guess-and-verify bound (Eq. 12) consumes.
///
/// The struct owns its DP buffers so repeated segment queries allocate
/// nothing.
pub struct CascadingAnalysts<'a> {
    ctx: ScoreContext<'a>,
    m: usize,
    /// All nodes whose subtree contains a selectable explanation, ordered
    /// children-before-parents (descending explanation order).
    full_order: Vec<ExplId>,
    /// `(ε + 1) × (m + 1)` DP table; slot ε is the root.
    best: Vec<f64>,
    /// Grouped-knapsack scratch row.
    dp: Vec<f64>,
    /// Per-segment γ scores over all candidates, filled once per `run` by
    /// the batched scorer (entries outside the active selectable set are
    /// 0.0 and never read as take-scores).
    gammas: Vec<f64>,
}

impl<'a> CascadingAnalysts<'a> {
    /// Builds the solver for `cube` under `metric`, extracting lists of at
    /// most `m` explanations.
    pub fn new(cube: &'a ExplanationCube, metric: DiffMetric, m: usize) -> Self {
        assert!(m >= 1, "top-m requires m >= 1");
        let mut full_order: Vec<ExplId> = (0..cube.n_candidates() as ExplId)
            .filter(|&e| cube.subtree_selectable(e))
            .collect();
        full_order.sort_by_key(|&e| std::cmp::Reverse(cube.explanation(e).order()));
        let n = cube.n_candidates();
        CascadingAnalysts {
            ctx: ScoreContext::new(cube, metric),
            m,
            full_order,
            best: vec![0.0; (n + 1) * (m + 1)],
            dp: vec![0.0; m + 1],
            gammas: vec![0.0; n],
        }
    }

    /// The cube being explained.
    pub fn cube(&self) -> &'a ExplanationCube {
        self.ctx.cube()
    }

    /// The difference metric in use.
    pub fn metric(&self) -> DiffMetric {
        self.ctx.metric()
    }

    /// The list-size bound m.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The scoring context (γ/τ evaluation).
    pub fn score_context(&self) -> ScoreContext<'a> {
        self.ctx
    }

    /// Exact top-m non-overlapping explanations for segment `(a, b)`.
    pub fn top_m(&mut self, seg: (usize, usize)) -> TopExplanations {
        self.top_m_with_best(seg).0
    }

    /// Exact top-m plus the `Best[0..=m]` root scores.
    pub fn top_m_with_best(&mut self, seg: (usize, usize)) -> (TopExplanations, Vec<f64>) {
        let cube = self.ctx.cube();
        // One linear, masked scan over the columnar rows replaces the
        // per-node γ evaluations of the DP (bit-identical by the batched
        // scorer's contract).
        self.ctx
            .gamma_all_masked(seg, Some(cube.selectable_mask()), &mut self.gammas);
        let order = std::mem::take(&mut self.full_order);
        let out = self.run(
            seg,
            &order,
            |e| cube.subtree_selectable(e),
            |e| cube.is_selectable(e),
        );
        self.full_order = order;
        out
    }

    /// Top-m over a restricted candidate set (guess-and-verify, §5.3.1).
    ///
    /// `order` must list every structurally included node children-first
    /// (descending explanation order); `structural[e]` marks inclusion
    /// (selected candidates *and* their ancestors); `allowed[e]` marks the
    /// candidates that may actually be taken as explanations; `gammas`
    /// holds γ for at least every allowed candidate (the caller's batched
    /// scores — reused here so a guess round never rescores candidates).
    pub(crate) fn top_m_restricted(
        &mut self,
        seg: (usize, usize),
        order: &[ExplId],
        structural: &[bool],
        allowed: &[bool],
        gammas: &[f64],
    ) -> (TopExplanations, Vec<f64>) {
        self.gammas.copy_from_slice(gammas);
        self.run(
            seg,
            order,
            |e| structural[e as usize],
            |e| allowed[e as usize],
        )
    }

    fn slot(&self, node: NodeId) -> usize {
        if node == ROOT_NODE {
            self.ctx.cube().n_candidates()
        } else {
            node as usize
        }
    }

    fn run<FI, FS>(
        &mut self,
        seg: (usize, usize),
        order: &[ExplId],
        include: FI,
        selectable: FS,
    ) -> (TopExplanations, Vec<f64>)
    where
        FI: Fn(ExplId) -> bool,
        FS: Fn(ExplId) -> bool,
    {
        let trie = self.ctx.cube().trie();
        for &v in order {
            self.solve_node(v, trie, &include, &selectable);
        }
        self.solve_node_groups(ROOT_NODE, trie, &include, false);

        let stride = self.m + 1;
        let root = self.slot(ROOT_NODE);
        let best_root: Vec<f64> = self.best[root * stride..root * stride + stride].to_vec();

        let mut selected: Vec<ExplId> = Vec::with_capacity(self.m);
        self.reconstruct(
            ROOT_NODE,
            self.m,
            trie,
            &include,
            &selectable,
            &mut selected,
        );

        let items = selected
            .into_iter()
            .map(|id| RankedExplanation {
                id,
                gamma: self.gammas[id as usize],
                effect: self.ctx.effect(id, seg),
            })
            .collect();
        (TopExplanations::new(items), best_root)
    }

    /// Fills `best[v][*]` for a concrete explanation node.
    fn solve_node<FI, FS>(&mut self, v: ExplId, trie: &DrillTrie, include: &FI, selectable: &FS)
    where
        FI: Fn(ExplId) -> bool,
        FS: Fn(ExplId) -> bool,
    {
        // The batched per-segment scores were filled before the DP walk;
        // `selectable` still gates the take (a restricted run's buffer may
        // score candidates outside its allowed set).
        let take_self = if selectable(v) {
            self.gammas[v as usize]
        } else {
            0.0
        };
        let stride = self.m + 1;
        let base = self.slot(v) * stride;
        self.best[base] = 0.0;
        for q in 1..=self.m {
            self.best[base + q] = take_self;
        }
        self.solve_node_groups(v, trie, include, true);
    }

    /// Max-in the best drill-down dimension's knapsack at `node`.
    ///
    /// When `keep_existing` is false the node's row is reset first (used
    /// for the root, which cannot take itself).
    fn solve_node_groups<FI>(
        &mut self,
        node: NodeId,
        trie: &DrillTrie,
        include: &FI,
        keep_existing: bool,
    ) where
        FI: Fn(ExplId) -> bool,
    {
        let stride = self.m + 1;
        let base = self.slot(node) * stride;
        if !keep_existing {
            for q in 0..=self.m {
                self.best[base + q] = 0.0;
            }
        }
        for (_attr, kids) in trie.children(node) {
            // Grouped knapsack over this dimension's children.
            for x in self.dp.iter_mut() {
                *x = 0.0;
            }
            let mut any = false;
            for &kid in kids {
                if !include(kid) {
                    continue;
                }
                any = true;
                let kbase = (kid as usize) * stride;
                for cap in (1..=self.m).rev() {
                    let mut acc = self.dp[cap];
                    for s in 1..=cap {
                        let cand = self.dp[cap - s] + self.best[kbase + s];
                        if cand > acc {
                            acc = cand;
                        }
                    }
                    self.dp[cap] = acc;
                }
            }
            if !any {
                continue;
            }
            for q in 1..=self.m {
                if self.dp[q] > self.best[base + q] {
                    self.best[base + q] = self.dp[q];
                }
            }
        }
    }

    /// Walks the DP back, emitting selected explanation ids.
    fn reconstruct<FI, FS>(
        &self,
        node: NodeId,
        q: usize,
        trie: &DrillTrie,
        include: &FI,
        selectable: &FS,
        out: &mut Vec<ExplId>,
    ) where
        FI: Fn(ExplId) -> bool,
        FS: Fn(ExplId) -> bool,
    {
        let stride = self.m + 1;
        let target = self.best[self.slot(node) * stride + q];
        if target <= 0.0 {
            return;
        }
        if node != ROOT_NODE && q >= 1 && selectable(node) {
            let gamma = self.gammas[node as usize];
            if close(target, gamma) {
                out.push(node);
                return;
            }
        }
        for (_attr, kids) in trie.children(node) {
            let included: Vec<ExplId> = kids.iter().copied().filter(|&k| include(k)).collect();
            if included.is_empty() {
                continue;
            }
            // Stage-by-stage knapsack: stages[i][cap] after the first i kids.
            let mut stages: Vec<Vec<f64>> = Vec::with_capacity(included.len() + 1);
            stages.push(vec![0.0; q + 1]);
            for &kid in &included {
                let prev = stages.last().expect("stage pushed above");
                let kbase = (kid as usize) * stride;
                let mut row = vec![0.0; q + 1];
                for cap in 0..=q {
                    let mut acc = prev[cap];
                    for s in 1..=cap {
                        let cand = prev[cap - s] + self.best[kbase + s];
                        if cand > acc {
                            acc = cand;
                        }
                    }
                    row[cap] = acc;
                }
                stages.push(row);
            }
            if !close(stages[included.len()][q], target) {
                continue;
            }
            // Back-walk the stages, assigning quota to kids.
            let mut cap = q;
            for i in (1..=included.len()).rev() {
                let kid = included[i - 1];
                let kbase = (kid as usize) * stride;
                let goal = stages[i][cap];
                let mut assigned = 0;
                for s in 0..=cap {
                    let part = if s == 0 { 0.0 } else { self.best[kbase + s] };
                    if close(stages[i - 1][cap - s] + part, goal) {
                        assigned = s;
                        break;
                    }
                }
                if assigned > 0 {
                    self.reconstruct(kid, assigned, trie, include, selectable, out);
                }
                cap -= assigned;
            }
            return;
        }
        debug_assert!(
            false,
            "reconstruction failed to match best value {target} at node {node}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_cube::CubeConfig;
    use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

    /// Builds a cube from (time, a, b, measure) tuples over two explain-by
    /// attributes.
    fn cube_from(rows: &[(&str, &str, &str, f64)]) -> ExplanationCube {
        let schema = Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("A"),
            Field::dimension("B"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for &(t, a, bb, v) in rows {
            b.push_row(vec![
                Datum::from(t),
                Datum::from(a),
                Datum::from(bb),
                Datum::from(v),
            ])
            .unwrap();
        }
        ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("t", "v"),
            &CubeConfig::new(["A", "B"]),
        )
        .unwrap()
    }

    /// Exhaustive oracle: the best total γ over every non-overlapping set
    /// of at most m explanations (brute force over subsets).
    fn brute_force_best(cube: &ExplanationCube, seg: (usize, usize), m: usize) -> f64 {
        let ctx = ScoreContext::new(cube, DiffMetric::AbsoluteChange);
        let ids: Vec<ExplId> = (0..cube.n_candidates() as ExplId).collect();
        let mut best = 0.0f64;
        let n = ids.len();
        for mask in 0u64..(1 << n) {
            if (mask.count_ones() as usize) > m {
                continue;
            }
            let chosen: Vec<ExplId> = ids
                .iter()
                .copied()
                .filter(|&e| mask & (1 << e) != 0)
                .collect();
            let ok = chosen.iter().enumerate().all(|(i, &a)| {
                chosen[i + 1..]
                    .iter()
                    .all(|&b| !cube.explanation(a).overlaps(cube.explanation(b)))
            });
            if !ok {
                continue;
            }
            let score: f64 = chosen.iter().map(|&e| ctx.gamma(e, seg)).sum();
            if score > best {
                best = score;
            }
        }
        best
    }

    /// Builds a single-attribute cube from (time, a, measure) tuples.
    fn cube_from_one_attr(rows: &[(&str, &str, f64)]) -> ExplanationCube {
        let schema = Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("A"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for &(t, a, v) in rows {
            b.push_row(vec![Datum::from(t), Datum::from(a), Datum::from(v)])
                .unwrap();
        }
        ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("t", "v"),
            &CubeConfig::new(["A"]),
        )
        .unwrap()
    }

    #[test]
    fn single_attribute_picks_largest_movers() {
        let rows = [
            ("t1", "NY", 10.0),
            ("t2", "NY", 30.0), // +20
            ("t1", "CA", 10.0),
            ("t2", "CA", 15.0), // +5
            ("t1", "TX", 10.0),
            ("t2", "TX", 11.0), // +1
        ];
        let cube = cube_from_one_attr(&rows);
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 2);
        let top = ca.top_m((0, 1));
        assert_eq!(top.len(), 2);
        assert_eq!(cube.label(top.items()[0].id), "A=NY");
        assert_eq!(top.items()[0].gamma, 20.0);
        assert_eq!(cube.label(top.items()[1].id), "A=CA");
    }

    #[test]
    fn whole_population_slice_beats_split_when_larger() {
        // With a second attribute that is constant, the slice B=x covers the
        // whole table and its γ (the full delta, 26) beats NY+CA (25).
        let rows = [
            ("t1", "NY", "x", 10.0),
            ("t2", "NY", "x", 30.0),
            ("t1", "CA", "x", 10.0),
            ("t2", "CA", "x", 15.0),
            ("t1", "TX", "x", 10.0),
            ("t2", "TX", "x", 11.0),
        ];
        let cube = cube_from(&rows);
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 2);
        let top = ca.top_m((0, 1));
        assert_eq!(top.len(), 1);
        assert_eq!(cube.label(top.items()[0].id), "B=x");
        assert_eq!(top.total_score(), 26.0);
    }

    #[test]
    fn non_overlap_is_enforced() {
        // A=NY moves +20 total; its sub-slice (NY, b1) moves +18.
        // Taking both would double count; CA must not return both.
        let rows = [
            ("t1", "NY", "b1", 1.0),
            ("t2", "NY", "b1", 19.0),
            ("t1", "NY", "b2", 1.0),
            ("t2", "NY", "b2", 3.0),
            ("t1", "CA", "b1", 5.0),
            ("t2", "CA", "b1", 5.0),
        ];
        let cube = cube_from(&rows);
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 3);
        let top = ca.top_m((0, 1));
        for (i, a) in top.items().iter().enumerate() {
            for b in &top.items()[i + 1..] {
                assert!(
                    !cube.explanation(a.id).overlaps(cube.explanation(b.id)),
                    "{} overlaps {}",
                    cube.label(a.id),
                    cube.label(b.id)
                );
            }
        }
    }

    #[test]
    fn drill_down_beats_coarse_when_children_disagree() {
        // A=NY nets 0 (+10 via b1, −10 via b2) but drilling into B inside NY
        // surfaces both movers with |γ| = 10 each.
        let rows = [
            ("t1", "NY", "b1", 10.0),
            ("t2", "NY", "b1", 20.0),
            ("t1", "NY", "b2", 20.0),
            ("t2", "NY", "b2", 10.0),
        ];
        let cube = cube_from(&rows);
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 2);
        let top = ca.top_m((0, 1));
        assert_eq!(top.len(), 2);
        assert_eq!(top.total_score(), 20.0);
        let labels: Vec<String> = top.items().iter().map(|i| cube.label(i.id)).collect();
        assert!(labels
            .iter()
            .all(|l| l.contains('&') || l.starts_with("B=")));
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        let rows = [
            ("t1", "a1", "b1", 3.0),
            ("t2", "a1", "b1", 9.0),
            ("t1", "a1", "b2", 7.0),
            ("t2", "a1", "b2", 2.0),
            ("t1", "a2", "b1", 4.0),
            ("t2", "a2", "b1", 4.5),
            ("t1", "a2", "b2", 1.0),
            ("t2", "a2", "b2", 8.0),
        ];
        let cube = cube_from(&rows);
        for m in 1..=4 {
            let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, m);
            let (top, best) = ca.top_m_with_best((0, 1));
            let oracle = brute_force_best(&cube, (0, 1), m);
            assert!(
                (top.total_score() - oracle).abs() < 1e-9,
                "m={m}: CA={} oracle={oracle}",
                top.total_score()
            );
            assert!((best[m] - oracle).abs() < 1e-9);
            // Best is monotone in quota.
            for q in 1..=m {
                assert!(best[q] + 1e-12 >= best[q - 1]);
            }
        }
    }

    #[test]
    fn best_side_products_match_smaller_m_runs() {
        let rows = [
            ("t1", "a1", "b1", 3.0),
            ("t2", "a1", "b1", 9.0),
            ("t1", "a2", "b2", 1.0),
            ("t2", "a2", "b2", 8.0),
            ("t1", "a3", "b1", 5.0),
            ("t2", "a3", "b1", 2.0),
        ];
        let cube = cube_from(&rows);
        let mut ca3 = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 3);
        let (_, best3) = ca3.top_m_with_best((0, 1));
        #[allow(clippy::needless_range_loop)]
        for m in 1..3 {
            let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, m);
            let (top, _) = ca.top_m_with_best((0, 1));
            assert!((best3[m] - top.total_score()).abs() < 1e-9);
        }
    }

    #[test]
    fn flat_segment_returns_empty() {
        let rows = [
            ("t1", "NY", "x", 10.0),
            ("t2", "NY", "x", 10.0),
            ("t1", "CA", "x", 4.0),
            ("t2", "CA", "x", 4.0),
        ];
        let cube = cube_from(&rows);
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 3);
        let top = ca.top_m((0, 1));
        assert!(top.is_empty());
        assert_eq!(top.ideal_dcg(), 0.0);
    }

    #[test]
    fn repeated_queries_are_consistent() {
        let rows = [
            ("t1", "a1", "b1", 3.0),
            ("t2", "a1", "b1", 9.0),
            ("t3", "a1", "b1", 1.0),
            ("t1", "a2", "b2", 1.0),
            ("t2", "a2", "b2", 8.0),
            ("t3", "a2", "b2", 12.0),
        ];
        let cube = cube_from(&rows);
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 2);
        let first: Vec<_> = ca.top_m((0, 1)).items().to_vec();
        let _ = ca.top_m((1, 2));
        let again: Vec<_> = ca.top_m((0, 1)).items().to_vec();
        assert_eq!(first, again);
    }

    #[test]
    fn respects_filter_selectability() {
        let rows = [
            ("t1", "NY", "x", 10.0),
            ("t2", "NY", "x", 30.0),
            ("t1", "CA", "x", 0.001),
            ("t2", "CA", "x", 0.002),
        ];
        let mut cube = cube_from(&rows);
        cube.apply_filter(Some(0.01));
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 3);
        let top = ca.top_m((0, 1));
        assert!(top.items().iter().all(|it| cube.is_selectable(it.id)));
    }
}
