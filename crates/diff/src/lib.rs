//! # tsexplain-diff
//!
//! The two-relations-diff building block of TSExplain (paper §3.1) and the
//! Cascading Analysts algorithm that extracts top-m *non-overlapping*
//! explanations (module b of the pipeline, §5.2):
//!
//! * [`DiffMetric`] — the difference-score abstraction γ(E). The paper's
//!   experiments use `absolute-change` (Definition 3.2);
//!   `relative-change` and `risk-ratio` are provided as the metric-library
//!   extensions §9 calls for.
//! * [`Effect`] — the change effect τ(E) (Definition 3.3): does including
//!   the slice push the KPI up or down over the segment?
//! * [`ScoreContext`] — O(1) evaluation of γ/τ for any explanation over any
//!   segment, via the cube's decomposable endpoint states.
//! * [`CascadingAnalysts`] — the drill-down dynamic program of Ruhl et
//!   al. (paper ref. 38) over the cube's trie (paper Fig. 8), returning
//!   [`TopExplanations`] (Definition 3.5).
//! * [`GuessVerify`] — optimization O1 (§5.3.1): run CA on the top-m̄
//!   candidates by γ and verify optimality with the Eq. 12 bound, doubling
//!   m̄ until verified.
//! * [`TopExplEngine`] — the strategy-switching entry point the
//!   segmentation layer uses.
//! * [`diff_two_relations`] — the classical standalone diff operator over a
//!   (test, control) relation pair, built on the same machinery.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
mod cascading;
mod error;
mod guess_verify;
mod metric;
mod score;
mod serde_impls;
mod top;
mod two_relation;

pub use cascading::CascadingAnalysts;
pub use error::DiffError;
pub use guess_verify::{GuessVerify, GuessVerifyStats};
pub use metric::{DiffMetric, Effect};
pub use score::ScoreContext;
pub use top::{RankedExplanation, TopExplEngine, TopExplStrategy, TopExplanations};
pub use two_relation::diff_two_relations;
