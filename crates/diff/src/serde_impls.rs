//! JSON serialization for diff types (vendored-serde impls).

use serde::{Deserialize, Error, Serialize, Value};

use crate::metric::{DiffMetric, Effect};

impl Serialize for Effect {
    fn serialize(&self) -> Value {
        // The paper's table notation: "+", "-", "0".
        Value::String(self.to_string())
    }
}

impl Deserialize for Effect {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.as_str() {
            Some("+") => Ok(Effect::Plus),
            Some("-") => Ok(Effect::Minus),
            Some("0") => Ok(Effect::Zero),
            _ => Err(Error::new("expected an effect sign: \"+\", \"-\" or \"0\"")),
        }
    }
}

impl Serialize for DiffMetric {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for DiffMetric {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let name = value
            .as_str()
            .ok_or_else(|| Error::new("expected a difference-metric name"))?;
        DiffMetric::ALL
            .into_iter()
            .find(|m| m.to_string() == name)
            .ok_or_else(|| Error::new(format!("unknown difference metric {name:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_roundtrip() {
        for e in [Effect::Plus, Effect::Minus, Effect::Zero] {
            assert_eq!(Effect::deserialize(&e.serialize()), Ok(e));
        }
        assert!(Effect::deserialize(&Value::String("x".into())).is_err());
    }

    #[test]
    fn metrics_roundtrip() {
        for m in DiffMetric::ALL {
            assert_eq!(DiffMetric::deserialize(&m.serialize()), Ok(m));
        }
        assert!(DiffMetric::deserialize(&Value::Null).is_err());
    }
}
