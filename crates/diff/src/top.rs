use tsexplain_cube::{ExplId, ExplanationCube};

use crate::cascading::CascadingAnalysts;
use crate::guess_verify::{GuessVerify, GuessVerifyStats};
use crate::metric::{DiffMetric, Effect};

/// One explanation of a ranked top-m list: its cube id, difference score
/// γ and change effect τ over the segment it was derived for.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedExplanation {
    /// Cube explanation id.
    pub id: ExplId,
    /// Difference score γ(E) (≥ 0).
    pub gamma: f64,
    /// Change effect τ(E).
    pub effect: Effect,
}

/// The top-m non-overlapping explanations of a segment
/// (Definition 3.5), ranked by γ descending, together with the segment's
/// *ideal DCG* (Eq. 4) — the denominator of every NDCG involving this
/// segment, cached here because it only depends on the segment itself.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TopExplanations {
    items: Vec<RankedExplanation>,
    ideal_dcg: f64,
    total_score: f64,
}

impl TopExplanations {
    /// Builds a ranked list; sorts by γ descending (ties broken by id for
    /// determinism) and computes the ideal DCG and total score.
    pub fn new(mut items: Vec<RankedExplanation>) -> Self {
        items.sort_by(|a, b| {
            b.gamma
                .partial_cmp(&a.gamma)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        let mut ideal_dcg = 0.0;
        let mut total_score = 0.0;
        for (r, it) in items.iter().enumerate() {
            ideal_dcg += it.gamma / ((r + 2) as f64).log2();
            total_score += it.gamma;
        }
        TopExplanations {
            items,
            ideal_dcg,
            total_score,
        }
    }

    /// The empty list (e.g. a perfectly flat segment).
    pub fn empty() -> Self {
        TopExplanations::default()
    }

    /// The ranked explanations, best first.
    pub fn items(&self) -> &[RankedExplanation] {
        &self.items
    }

    /// Number of explanations (≤ m).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no explanation has a positive score.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The ideal DCG `Σ_r γ_r / log2(r+1)` (Eq. 4).
    pub fn ideal_dcg(&self) -> f64 {
        self.ideal_dcg
    }

    /// The accumulated difference score `Σ γ(E)` (the objective of
    /// Definition 3.5).
    pub fn total_score(&self) -> f64 {
        self.total_score
    }

    /// Whether `id` appears in the list.
    pub fn contains(&self, id: ExplId) -> bool {
        self.items.iter().any(|it| it.id == id)
    }

    /// 0-based rank of `id`, if present.
    pub fn rank_of(&self, id: ExplId) -> Option<usize> {
        self.items.iter().position(|it| it.id == id)
    }
}

/// How [`TopExplEngine`] derives top-m lists.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TopExplStrategy {
    /// Exact Cascading Analysts over every (unfiltered) candidate.
    #[default]
    Exact,
    /// Guess-and-verify (optimization O1, §5.3.1) with the given initial
    /// guess m̄₀ (paper default 30 for m = 3).
    GuessVerify {
        /// Initial restricted input size m̄₀.
        initial_guess: usize,
    },
}

impl TopExplStrategy {
    /// The paper's guess-and-verify default (m̄₀ = 30).
    pub fn guess_verify_default() -> Self {
        TopExplStrategy::GuessVerify { initial_guess: 30 }
    }
}

/// The segment → top-m entry point used by the segmentation layer: a
/// [`CascadingAnalysts`] instance plus the configured derivation strategy
/// and instrumentation counters.
pub struct TopExplEngine<'a> {
    ca: CascadingAnalysts<'a>,
    gv: Option<GuessVerify>,
    calls: u64,
    gv_rounds: u64,
    gv_fallbacks: u64,
}

impl<'a> TopExplEngine<'a> {
    /// Builds an engine over `cube` with difference metric `metric`,
    /// list size `m` and the given strategy.
    pub fn new(
        cube: &'a ExplanationCube,
        metric: DiffMetric,
        m: usize,
        strategy: TopExplStrategy,
    ) -> Self {
        let ca = CascadingAnalysts::new(cube, metric, m);
        let gv = match strategy {
            TopExplStrategy::Exact => None,
            TopExplStrategy::GuessVerify { initial_guess } => {
                Some(GuessVerify::new(cube, initial_guess))
            }
        };
        TopExplEngine {
            ca,
            gv,
            calls: 0,
            gv_rounds: 0,
            gv_fallbacks: 0,
        }
    }

    /// The cube the engine explains.
    pub fn cube(&self) -> &'a ExplanationCube {
        self.ca.cube()
    }

    /// The configured list size m.
    pub fn m(&self) -> usize {
        self.ca.m()
    }

    /// Top-m non-overlapping explanations for the segment `(a, b)`.
    pub fn top_m(&mut self, seg: (usize, usize)) -> TopExplanations {
        self.calls += 1;
        match &mut self.gv {
            None => self.ca.top_m(seg),
            Some(gv) => {
                let (top, stats) = gv.top_m(&mut self.ca, seg);
                self.record(&stats);
                top
            }
        }
    }

    fn record(&mut self, stats: &GuessVerifyStats) {
        self.gv_rounds += stats.rounds as u64;
        if stats.fell_back_exact {
            self.gv_fallbacks += 1;
        }
    }

    /// Number of top-m derivations performed (segments explained).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Total guess-and-verify rounds (≥ calls when O1 is active).
    pub fn guess_rounds(&self) -> u64 {
        self.gv_rounds
    }

    /// How many derivations fell back to the exact algorithm.
    pub fn guess_fallbacks(&self) -> u64 {
        self.gv_fallbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: ExplId, gamma: f64) -> RankedExplanation {
        RankedExplanation {
            id,
            gamma,
            effect: Effect::Plus,
        }
    }

    #[test]
    fn sorted_by_gamma_desc() {
        let top = TopExplanations::new(vec![item(1, 2.0), item(2, 5.0), item(3, 3.0)]);
        let ids: Vec<ExplId> = top.items().iter().map(|i| i.id).collect();
        assert_eq!(ids, vec![2, 3, 1]);
        assert_eq!(top.rank_of(3), Some(1));
        assert!(top.contains(1));
        assert!(!top.contains(9));
    }

    #[test]
    fn ideal_dcg_matches_hand_computation() {
        let top = TopExplanations::new(vec![item(0, 4.0), item(1, 2.0), item(2, 1.0)]);
        let expected = 4.0 / 2f64.log2() + 2.0 / 3f64.log2() + 1.0 / 4f64.log2();
        assert!((top.ideal_dcg() - expected).abs() < 1e-12);
        assert_eq!(top.total_score(), 7.0);
    }

    #[test]
    fn tie_broken_by_id() {
        let top = TopExplanations::new(vec![item(5, 1.0), item(2, 1.0)]);
        assert_eq!(top.items()[0].id, 2);
    }

    #[test]
    fn empty_list() {
        let top = TopExplanations::empty();
        assert!(top.is_empty());
        assert_eq!(top.ideal_dcg(), 0.0);
    }
}
