use tsexplain_cube::{CubeConfig, ExplanationCube};
use tsexplain_relation::{
    AggFn, AggQuery, AttrValue, Column, ColumnType, Datum, Field, MeasureExpr, Relation, Schema,
};

use crate::cascading::CascadingAnalysts;
use crate::error::DiffError;
use crate::metric::{DiffMetric, Effect};

/// The classical two-relations diff operator (paper §3.1.1, Example 3.1):
/// explain how a *test* relation differs from a *control* relation.
///
/// This is the building block TSExplain generalizes — it is exactly the
/// special case of explaining the 2-point "time series" `[control, test]`,
/// and that is how it is implemented: the two relations are stacked with a
/// synthetic time dimension and the segment `(0, 1)` is explained.
///
/// Returns `(label, γ, τ)` triples ranked by γ descending.
#[allow(clippy::too_many_arguments)]
pub fn diff_two_relations(
    test: &Relation,
    control: &Relation,
    explain_by: &[&str],
    agg: AggFn,
    measure: MeasureExpr,
    metric: DiffMetric,
    m: usize,
    max_order: usize,
) -> Result<Vec<(String, f64, Effect)>, DiffError> {
    if m == 0 {
        return Err(DiffError::ZeroM);
    }
    if !schemas_match(test.schema(), control.schema()) {
        return Err(DiffError::SchemaMismatch);
    }

    const TIME_ATTR: &str = "__diff_side";
    let mut fields = vec![Field::dimension(TIME_ATTR)];
    fields.extend(
        test.schema()
            .fields()
            .iter()
            .map(|f| match f.column_type() {
                ColumnType::Dimension => Field::dimension(f.name()),
                ColumnType::Measure => Field::measure(f.name()),
            }),
    );
    let schema = Schema::new(fields)?;
    let mut builder = Relation::builder(schema);
    for (side, rel) in [("0_control", control), ("1_test", test)] {
        for row in 0..rel.n_rows() {
            let mut data = Vec::with_capacity(rel.schema().len() + 1);
            data.push(Datum::Attr(AttrValue::from(side)));
            for idx in 0..rel.schema().len() {
                data.push(match rel.column(idx) {
                    Column::Dimension(d) => Datum::Attr(d.value_at(row).clone()),
                    Column::Measure(mcol) => Datum::Num(mcol[row]),
                });
            }
            builder.push_row(data)?;
        }
    }
    let stacked = builder.finish();

    let query = AggQuery::new(TIME_ATTR, agg, measure);
    let config = CubeConfig::new(explain_by.iter().copied()).with_max_order(max_order);
    let cube = ExplanationCube::build(&stacked, &query, &config)?;

    let mut ca = CascadingAnalysts::new(&cube, metric, m);
    let top = ca.top_m((0, 1));
    Ok(top
        .items()
        .iter()
        .map(|it| (cube.label(it.id), it.gamma, it.effect))
        .collect())
}

fn schemas_match(a: &Schema, b: &Schema) -> bool {
    a.len() == b.len()
        && a.fields()
            .iter()
            .zip(b.fields())
            .all(|(fa, fb)| fa.name() == fb.name() && fa.column_type() == fb.column_type())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relation(rows: &[(&str, f64)]) -> Relation {
        let schema = Schema::new(vec![Field::dimension("state"), Field::measure("cases")]).unwrap();
        let mut b = Relation::builder(schema);
        for &(s, v) in rows {
            b.push_row(vec![Datum::from(s), Datum::from(v)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn surfaces_biggest_mover() {
        let control = relation(&[("NY", 100.0), ("CA", 50.0), ("TX", 40.0)]);
        let test = relation(&[("NY", 105.0), ("CA", 90.0), ("TX", 41.0)]);
        let out = diff_two_relations(
            &test,
            &control,
            &["state"],
            AggFn::Sum,
            MeasureExpr::column("cases"),
            DiffMetric::AbsoluteChange,
            2,
            3,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, "state=CA");
        assert_eq!(out[0].1, 40.0);
        assert_eq!(out[0].2, Effect::Plus);
        assert_eq!(out[1].0, "state=NY");
    }

    #[test]
    fn detects_declines() {
        let control = relation(&[("NY", 100.0)]);
        let test = relation(&[("NY", 60.0)]);
        let out = diff_two_relations(
            &test,
            &control,
            &["state"],
            AggFn::Sum,
            MeasureExpr::column("cases"),
            DiffMetric::AbsoluteChange,
            1,
            1,
        )
        .unwrap();
        assert_eq!(out[0].1, 40.0);
        assert_eq!(out[0].2, Effect::Minus);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let control = relation(&[("NY", 1.0)]);
        let schema =
            Schema::new(vec![Field::dimension("county"), Field::measure("cases")]).unwrap();
        let test = Relation::builder(schema).finish();
        let err = diff_two_relations(
            &test,
            &control,
            &["state"],
            AggFn::Sum,
            MeasureExpr::column("cases"),
            DiffMetric::AbsoluteChange,
            1,
            1,
        )
        .unwrap_err();
        assert_eq!(err, DiffError::SchemaMismatch);
    }

    #[test]
    fn zero_m_rejected() {
        let r = relation(&[("NY", 1.0)]);
        let err = diff_two_relations(
            &r,
            &r,
            &["state"],
            AggFn::Sum,
            MeasureExpr::column("cases"),
            DiffMetric::AbsoluteChange,
            0,
            1,
        )
        .unwrap_err();
        assert_eq!(err, DiffError::ZeroM);
    }
}
