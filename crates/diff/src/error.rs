use std::fmt;

use tsexplain_cube::CubeError;
use tsexplain_relation::RelationError;

/// Errors produced by the diff layer.
#[derive(Clone, Debug, PartialEq)]
pub enum DiffError {
    /// A cube-construction error.
    Cube(CubeError),
    /// A substrate error.
    Relation(RelationError),
    /// The two relations handed to the two-relation diff have different
    /// schemas.
    SchemaMismatch,
    /// m must be at least 1.
    ZeroM,
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Cube(e) => write!(f, "cube error: {e}"),
            DiffError::Relation(e) => write!(f, "relation error: {e}"),
            DiffError::SchemaMismatch => {
                write!(f, "test and control relations must share a schema")
            }
            DiffError::ZeroM => write!(f, "top-m requires m >= 1"),
        }
    }
}

impl std::error::Error for DiffError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiffError::Cube(e) => Some(e),
            DiffError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CubeError> for DiffError {
    fn from(e: CubeError) -> Self {
        DiffError::Cube(e)
    }
}

impl From<RelationError> for DiffError {
    fn from(e: RelationError) -> Self {
        DiffError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(DiffError::SchemaMismatch.to_string().contains("schema"));
        let e: DiffError = CubeError::NoExplainBy.into();
        assert!(e.to_string().contains("explain-by"));
    }
}
