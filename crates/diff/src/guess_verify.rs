use tsexplain_cube::{ExplId, ExplanationCube};

use crate::cascading::CascadingAnalysts;
use crate::score::ScoreContext;
use crate::top::TopExplanations;

/// Per-derivation statistics of the guess-and-verify loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GuessVerifyStats {
    /// The m̄ that finally verified (or ε on exact fallback).
    pub final_guess: usize,
    /// Number of guess rounds (1 when the initial guess verified).
    pub rounds: u32,
    /// True when the loop gave up and ran the exact algorithm.
    pub fell_back_exact: bool,
}

/// Optimization O1: guess-and-verify (paper §5.3.1).
///
/// Instead of feeding all ε candidates into the Cascading Analysts
/// algorithm, feed only the m̄ candidates with the highest difference
/// scores, then certify the result with the Eq. 12 bound:
///
/// ```text
/// Best[m] ≥ Best[m′] + Σ_{1 ≤ j ≤ m−m′} γ(E_{r_{m̄+j}})   ∀ 0 ≤ m′ < m
/// ```
///
/// Any optimal solution splits into members ranked ≤ m̄ (whose total is
/// bounded by some `Best[m′]` of the restricted run, since a subset of a
/// cascading-expressible set is cascading-expressible) and members ranked
/// > m̄ (bounded by the next `m − m′` scores after position m̄). When the
/// > restricted `Best[m]` dominates every such bound it is globally optimal;
/// > otherwise m̄ doubles (paper: m̄₀ = 30 for m = 3).
///
/// Owns its buffers so a warm top-m derivation allocates nothing: the
/// batched γ scores, the scored ranking, the restriction bitmaps, the
/// ancestor scratch and the processing order are all reused across calls.
pub struct GuessVerify {
    initial_guess: usize,
    /// Batched γ over all candidates (masked to the selectable set),
    /// filled once per segment and shared with the restricted CA runs.
    gamma_buf: Vec<f64>,
    /// Scratch: (γ, id), sorted descending per segment.
    scored: Vec<(f64, ExplId)>,
    /// Structural-inclusion bitmap over all candidates.
    structural: Vec<bool>,
    /// Selection-permission bitmap over all candidates.
    allowed: Vec<bool>,
    /// Entries of the two bitmaps that are currently set.
    touched: Vec<ExplId>,
    /// Included nodes in children-first order, rebuilt per round.
    order: Vec<ExplId>,
    /// Ancestor-predicate scratch for allocation-free trie lookups.
    subset_buf: Vec<(u16, u32)>,
}

impl GuessVerify {
    /// Creates the optimizer with initial guess m̄₀ (paper default 30).
    pub fn new(cube: &ExplanationCube, initial_guess: usize) -> Self {
        assert!(initial_guess >= 1, "initial guess must be >= 1");
        let n = cube.n_candidates();
        GuessVerify {
            initial_guess,
            gamma_buf: vec![0.0; n],
            scored: Vec::new(),
            structural: vec![false; n],
            allowed: vec![false; n],
            touched: Vec::new(),
            order: Vec::new(),
            subset_buf: Vec::new(),
        }
    }

    /// Derives the (certified-optimal) top-m list for `seg`.
    pub fn top_m(
        &mut self,
        ca: &mut CascadingAnalysts<'_>,
        seg: (usize, usize),
    ) -> (TopExplanations, GuessVerifyStats) {
        let cube = ca.cube();
        let m = ca.m();
        let ctx: ScoreContext<'_> = ca.score_context();

        // One linear masked scan over the columnar rows scores every
        // selectable candidate; the buffer then feeds both the ranking and
        // every restricted CA round (no rescoring per round).
        ctx.gamma_all_masked(seg, Some(cube.selectable_mask()), &mut self.gamma_buf);
        self.scored.clear();
        for e in 0..cube.n_candidates() as ExplId {
            if cube.is_selectable(e) {
                self.scored.push((self.gamma_buf[e as usize], e));
            }
        }
        // Descending γ, ties by id, so χ = [E_r1, E_r2, …] is deterministic.
        let desc = |a: &(f64, ExplId), b: &(f64, ExplId)| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        };

        let total = self.scored.len();
        let mut guess = self.initial_guess.min(total);
        let mut rounds = 0u32;
        loop {
            // Only the head of χ is consulted (the top-m̄ restriction plus
            // the next m scores for the Eq. 12 bound), so an O(ε) partial
            // selection replaces a full sort — this is where O1's win over
            // exact CA comes from when ε is large.
            let need = (guess + m).min(total);
            if need < total {
                self.scored.select_nth_unstable_by(need, desc);
            }
            self.scored[..need].sort_by(desc);
            if guess >= total {
                // Exact fallback (also covers tiny candidate sets).
                let (top, _) = ca.top_m_with_best(seg);
                return (
                    top,
                    GuessVerifyStats {
                        final_guess: total,
                        rounds: rounds.max(1),
                        fell_back_exact: true,
                    },
                );
            }
            rounds += 1;
            self.build_restriction(cube, guess);
            let (top, best) = ca.top_m_restricted(
                seg,
                &self.order,
                &self.structural,
                &self.allowed,
                &self.gamma_buf,
            );
            if self.verified(&best, m, guess) {
                return (
                    top,
                    GuessVerifyStats {
                        final_guess: guess,
                        rounds,
                        fell_back_exact: false,
                    },
                );
            }
            guess = (guess * 2).min(total);
        }
    }

    /// Marks the top-`guess` candidates (plus ancestors) in the bitmaps and
    /// rebuilds the children-first order.
    fn build_restriction(&mut self, cube: &ExplanationCube, guess: usize) {
        for &e in &self.touched {
            self.structural[e as usize] = false;
            self.allowed[e as usize] = false;
        }
        self.touched.clear();
        self.order.clear();

        for i in 0..guess {
            let e = self.scored[i].1;
            if !self.allowed[e as usize] {
                self.allowed[e as usize] = true;
            }
            self.mark_structural(cube, e);
            // The drill path from the root to `e` may pass through any
            // subset of its predicates, so include them all.
            let expl = cube.explanation(e);
            let preds = expl.preds();
            let k = preds.len() as u32;
            for mask in 1..(1u32 << k) {
                if mask == (1 << k) - 1 {
                    continue; // `e` itself, already marked
                }
                // Subsets of a sorted predicate list stay sorted, so the
                // scratch buffer probes the cube index directly.
                self.subset_buf.clear();
                self.subset_buf.extend(
                    preds
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, &p)| p),
                );
                if let Some(aid) = cube.lookup_preds(&self.subset_buf) {
                    self.mark_structural(cube, aid);
                }
            }
        }
        // Children-first processing order.
        self.order.extend(self.touched.iter().copied());
        self.order
            .sort_by_key(|&e| std::cmp::Reverse(cube.explanation(e).order()));
    }

    fn mark_structural(&mut self, _cube: &ExplanationCube, e: ExplId) {
        if !self.structural[e as usize] {
            self.structural[e as usize] = true;
            self.touched.push(e);
        }
    }

    /// The Eq. 12 sufficient condition.
    fn verified(&self, best: &[f64], m: usize, guess: usize) -> bool {
        let tail_gamma = |j: usize| -> f64 {
            self.scored
                .get(guess + j - 1)
                .map(|&(g, _)| g)
                .unwrap_or(0.0)
        };
        let tol = 1e-9 * best[m].abs().max(1.0);
        for m_prime in 0..m {
            let mut bound = best[m_prime];
            for j in 1..=(m - m_prime) {
                bound += tail_gamma(j);
            }
            if best[m] + tol < bound {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::DiffMetric;
    use tsexplain_cube::CubeConfig;
    use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

    /// A cube with many one-attribute slices of varied movement, plus a
    /// second attribute to exercise drill-downs.
    fn wide_cube(n_slices: usize) -> ExplanationCube {
        let schema = Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("A"),
            Field::dimension("B"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for i in 0..n_slices {
            let a = format!("a{i:03}");
            let bb = if i % 2 == 0 { "x" } else { "y" };
            // Slice i moves by (i * 7 % 23) + small per-B split.
            let delta = (i * 7 % 23) as f64;
            b.push_row(vec![
                Datum::from("t1"),
                Datum::from(a.as_str()),
                Datum::from(bb),
                Datum::from(10.0),
            ])
            .unwrap();
            b.push_row(vec![
                Datum::from("t2"),
                Datum::from(a.as_str()),
                Datum::from(bb),
                Datum::from(10.0 + delta),
            ])
            .unwrap();
        }
        ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("t", "v"),
            &CubeConfig::new(["A", "B"]),
        )
        .unwrap()
    }

    #[test]
    fn matches_exact_on_wide_instance() {
        let cube = wide_cube(60);
        for m in 1..=3 {
            let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, m);
            let exact = ca.top_m((0, 1));
            let mut gv = GuessVerify::new(&cube, 5);
            let (approx, stats) = gv.top_m(&mut ca, (0, 1));
            assert!(
                (approx.total_score() - exact.total_score()).abs() < 1e-9,
                "m={m}: gv={} exact={} (stats {stats:?})",
                approx.total_score(),
                exact.total_score()
            );
        }
    }

    #[test]
    fn small_initial_guess_forces_doubling() {
        let cube = wide_cube(60);
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 3);
        let mut gv = GuessVerify::new(&cube, 1);
        let (_, stats) = gv.top_m(&mut ca, (0, 1));
        assert!(stats.rounds >= 1);
        assert!(stats.final_guess >= 1);
    }

    #[test]
    fn reuse_across_segments_is_clean() {
        let schema = Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("A"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for (t, a, v) in [
            ("t1", "x", 1.0),
            ("t2", "x", 9.0),
            ("t3", "x", 2.0),
            ("t1", "y", 5.0),
            ("t2", "y", 5.0),
            ("t3", "y", 50.0),
        ] {
            b.push_row(vec![Datum::from(t), Datum::from(a), Datum::from(v)])
                .unwrap();
        }
        let cube = ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("t", "v"),
            &CubeConfig::new(["A"]),
        )
        .unwrap();
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 1);
        let mut gv = GuessVerify::new(&cube, 1);
        let (t01, _) = gv.top_m(&mut ca, (0, 1));
        let (t12, _) = gv.top_m(&mut ca, (1, 2));
        assert_eq!(cube.label(t01.items()[0].id), "A=x");
        assert_eq!(cube.label(t12.items()[0].id), "A=y");
    }

    #[test]
    fn handles_all_filtered() {
        let mut cube = wide_cube(10);
        cube.apply_filter(Some(1e9));
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 3);
        let mut gv = GuessVerify::new(&cube, 30);
        let (top, _) = gv.top_m(&mut ca, (0, 1));
        assert!(top.is_empty());
    }
}
