//! Property-based tests for the relational substrate: AggState group laws,
//! builder/relation round trips, and group-by correctness against a naive
//! oracle.

use std::collections::HashMap;

use proptest::prelude::*;
use tsexplain_relation::{
    AggFn, AggQuery, AggState, Conjunction, Datum, Field, Predicate, Relation, Schema,
};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    /// merge is associative and commutative, remove inverts merge.
    #[test]
    fn agg_state_group_laws(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..20),
        ys in proptest::collection::vec(-1e3f64..1e3, 1..20),
        zs in proptest::collection::vec(-1e3f64..1e3, 1..20),
    ) {
        let state = |vs: &[f64]| {
            let mut s = AggState::ZERO;
            for &v in vs { s.observe(v); }
            s
        };
        let (a, b, c) = (state(&xs), state(&ys), state(&zs));
        let ab_c = a.merge(b).merge(c);
        let a_bc = a.merge(b.merge(c));
        prop_assert!(close(ab_c.sum, a_bc.sum));
        prop_assert!(close(ab_c.sumsq, a_bc.sumsq));
        let ba = b.merge(a);
        prop_assert!(close(a.merge(b).sum, ba.sum));
        let back = a.merge(b).remove(b);
        prop_assert!(close(back.sum, a.sum));
        prop_assert!(close(back.count, a.count));
    }

    /// Aggregate values computed from states match direct computation.
    #[test]
    fn agg_values_match_direct(xs in proptest::collection::vec(-1e3f64..1e3, 1..40)) {
        let mut s = AggState::ZERO;
        for &v in &xs { s.observe(v); }
        let n = xs.len() as f64;
        let sum: f64 = xs.iter().sum();
        let mean = sum / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!(close(s.value(AggFn::Sum), sum));
        prop_assert!(close(s.value(AggFn::Count), n));
        prop_assert!(close(s.value(AggFn::Avg), mean));
        prop_assert!((s.value(AggFn::Variance) - var).abs() < 1e-4 * var.max(1.0));
    }
}

/// Row model for relation round trips: (time 0..5, attr 0..4, measure).
fn rows_strategy() -> impl Strategy<Value = Vec<(u8, u8, f64)>> {
    proptest::collection::vec((0u8..5, 0u8..4, -100.0f64..100.0), 1..60)
}

fn build(rows: &[(u8, u8, f64)]) -> Relation {
    let schema = Schema::new(vec![
        Field::dimension("t"),
        Field::dimension("a"),
        Field::measure("v"),
    ])
    .unwrap();
    let mut b = Relation::builder(schema);
    for &(t, a, v) in rows {
        b.push_row(vec![
            Datum::Attr((t as i64).into()),
            Datum::Attr((a as i64).into()),
            Datum::from(v),
        ])
        .unwrap();
    }
    b.finish()
}

proptest! {
    /// select + exclude partition the relation for any predicate.
    #[test]
    fn select_exclude_partition(rows in rows_strategy(), which in 0u8..4) {
        let rel = build(&rows);
        let conj = Conjunction::new().and(Predicate::equals("a", which as i64));
        let inside = rel.select(&conj).unwrap();
        let outside = rel.exclude(&conj).unwrap();
        prop_assert_eq!(inside.n_rows() + outside.n_rows(), rel.n_rows());
        inside.check_invariants().unwrap();
        outside.check_invariants().unwrap();
        let total: f64 = rel.measure("v").unwrap().iter().sum();
        let parts: f64 = inside.measure("v").unwrap().iter().sum::<f64>()
            + outside.measure("v").unwrap().iter().sum::<f64>();
        prop_assert!(close(total, parts));
    }

    /// SUM group-by matches a HashMap oracle.
    #[test]
    fn group_by_matches_oracle(rows in rows_strategy()) {
        let rel = build(&rows);
        let ts = AggQuery::sum("t", "v").run(&rel).unwrap();
        let mut oracle: HashMap<i64, f64> = HashMap::new();
        for &(t, _, v) in &rows {
            *oracle.entry(t as i64).or_default() += v;
        }
        prop_assert_eq!(ts.len(), oracle.len());
        for (time, value) in ts.timestamps.iter().zip(&ts.values) {
            let t = time.as_int().unwrap();
            prop_assert!(close(*value, oracle[&t]));
        }
        // Timestamps sorted.
        prop_assert!(ts.timestamps.windows(2).all(|w| w[0] < w[1]));
    }

    /// Dictionary codes are ordinal after building.
    #[test]
    fn dictionary_codes_ordinal(rows in rows_strategy()) {
        let rel = build(&rows);
        let col = rel.dim_column("a").unwrap();
        let values = col.dict().values();
        prop_assert!(values.windows(2).all(|w| w[0] < w[1]));
        for row in 0..rel.n_rows() {
            let code = col.codes()[row];
            prop_assert_eq!(col.dict().code_of(col.value_at(row)), Some(code));
        }
    }
}
