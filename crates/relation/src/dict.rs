use std::collections::HashMap;

use crate::value::AttrValue;

/// A sorted dictionary for one dimension column.
///
/// Codes are ordinal: `code(a) < code(b)` iff `a < b` under [`AttrValue`]'s
/// total order. This is what lets the time dimension double as an ordinary
/// dictionary-encoded dimension — the sorted codes *are* the time axis.
#[derive(Clone, Debug)]
pub struct Dictionary {
    values: Vec<AttrValue>,
    index: HashMap<AttrValue, u32>,
}

impl Dictionary {
    /// Builds a dictionary from an arbitrary collection of values
    /// (duplicates allowed); the result holds the sorted distinct values.
    pub fn from_values<I: IntoIterator<Item = AttrValue>>(values: I) -> Self {
        let mut distinct: Vec<AttrValue> = values.into_iter().collect();
        distinct.sort_unstable();
        distinct.dedup();
        let index = distinct
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
        Dictionary {
            values: distinct,
            index,
        }
    }

    /// Builds a dictionary whose codes follow the *given* order instead of
    /// the sorted order — used by incrementally grown cubes, where codes of
    /// values first seen after construction are assigned append-order.
    ///
    /// `values` must be distinct.
    ///
    /// # Panics
    /// Panics (debug) on duplicate values.
    pub fn from_ordered_values(values: Vec<AttrValue>) -> Self {
        let index: HashMap<AttrValue, u32> = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
        debug_assert_eq!(index.len(), values.len(), "values must be distinct");
        Dictionary { values, index }
    }

    /// Number of distinct values (the attribute's cardinality).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the dictionary holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The code of `value`, if present.
    pub fn code_of(&self, value: &AttrValue) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// The value behind `code`.
    ///
    /// # Panics
    /// Panics if `code` is out of range; codes always come from the same
    /// dictionary in this crate.
    pub fn value(&self, code: u32) -> &AttrValue {
        &self.values[code as usize]
    }

    /// All values in sorted (code) order.
    pub fn values(&self) -> &[AttrValue] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_distinct() {
        let d = Dictionary::from_values(["b", "a", "b", "c"].map(AttrValue::from));
        assert_eq!(d.len(), 3);
        assert_eq!(d.value(0), &AttrValue::from("a"));
        assert_eq!(d.value(2), &AttrValue::from("c"));
    }

    #[test]
    fn codes_are_ordinal() {
        let d = Dictionary::from_values([10i64, 2, 7].map(AttrValue::from));
        let c2 = d.code_of(&AttrValue::from(2)).unwrap();
        let c7 = d.code_of(&AttrValue::from(7)).unwrap();
        let c10 = d.code_of(&AttrValue::from(10)).unwrap();
        assert!(c2 < c7 && c7 < c10);
    }

    #[test]
    fn missing_value_is_none() {
        let d = Dictionary::from_values([AttrValue::from("x")]);
        assert_eq!(d.code_of(&AttrValue::from("y")), None);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::from_values(std::iter::empty());
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
