use std::fmt;

use crate::agg::{AggFn, AggState};
use crate::error::RelationError;
use crate::relation::Relation;
use crate::value::AttrValue;

/// The measure expression an aggregate operates on.
///
/// Besides plain columns, the S&P 500 workload needs the derived measure
/// `price * share / divisor` (paper §7.1.2), so products and scaling are
/// supported. The expression is evaluated row-wise into an `f64` before
/// aggregation.
#[derive(Clone, Debug, PartialEq)]
pub enum MeasureExpr {
    /// A measure column by name.
    Column(String),
    /// Row-wise product of two measure columns.
    Product(String, String),
    /// A scaled sub-expression, e.g. division by the S&P 500 divisor.
    Scaled(Box<MeasureExpr>, f64),
}

impl MeasureExpr {
    /// `column` as an expression.
    pub fn column(name: impl Into<String>) -> Self {
        MeasureExpr::Column(name.into())
    }

    /// `a * b` as an expression.
    pub fn product(a: impl Into<String>, b: impl Into<String>) -> Self {
        MeasureExpr::Product(a.into(), b.into())
    }

    /// `expr * factor`.
    pub fn scaled(self, factor: f64) -> Self {
        MeasureExpr::Scaled(Box::new(self), factor)
    }

    /// Evaluates the expression for one raw row in schema order — the
    /// row-at-a-time counterpart of [`MeasureExpr::eval`], used by
    /// incremental (streaming) ingestion where no materialized [`Relation`]
    /// exists. Applies the same numeric coercions as
    /// [`crate::RelationBuilder::push_row`].
    pub fn eval_row(
        &self,
        schema: &crate::Schema,
        row: &[crate::Datum],
    ) -> Result<f64, RelationError> {
        let column_value = |name: &str| -> Result<f64, RelationError> {
            let idx = schema.measure_index(name)?;
            match row.get(idx) {
                Some(crate::Datum::Num(v)) => Ok(*v),
                Some(crate::Datum::Attr(AttrValue::Int(i))) => Ok(*i as f64),
                Some(crate::Datum::Attr(_)) => Err(RelationError::TypeMismatch {
                    field: name.to_string(),
                    expected: "measure",
                }),
                None => Err(RelationError::ArityMismatch {
                    expected: schema.len(),
                    got: row.len(),
                }),
            }
        };
        match self {
            MeasureExpr::Column(name) => column_value(name),
            MeasureExpr::Product(a, b) => Ok(column_value(a)? * column_value(b)?),
            MeasureExpr::Scaled(inner, factor) => Ok(inner.eval_row(schema, row)? * factor),
        }
    }

    /// Evaluates the expression over every row of `rel`.
    pub fn eval(&self, rel: &Relation) -> Result<Vec<f64>, RelationError> {
        match self {
            MeasureExpr::Column(name) => Ok(rel.measure(name)?.to_vec()),
            MeasureExpr::Product(a, b) => {
                let xa = rel.measure(a)?;
                let xb = rel.measure(b)?;
                Ok(xa.iter().zip(xb).map(|(x, y)| x * y).collect())
            }
            MeasureExpr::Scaled(inner, factor) => {
                let mut v = inner.eval(rel)?;
                for x in &mut v {
                    *x *= factor;
                }
                Ok(v)
            }
        }
    }
}

impl fmt::Display for MeasureExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureExpr::Column(c) => write!(f, "{c}"),
            MeasureExpr::Product(a, b) => write!(f, "{a}*{b}"),
            MeasureExpr::Scaled(inner, k) => write!(f, "({inner})*{k}"),
        }
    }
}

/// The "what happened" query: `SELECT T, f(M) FROM R GROUP BY T`
/// (Definition 3.6).
#[derive(Clone, Debug)]
pub struct AggQuery {
    time_attr: String,
    agg: AggFn,
    measure: MeasureExpr,
}

impl AggQuery {
    /// Builds a query grouping by `time_attr` and aggregating `measure`
    /// with `agg`.
    pub fn new(time_attr: impl Into<String>, agg: AggFn, measure: MeasureExpr) -> Self {
        AggQuery {
            time_attr: time_attr.into(),
            agg,
            measure,
        }
    }

    /// Convenience constructor for `SUM(column)`.
    pub fn sum(time_attr: impl Into<String>, column: impl Into<String>) -> Self {
        AggQuery::new(time_attr, AggFn::Sum, MeasureExpr::column(column))
    }

    /// Convenience constructor for `COUNT(column)`.
    pub fn count(time_attr: impl Into<String>, column: impl Into<String>) -> Self {
        AggQuery::new(time_attr, AggFn::Count, MeasureExpr::column(column))
    }

    /// The time dimension's attribute name.
    pub fn time_attr(&self) -> &str {
        &self.time_attr
    }

    /// The aggregate function.
    pub fn agg(&self) -> AggFn {
        self.agg
    }

    /// The measure expression.
    pub fn measure(&self) -> &MeasureExpr {
        &self.measure
    }

    /// Runs the query, producing the aggregated time series.
    pub fn run(&self, rel: &Relation) -> Result<AggregatedTimeSeries, RelationError> {
        let time_col = rel.dim_column(&self.time_attr)?;
        let measures = self.measure.eval(rel)?;
        let n = time_col.dict().len();
        let mut states = vec![AggState::ZERO; n];
        for (row, &code) in time_col.codes().iter().enumerate() {
            states[code as usize].observe(measures[row]);
        }
        let timestamps = time_col.dict().values().to_vec();
        let values = states.iter().map(|s| s.value(self.agg)).collect();
        Ok(AggregatedTimeSeries {
            timestamps,
            states,
            values,
            agg: self.agg,
        })
    }
}

impl fmt::Display for AggQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let agg = match self.agg {
            AggFn::Sum => "SUM",
            AggFn::Count => "COUNT",
            AggFn::Avg => "AVG",
            AggFn::Variance => "VAR",
        };
        write!(
            f,
            "SELECT {t}, {agg}({m}) FROM R GROUP BY {t}",
            t = self.time_attr,
            m = self.measure
        )
    }
}

/// The result of an [`AggQuery`]: a time-ordered series of aggregate values
/// (Definition 3.6), along with the decomposable per-timestamp states.
#[derive(Clone, Debug)]
pub struct AggregatedTimeSeries {
    /// Sorted distinct timestamps.
    pub timestamps: Vec<AttrValue>,
    /// Per-timestamp decomposable aggregate state.
    pub states: Vec<AggState>,
    /// Per-timestamp aggregate values `f(M)`.
    pub values: Vec<f64>,
    /// The aggregate function used.
    pub agg: AggFn,
}

impl AggregatedTimeSeries {
    /// Number of points `n`.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};

    fn sample() -> Relation {
        let schema = Schema::new(vec![
            Field::dimension("date"),
            Field::dimension("state"),
            Field::measure("cases"),
            Field::measure("weight"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        let rows = [
            ("d2", "NY", 20.0, 2.0),
            ("d1", "NY", 10.0, 2.0),
            ("d1", "CA", 4.0, 3.0),
            ("d2", "CA", 6.0, 3.0),
        ];
        for (d, s, c, w) in rows {
            b.push_row(vec![d.into(), s.into(), c.into(), w.into()])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn sum_group_by_time() {
        let ts = AggQuery::sum("date", "cases").run(&sample()).unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.timestamps[0], AttrValue::from("d1"));
        assert_eq!(ts.values, vec![14.0, 26.0]);
    }

    #[test]
    fn count_group_by_time() {
        let ts = AggQuery::count("date", "cases").run(&sample()).unwrap();
        assert_eq!(ts.values, vec![2.0, 2.0]);
    }

    #[test]
    fn avg_group_by_time() {
        let q = AggQuery::new("date", AggFn::Avg, MeasureExpr::column("cases"));
        let ts = q.run(&sample()).unwrap();
        assert_eq!(ts.values, vec![7.0, 13.0]);
    }

    #[test]
    fn weighted_product_measure() {
        // SUM(cases * weight) / 10 — the S&P 500 index shape.
        let q = AggQuery::new(
            "date",
            AggFn::Sum,
            MeasureExpr::product("cases", "weight").scaled(0.1),
        );
        let ts = q.run(&sample()).unwrap();
        // d1: 10*2 + 4*3 = 32; d2: 20*2 + 6*3 = 58
        assert_eq!(ts.values, vec![3.2, 5.8]);
    }

    #[test]
    fn timestamps_sorted_regardless_of_insert_order() {
        let ts = AggQuery::sum("date", "cases").run(&sample()).unwrap();
        assert!(ts.timestamps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unknown_measure_errors() {
        assert!(AggQuery::sum("date", "nope").run(&sample()).is_err());
    }

    #[test]
    fn display_reads_like_sql() {
        let q = AggQuery::sum("date", "cases");
        assert_eq!(
            q.to_string(),
            "SELECT date, SUM(cases) FROM R GROUP BY date"
        );
    }
}
