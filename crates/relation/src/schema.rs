use std::collections::HashMap;

use crate::error::RelationError;

/// Whether a column holds dimension members or numeric measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// A categorical attribute, dictionary encoded. Explain-by attributes
    /// and the time dimension are dimensions.
    Dimension,
    /// A numeric `f64` attribute that aggregate functions operate on.
    Measure,
}

/// One named, typed column of a [`Schema`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    name: String,
    ty: ColumnType,
}

impl Field {
    /// Declares a dimension field.
    pub fn dimension(name: impl Into<String>) -> Self {
        Field {
            name: name.into(),
            ty: ColumnType::Dimension,
        }
    }

    /// Declares a measure field.
    pub fn measure(name: impl Into<String>) -> Self {
        Field {
            name: name.into(),
            ty: ColumnType::Measure,
        }
    }

    /// The field's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field's column type.
    pub fn column_type(&self) -> ColumnType {
        self.ty
    }
}

/// An ordered list of uniquely-named fields.
#[derive(Clone, Debug)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate field names.
    pub fn new(fields: Vec<Field>) -> Result<Self, RelationError> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name.clone(), i).is_some() {
                return Err(RelationError::DuplicateField(f.name.clone()));
            }
        }
        Ok(Schema { fields, by_name })
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// The positional index of `name`.
    pub fn index_of(&self, name: &str) -> Result<usize, RelationError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| RelationError::UnknownField(name.to_string()))
    }

    /// The field at position `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// The index of `name`, checked to be a dimension.
    pub fn dimension_index(&self, name: &str) -> Result<usize, RelationError> {
        let idx = self.index_of(name)?;
        match self.fields[idx].ty {
            ColumnType::Dimension => Ok(idx),
            ColumnType::Measure => Err(RelationError::NotADimension(name.to_string())),
        }
    }

    /// The index of `name`, checked to be a measure.
    pub fn measure_index(&self, name: &str) -> Result<usize, RelationError> {
        let idx = self.index_of(name)?;
        match self.fields[idx].ty {
            ColumnType::Measure => Ok(idx),
            ColumnType::Dimension => Err(RelationError::NotAMeasure(name.to_string())),
        }
    }

    /// Names of all dimension fields, in declaration order.
    pub fn dimension_names(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.ty == ColumnType::Dimension)
            .map(|f| f.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::dimension("date"),
            Field::dimension("state"),
            Field::measure("cases"),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![Field::dimension("a"), Field::measure("a")]).unwrap_err();
        assert_eq!(err, RelationError::DuplicateField("a".into()));
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("state").unwrap(), 1);
        assert!(s.index_of("nope").is_err());
    }

    #[test]
    fn type_checked_lookups() {
        let s = sample();
        assert_eq!(s.dimension_index("state").unwrap(), 1);
        assert_eq!(s.measure_index("cases").unwrap(), 2);
        assert_eq!(
            s.dimension_index("cases").unwrap_err(),
            RelationError::NotADimension("cases".into())
        );
        assert_eq!(
            s.measure_index("date").unwrap_err(),
            RelationError::NotAMeasure("date".into())
        );
    }

    #[test]
    fn dimension_names_in_order() {
        assert_eq!(sample().dimension_names(), vec!["date", "state"]);
    }
}
