use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Decomposable aggregate state: `(count, sum, sum of squares)`.
///
/// The state forms an abelian group under [`AggState::merge`] /
/// [`AggState::remove`], which is exactly what the paper's precomputation
/// module relies on (§5.2): for decomposable aggregates such as SUM, AVG and
/// Variance, the series of the complement relation `R − σ_E R` is derived by
/// *subtracting* the slice's state from the total state — no second scan.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AggState {
    /// Number of observed rows.
    pub count: f64,
    /// Sum of observed measure values.
    pub sum: f64,
    /// Sum of squared measure values (for VARIANCE).
    pub sumsq: f64,
}

impl AggState {
    /// The empty (identity) state.
    pub const ZERO: AggState = AggState {
        count: 0.0,
        sum: 0.0,
        sumsq: 0.0,
    };

    /// State of a single observation.
    pub fn of(v: f64) -> Self {
        AggState {
            count: 1.0,
            sum: v,
            sumsq: v * v,
        }
    }

    /// Folds one observation into the state.
    pub fn observe(&mut self, v: f64) {
        self.count += 1.0;
        self.sum += v;
        self.sumsq += v * v;
    }

    /// Group addition.
    pub fn merge(self, other: AggState) -> AggState {
        self + other
    }

    /// Group subtraction (removal of a sub-population's state).
    pub fn remove(self, other: AggState) -> AggState {
        self - other
    }

    /// Evaluates the aggregate function on this state.
    ///
    /// Empty states evaluate to 0 for AVG/VARIANCE, mirroring SQL's
    /// NULL-as-missing behaviour for the purposes of time-series plotting.
    pub fn value(&self, f: AggFn) -> f64 {
        match f {
            AggFn::Sum => self.sum,
            AggFn::Count => self.count,
            AggFn::Avg => {
                if self.count > 0.0 {
                    self.sum / self.count
                } else {
                    0.0
                }
            }
            AggFn::Variance => {
                if self.count > 0.0 {
                    let mean = self.sum / self.count;
                    (self.sumsq / self.count - mean * mean).max(0.0)
                } else {
                    0.0
                }
            }
        }
    }
}

impl Add for AggState {
    type Output = AggState;
    fn add(self, rhs: AggState) -> AggState {
        AggState {
            count: self.count + rhs.count,
            sum: self.sum + rhs.sum,
            sumsq: self.sumsq + rhs.sumsq,
        }
    }
}

impl AddAssign for AggState {
    fn add_assign(&mut self, rhs: AggState) {
        *self = *self + rhs;
    }
}

impl Sub for AggState {
    type Output = AggState;
    fn sub(self, rhs: AggState) -> AggState {
        AggState {
            count: self.count - rhs.count,
            sum: self.sum - rhs.sum,
            sumsq: self.sumsq - rhs.sumsq,
        }
    }
}

impl SubAssign for AggState {
    fn sub_assign(&mut self, rhs: AggState) {
        *self = *self - rhs;
    }
}

/// The aggregate functions supported by the engine.
///
/// All four are decomposable over [`AggState`] (paper §5.2: "most aggregate
/// function f(M) is decomposable, e.g., SUM, AVG, Variance").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// `SUM(M)`
    Sum,
    /// `COUNT(M)` (row count)
    Count,
    /// `AVG(M)`
    Avg,
    /// Population variance of `M`.
    Variance,
}

impl AggFn {
    /// All supported aggregate functions.
    pub const ALL: [AggFn; 4] = [AggFn::Sum, AggFn::Count, AggFn::Avg, AggFn::Variance];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_of(vs: &[f64]) -> AggState {
        let mut s = AggState::ZERO;
        for &v in vs {
            s.observe(v);
        }
        s
    }

    #[test]
    fn sum_count_avg() {
        let s = state_of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.value(AggFn::Sum), 6.0);
        assert_eq!(s.value(AggFn::Count), 3.0);
        assert_eq!(s.value(AggFn::Avg), 2.0);
    }

    #[test]
    fn variance_is_population_variance() {
        let s = state_of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.value(AggFn::Variance) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_state_values() {
        let s = AggState::ZERO;
        assert_eq!(s.value(AggFn::Sum), 0.0);
        assert_eq!(s.value(AggFn::Avg), 0.0);
        assert_eq!(s.value(AggFn::Variance), 0.0);
    }

    #[test]
    fn merge_then_remove_is_identity() {
        let a = state_of(&[1.0, 5.0]);
        let b = state_of(&[2.0]);
        let merged = a.merge(b);
        let back = merged.remove(b);
        assert!((back.count - a.count).abs() < 1e-12);
        assert!((back.sum - a.sum).abs() < 1e-12);
        assert!((back.sumsq - a.sumsq).abs() < 1e-12);
    }

    #[test]
    fn removal_matches_complement_semantics() {
        // f(M, R - σ_E R): removing the slice's state gives the aggregate of
        // the remaining rows.
        let all = state_of(&[10.0, 20.0, 30.0]);
        let slice = state_of(&[20.0]);
        let rest = all.remove(slice);
        assert_eq!(rest.value(AggFn::Sum), 40.0);
        assert_eq!(rest.value(AggFn::Count), 2.0);
        assert_eq!(rest.value(AggFn::Avg), 20.0);
    }

    #[test]
    fn variance_never_negative_after_roundtrip() {
        let s = state_of(&[1e9, 1e9 + 1.0]);
        assert!(s.value(AggFn::Variance) >= 0.0);
    }
}
