use std::fmt;
use std::sync::Arc;

/// A dimension attribute value.
///
/// Dimension columns are dictionary encoded; the dictionary stores
/// `AttrValue`s in sorted order so that dictionary codes are ordinal. Time
/// dimensions rely on this: ISO-formatted date strings (`"2020-01-22"`) sort
/// lexicographically in chronological order, and integer timestamps sort
/// numerically.
///
/// Integers order before strings so that a (discouraged) mixed-type column
/// still has a total order.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrValue {
    /// An integer-valued dimension member, e.g. `Pack = 12`.
    Int(i64),
    /// A string-valued dimension member, e.g. `state = "NY"`.
    Str(Arc<str>),
}

impl AttrValue {
    /// Returns the string payload if this is a [`AttrValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            AttrValue::Int(_) => None,
        }
    }

    /// Returns the integer payload if this is an [`AttrValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            AttrValue::Str(_) => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(Arc::from(v))
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_payloads() {
        assert_eq!(AttrValue::from(12).to_string(), "12");
        assert_eq!(AttrValue::from("NY").to_string(), "NY");
    }

    #[test]
    fn iso_dates_sort_chronologically() {
        let a = AttrValue::from("2020-01-22");
        let b = AttrValue::from("2020-02-01");
        let c = AttrValue::from("2020-12-31");
        assert!(a < b && b < c);
    }

    #[test]
    fn ints_sort_numerically_and_before_strings() {
        assert!(AttrValue::from(2) < AttrValue::from(10));
        assert!(AttrValue::from(999) < AttrValue::from("0"));
    }

    #[test]
    fn accessors_roundtrip() {
        assert_eq!(AttrValue::from(7).as_int(), Some(7));
        assert_eq!(AttrValue::from(7).as_str(), None);
        assert_eq!(AttrValue::from("x").as_str(), Some("x"));
        assert_eq!(AttrValue::from("x").as_int(), None);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(AttrValue::from("CA"), AttrValue::from(String::from("CA")));
        assert_ne!(AttrValue::from("CA"), AttrValue::from("TX"));
        assert_ne!(AttrValue::from(1), AttrValue::from("1"));
    }
}
