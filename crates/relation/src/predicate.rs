use std::fmt;

use crate::error::RelationError;
use crate::relation::Relation;
use crate::value::AttrValue;

/// An equality predicate `attribute = value` over a dimension attribute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Predicate {
    attr: String,
    value: AttrValue,
}

impl Predicate {
    /// Builds `attr = value`.
    pub fn equals(attr: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        Predicate {
            attr: attr.into(),
            value: value.into(),
        }
    }

    /// The predicated attribute name.
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// The value the attribute must equal.
    pub fn value(&self) -> &AttrValue {
        &self.value
    }

    /// Evaluates the predicate on one row of `rel`.
    pub fn matches(&self, rel: &Relation, row: usize) -> Result<bool, RelationError> {
        let col = rel.dim_column(&self.attr)?;
        Ok(match col.dict().code_of(&self.value) {
            Some(code) => col.codes()[row] == code,
            None => false,
        })
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.attr, self.value)
    }
}

/// A conjunction of equality predicates — the shape of an explanation
/// (Definition 3.1: `E = (A1=a1 & … & Aβ=aβ)`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Conjunction {
    preds: Vec<Predicate>,
}

impl Conjunction {
    /// The empty conjunction (matches every row).
    pub fn new() -> Self {
        Conjunction::default()
    }

    /// Builds a conjunction from predicates.
    pub fn of(preds: Vec<Predicate>) -> Self {
        Conjunction { preds }
    }

    /// Adds a predicate; builder style.
    pub fn and(mut self, pred: Predicate) -> Self {
        self.preds.push(pred);
        self
    }

    /// The predicates of the conjunction.
    pub fn predicates(&self) -> &[Predicate] {
        &self.preds
    }

    /// The order β of the conjunction (number of predicates).
    pub fn order(&self) -> usize {
        self.preds.len()
    }

    /// Evaluates the conjunction on one row.
    pub fn matches(&self, rel: &Relation, row: usize) -> Result<bool, RelationError> {
        for p in &self.preds {
            if !p.matches(rel, row)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.preds.is_empty() {
            return write!(f, "TRUE");
        }
        for (i, p) in self.preds.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Datum;
    use crate::schema::{Field, Schema};

    fn sample() -> Relation {
        let schema = Schema::new(vec![
            Field::dimension("state"),
            Field::dimension("pack"),
            Field::measure("sold"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for (s, p, v) in [("NY", 6, 1.0), ("CA", 12, 2.0), ("NY", 12, 3.0)] {
            b.push_row(vec![Datum::from(s), Datum::from(p as i64), Datum::from(v)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn predicate_matches_rows() {
        let rel = sample();
        let p = Predicate::equals("state", "NY");
        assert!(p.matches(&rel, 0).unwrap());
        assert!(!p.matches(&rel, 1).unwrap());
        assert!(p.matches(&rel, 2).unwrap());
    }

    #[test]
    fn predicate_on_absent_value_matches_nothing() {
        let rel = sample();
        let p = Predicate::equals("state", "TX");
        for row in 0..3 {
            assert!(!p.matches(&rel, row).unwrap());
        }
    }

    #[test]
    fn conjunction_requires_all() {
        let rel = sample();
        let c = Conjunction::new()
            .and(Predicate::equals("state", "NY"))
            .and(Predicate::equals("pack", 12i64));
        assert!(!c.matches(&rel, 0).unwrap());
        assert!(!c.matches(&rel, 1).unwrap());
        assert!(c.matches(&rel, 2).unwrap());
    }

    #[test]
    fn empty_conjunction_matches_all() {
        let rel = sample();
        let c = Conjunction::new();
        assert!(c.matches(&rel, 0).unwrap());
        assert_eq!(c.to_string(), "TRUE");
    }

    #[test]
    fn display_joins_with_ampersand() {
        let c = Conjunction::new()
            .and(Predicate::equals("BV", 1750i64))
            .and(Predicate::equals("P", 6i64));
        assert_eq!(c.to_string(), "BV=1750 & P=6");
    }

    #[test]
    fn unknown_attr_errors() {
        let rel = sample();
        let p = Predicate::equals("nope", "x");
        assert!(p.matches(&rel, 0).is_err());
    }
}
