//! Minimal CSV ingestion so real exports (JHU, Iowa liquor, …) can be
//! loaded without extra dependencies.
//!
//! Supported: comma separation, `"`-quoting with `""` escapes, a header
//! row naming the columns. Values in measure columns must parse as `f64`;
//! dimension values that parse as integers become [`AttrValue::Int`],
//! everything else [`AttrValue::Str`].

use crate::builder::Datum;
use crate::error::RelationError;
use crate::relation::Relation;
use crate::schema::{ColumnType, Schema};
use crate::value::AttrValue;

/// Parses one CSV record (without the trailing newline).
fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if field.is_empty() && !quoted => quoted = true,
            ',' if !quoted => {
                fields.push(std::mem::take(&mut field));
            }
            c => field.push(c),
        }
    }
    fields.push(field);
    fields
}

/// Builds a relation from CSV text. The header row must contain every
/// field of `schema` (extra columns are ignored; order is free).
///
/// ```
/// use tsexplain_relation::{csv_to_relation, Field, Schema};
/// let schema = Schema::new(vec![
///     Field::dimension("date"),
///     Field::dimension("state"),
///     Field::measure("cases"),
/// ]).unwrap();
/// let text = "state,cases,date\nNY,12,2020-03-01\nCA,5,2020-03-01\n";
/// let relation = csv_to_relation(text, schema).unwrap();
/// assert_eq!(relation.n_rows(), 2);
/// ```
pub fn csv_to_relation(text: &str, schema: Schema) -> Result<Relation, RelationError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or(RelationError::EmptyRelation)
        .map(split_record)?;
    // Map each schema field to its CSV column index.
    let mut mapping = Vec::with_capacity(schema.len());
    for field in schema.fields() {
        let idx = header
            .iter()
            .position(|h| h.trim() == field.name())
            .ok_or_else(|| RelationError::UnknownField(field.name().to_string()))?;
        mapping.push((idx, field.name().to_string(), field.column_type()));
    }

    let mut builder = Relation::builder(schema.clone());
    for line in lines {
        let record = split_record(line);
        let mut row = Vec::with_capacity(mapping.len());
        for (idx, name, ty) in &mapping {
            let raw = record.get(*idx).map(|s| s.trim()).unwrap_or("");
            row.push(match ty {
                ColumnType::Measure => {
                    let v: f64 = raw.parse().map_err(|_| RelationError::TypeMismatch {
                        field: name.clone(),
                        expected: "measure",
                    })?;
                    Datum::Num(v)
                }
                ColumnType::Dimension => match raw.parse::<i64>() {
                    Ok(i) => Datum::Attr(AttrValue::Int(i)),
                    Err(_) => Datum::Attr(AttrValue::from(raw)),
                },
            });
        }
        builder.push_row(row)?;
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::AggQuery;
    use crate::schema::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::dimension("date"),
            Field::dimension("state"),
            Field::measure("cases"),
        ])
        .unwrap()
    }

    #[test]
    fn parses_simple_csv() {
        let text = "date,state,cases\n2020-03-01,NY,12\n2020-03-02,NY,20\n";
        let rel = csv_to_relation(text, schema()).unwrap();
        assert_eq!(rel.n_rows(), 2);
        assert_eq!(rel.measure("cases").unwrap(), &[12.0, 20.0]);
        let ts = AggQuery::sum("date", "cases").run(&rel).unwrap();
        assert_eq!(ts.values, vec![12.0, 20.0]);
    }

    #[test]
    fn header_order_is_free_and_extras_ignored() {
        let text = "extra,state,cases,date\nx,NY,1,2020-01-01\ny,CA,2,2020-01-02\n";
        let rel = csv_to_relation(text, schema()).unwrap();
        assert_eq!(rel.n_rows(), 2);
        assert_eq!(
            rel.dim_column("state").unwrap().value_at(1),
            &AttrValue::from("CA")
        );
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let text = "date,state,cases\n2020-01-01,\"New York, NY\",3\n2020-01-02,\"He said \"\"hi\"\"\",4\n";
        let rel = csv_to_relation(text, schema()).unwrap();
        assert_eq!(
            rel.dim_column("state").unwrap().value_at(0),
            &AttrValue::from("New York, NY")
        );
        assert_eq!(
            rel.dim_column("state").unwrap().value_at(1),
            &AttrValue::from("He said \"hi\"")
        );
    }

    #[test]
    fn integer_dimensions_become_ints() {
        let s = Schema::new(vec![Field::dimension("pack"), Field::measure("v")]).unwrap();
        let rel = csv_to_relation("pack,v\n12,1.5\n6,2\n", s).unwrap();
        assert_eq!(
            rel.dim_column("pack").unwrap().value_at(0),
            &AttrValue::Int(12)
        );
    }

    #[test]
    fn missing_column_errors() {
        let err = csv_to_relation("date,cases\n2020,1\n", schema()).unwrap_err();
        assert_eq!(err, RelationError::UnknownField("state".into()));
    }

    #[test]
    fn bad_measure_errors() {
        let err = csv_to_relation("date,state,cases\n2020,NY,many\n", schema()).unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
    }

    #[test]
    fn empty_input_errors() {
        assert_eq!(
            csv_to_relation("", schema()).unwrap_err(),
            RelationError::EmptyRelation
        );
    }

    #[test]
    fn blank_lines_skipped() {
        let text = "date,state,cases\n\n2020-01-01,NY,1\n\n";
        let rel = csv_to_relation(text, schema()).unwrap();
        assert_eq!(rel.n_rows(), 1);
    }
}
