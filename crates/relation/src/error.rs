use std::fmt;

/// Errors produced by the relational substrate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelationError {
    /// Two fields in a schema share a name.
    DuplicateField(String),
    /// A referenced field does not exist in the schema.
    UnknownField(String),
    /// A row value's type does not match its field's column type.
    TypeMismatch {
        /// The offending field.
        field: String,
        /// What the schema expects ("dimension" / "measure").
        expected: &'static str,
    },
    /// A row has the wrong number of values.
    ArityMismatch {
        /// Fields declared in the schema.
        expected: usize,
        /// Values supplied in the row.
        got: usize,
    },
    /// The referenced field exists but is not a dimension.
    NotADimension(String),
    /// The referenced field exists but is not a measure.
    NotAMeasure(String),
    /// An operation that needs rows was given an empty relation.
    EmptyRelation,
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::DuplicateField(name) => {
                write!(f, "duplicate field name in schema: {name:?}")
            }
            RelationError::UnknownField(name) => write!(f, "unknown field: {name:?}"),
            RelationError::TypeMismatch { field, expected } => {
                write!(f, "field {field:?} expects a {expected} value")
            }
            RelationError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row has {got} values but the schema has {expected} fields"
                )
            }
            RelationError::NotADimension(name) => {
                write!(f, "field {name:?} is not a dimension")
            }
            RelationError::NotAMeasure(name) => write!(f, "field {name:?} is not a measure"),
            RelationError::EmptyRelation => write!(f, "operation requires a non-empty relation"),
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = RelationError::UnknownField("statee".into());
        assert!(e.to_string().contains("statee"));
        let e = RelationError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
    }
}
