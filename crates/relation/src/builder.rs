use crate::column::{Column, DimColumn};
use crate::error::RelationError;
use crate::relation::Relation;
use crate::schema::{ColumnType, Schema};
use crate::value::AttrValue;

/// A single row value handed to [`RelationBuilder::push_row`].
///
/// The builder coerces by schema: dimension fields accept [`Datum::Attr`]
/// (and [`Datum::Num`] with an integral value); measure fields accept
/// [`Datum::Num`] and integer [`Datum::Attr`]s.
#[derive(Clone, Debug, PartialEq)]
pub enum Datum {
    /// A dimension member.
    Attr(AttrValue),
    /// A numeric measure value.
    Num(f64),
}

impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Attr(v.into())
    }
}

impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Attr(v.into())
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Attr(v.into())
    }
}

impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Num(v)
    }
}

impl From<AttrValue> for Datum {
    fn from(v: AttrValue) -> Self {
        Datum::Attr(v)
    }
}

/// Row-oriented builder for [`Relation`].
///
/// Dictionaries are built (sorted) once at [`RelationBuilder::finish`], so
/// dictionary codes are ordinal regardless of insertion order.
pub struct RelationBuilder {
    schema: Schema,
    dim_values: Vec<Vec<AttrValue>>,
    measures: Vec<Vec<f64>>,
    rows: usize,
}

impl RelationBuilder {
    pub(crate) fn new(schema: Schema) -> Self {
        let mut dim_values = Vec::new();
        let mut measures = Vec::new();
        for f in schema.fields() {
            match f.column_type() {
                ColumnType::Dimension => dim_values.push(Vec::new()),
                ColumnType::Measure => measures.push(Vec::new()),
            }
        }
        RelationBuilder {
            schema,
            dim_values,
            measures,
            rows: 0,
        }
    }

    /// Appends one row; values must match the schema order.
    pub fn push_row(&mut self, row: Vec<Datum>) -> Result<(), RelationError> {
        if row.len() != self.schema.len() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        // Validate everything before touching the buffers so a failed push
        // leaves the builder unchanged.
        let mut staged_dims: Vec<AttrValue> = Vec::new();
        let mut staged_measures: Vec<f64> = Vec::new();
        for (field, datum) in self.schema.fields().iter().zip(&row) {
            match (field.column_type(), datum) {
                (ColumnType::Dimension, Datum::Attr(v)) => staged_dims.push(v.clone()),
                (ColumnType::Dimension, Datum::Num(_)) => {
                    return Err(RelationError::TypeMismatch {
                        field: field.name().to_string(),
                        expected: "dimension",
                    })
                }
                (ColumnType::Measure, Datum::Num(v)) => staged_measures.push(*v),
                (ColumnType::Measure, Datum::Attr(AttrValue::Int(i))) => {
                    staged_measures.push(*i as f64)
                }
                (ColumnType::Measure, Datum::Attr(_)) => {
                    return Err(RelationError::TypeMismatch {
                        field: field.name().to_string(),
                        expected: "measure",
                    })
                }
            }
        }
        let mut di = 0;
        let mut mi = 0;
        for field in self.schema.fields() {
            match field.column_type() {
                ColumnType::Dimension => {
                    self.dim_values[di].push(staged_dims[di].clone());
                    di += 1;
                }
                ColumnType::Measure => {
                    self.measures[mi].push(staged_measures[mi]);
                    mi += 1;
                }
            }
        }
        self.rows += 1;
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Finalizes the relation, building sorted dictionaries.
    pub fn finish(self) -> Relation {
        let mut columns = Vec::with_capacity(self.schema.len());
        let mut dims = self.dim_values.into_iter();
        let mut ms = self.measures.into_iter();
        for f in self.schema.fields() {
            match f.column_type() {
                ColumnType::Dimension => {
                    let values = dims.next().expect("one buffer per dimension");
                    columns.push(Column::Dimension(DimColumn::from_values(values)));
                }
                ColumnType::Measure => {
                    let values = ms.next().expect("one buffer per measure");
                    columns.push(Column::Measure(values));
                }
            }
        }
        Relation::from_parts(self.schema, columns, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::dimension("date"),
            Field::dimension("pack"),
            Field::measure("sold"),
        ])
        .unwrap()
    }

    #[test]
    fn builds_rows() {
        let mut b = Relation::builder(schema());
        b.push_row(vec!["d1".into(), 6i64.into(), 2.0.into()])
            .unwrap();
        b.push_row(vec!["d2".into(), 12i64.into(), 3.0.into()])
            .unwrap();
        let rel = b.finish();
        assert_eq!(rel.n_rows(), 2);
        assert_eq!(rel.measure("sold").unwrap(), &[2.0, 3.0]);
        rel.check_invariants().unwrap();
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = Relation::builder(schema());
        let err = b.push_row(vec!["d1".into()]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
        assert_eq!(b.n_rows(), 0);
    }

    #[test]
    fn type_mismatch_rejected_atomically() {
        let mut b = Relation::builder(schema());
        // Third field is a measure; a string is not acceptable.
        let err = b
            .push_row(vec!["d1".into(), 6i64.into(), "oops".into()])
            .unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
        assert_eq!(b.n_rows(), 0);
        // Builder still usable.
        b.push_row(vec!["d1".into(), 6i64.into(), 1.0.into()])
            .unwrap();
        assert_eq!(b.n_rows(), 1);
    }

    #[test]
    fn integer_coerces_into_measure() {
        let mut b = Relation::builder(schema());
        b.push_row(vec![
            "d1".into(),
            6i64.into(),
            Datum::Attr(AttrValue::Int(4)),
        ])
        .unwrap();
        let rel = b.finish();
        assert_eq!(rel.measure("sold").unwrap(), &[4.0]);
    }

    #[test]
    fn float_rejected_for_dimension() {
        let mut b = Relation::builder(schema());
        let err = b
            .push_row(vec![Datum::Num(1.5), 6i64.into(), 1.0.into()])
            .unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
    }

    #[test]
    fn empty_finish() {
        let rel = Relation::builder(schema()).finish();
        assert!(rel.is_empty());
        rel.check_invariants().unwrap();
    }
}
