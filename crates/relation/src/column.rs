use crate::dict::Dictionary;
use crate::value::AttrValue;

/// A dictionary-encoded dimension column: per-row codes into a sorted
/// [`Dictionary`].
#[derive(Clone, Debug)]
pub struct DimColumn {
    dict: Dictionary,
    codes: Vec<u32>,
}

impl DimColumn {
    /// Builds a column from raw per-row values.
    pub fn from_values(values: Vec<AttrValue>) -> Self {
        let dict = Dictionary::from_values(values.iter().cloned());
        let codes = values
            .iter()
            .map(|v| dict.code_of(v).expect("value came from the same set"))
            .collect();
        DimColumn { dict, codes }
    }

    /// The column's dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Per-row dictionary codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The decoded value of row `row`.
    pub fn value_at(&self, row: usize) -> &AttrValue {
        self.dict.value(self.codes[row])
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// A copy of this column restricted to the rows selected by `keep`.
    pub fn gather(&self, keep: &[usize]) -> Self {
        let values = keep.iter().map(|&r| self.value_at(r).clone()).collect();
        DimColumn::from_values(values)
    }
}

/// A relation column: either a dimension or a measure.
#[derive(Clone, Debug)]
pub enum Column {
    /// Dictionary-encoded categorical column.
    Dimension(DimColumn),
    /// Plain numeric column.
    Measure(Vec<f64>),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Dimension(d) => d.len(),
            Column::Measure(m) => m.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy restricted to the rows selected by `keep`.
    pub fn gather(&self, keep: &[usize]) -> Self {
        match self {
            Column::Dimension(d) => Column::Dimension(d.gather(keep)),
            Column::Measure(m) => Column::Measure(keep.iter().map(|&r| m[r]).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_codes() {
        let col = DimColumn::from_values(["NY", "CA", "NY"].map(AttrValue::from).to_vec());
        assert_eq!(col.len(), 3);
        assert_eq!(col.value_at(0), &AttrValue::from("NY"));
        assert_eq!(col.value_at(1), &AttrValue::from("CA"));
        assert_eq!(col.codes()[0], col.codes()[2]);
        assert_eq!(col.dict().len(), 2);
    }

    #[test]
    fn gather_selects_rows() {
        let col = DimColumn::from_values(["a", "b", "c", "b"].map(AttrValue::from).to_vec());
        let g = col.gather(&[1, 3]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.value_at(0), &AttrValue::from("b"));
        assert_eq!(g.value_at(1), &AttrValue::from("b"));
        assert_eq!(g.dict().len(), 1);
    }

    #[test]
    fn measure_gather() {
        let col = Column::Measure(vec![1.0, 2.0, 3.0]);
        match col.gather(&[2, 0]) {
            Column::Measure(m) => assert_eq!(m, vec![3.0, 1.0]),
            Column::Dimension(_) => panic!("expected measure"),
        }
    }
}
