//! # tsexplain-relation
//!
//! The in-memory relational substrate used by TSExplain (ICDE 2023).
//!
//! The paper assumes an interactive analytics setting where a relation is
//! held in memory (integrated with tools like PowerBI) and aggregated time
//! series are produced by group-by queries of the form
//! `SELECT T, f(M) FROM R GROUP BY T` (paper §3.1.2). This crate provides:
//!
//! * [`Relation`] — a dictionary-encoded columnar store with dimension and
//!   measure columns,
//! * [`Predicate`]/[`Conjunction`] — equality predicates and conjunctions
//!   (the "data slice" vocabulary of explanations, Definition 3.1),
//! * [`AggState`]/[`AggFn`] — *decomposable* aggregate state supporting both
//!   merge and removal, which is what makes the absolute-change difference
//!   score (Definition 3.2) an O(1) endpoint computation (paper §5.2),
//! * [`AggQuery`] — the "what happened" group-by query producing an
//!   [`AggregatedTimeSeries`].
//!
//! Everything is deliberately simple, deterministic and single-threaded so
//! the complexity analysis of the paper carries over directly.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
mod agg;
mod builder;
mod column;
mod csv;
mod dict;
mod error;
mod predicate;
mod query;
mod relation;
mod schema;
mod serde_impls;
mod value;

pub use agg::{AggFn, AggState};
pub use builder::{Datum, RelationBuilder};
pub use column::{Column, DimColumn};
pub use csv::csv_to_relation;
pub use dict::Dictionary;
pub use error::RelationError;
pub use predicate::{Conjunction, Predicate};
pub use query::{AggQuery, AggregatedTimeSeries, MeasureExpr};
pub use relation::Relation;
pub use schema::{ColumnType, Field, Schema};
pub use serde_impls::{decode_wire_row, encode_wire_row};
pub use value::AttrValue;
