use crate::builder::RelationBuilder;
use crate::column::{Column, DimColumn};
use crate::error::RelationError;
use crate::predicate::Conjunction;
use crate::schema::{ColumnType, Schema};

/// An in-memory columnar relation.
///
/// Dimension columns are dictionary encoded ([`DimColumn`]); measure columns
/// are dense `f64`. Relations are immutable once built — the OLAP operations
/// the paper mentions (slicing/dicing) produce new relations.
#[derive(Clone, Debug)]
pub struct Relation {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Relation {
    pub(crate) fn from_parts(schema: Schema, columns: Vec<Column>, rows: usize) -> Self {
        debug_assert_eq!(schema.len(), columns.len());
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        Relation {
            schema,
            columns,
            rows,
        }
    }

    /// Starts building a relation with `schema`.
    pub fn builder(schema: Schema) -> RelationBuilder {
        RelationBuilder::new(schema)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The column at schema position `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// The dimension column called `name`.
    pub fn dim_column(&self, name: &str) -> Result<&DimColumn, RelationError> {
        let idx = self.schema.dimension_index(name)?;
        match &self.columns[idx] {
            Column::Dimension(d) => Ok(d),
            Column::Measure(_) => unreachable!("schema says dimension"),
        }
    }

    /// The measure column called `name`.
    pub fn measure(&self, name: &str) -> Result<&[f64], RelationError> {
        let idx = self.schema.measure_index(name)?;
        match &self.columns[idx] {
            Column::Measure(m) => Ok(m),
            Column::Dimension(_) => unreachable!("schema says measure"),
        }
    }

    /// OLAP *slice*: rows where `conjunction` holds (a new relation).
    ///
    /// This is `σ_E R` from Definition 3.2. Single-predicate conjunctions are
    /// the classical slice; multi-predicate ones are the dice.
    pub fn select(&self, conjunction: &Conjunction) -> Result<Relation, RelationError> {
        let mut keep = Vec::new();
        for row in 0..self.rows {
            if conjunction.matches(self, row)? {
                keep.push(row);
            }
        }
        Ok(self.gather(&keep))
    }

    /// The complement of [`Relation::select`]: rows where `conjunction` does
    /// *not* hold (`R − σ_E R` from Definition 3.2).
    pub fn exclude(&self, conjunction: &Conjunction) -> Result<Relation, RelationError> {
        let mut keep = Vec::new();
        for row in 0..self.rows {
            if !conjunction.matches(self, row)? {
                keep.push(row);
            }
        }
        Ok(self.gather(&keep))
    }

    /// A new relation containing exactly the rows listed in `keep`.
    pub fn gather(&self, keep: &[usize]) -> Relation {
        let columns = self.columns.iter().map(|c| c.gather(keep)).collect();
        Relation::from_parts(self.schema.clone(), columns, keep.len())
    }

    /// Verifies internal invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.schema.len() != self.columns.len() {
            return Err("schema/column arity mismatch".into());
        }
        for (i, col) in self.columns.iter().enumerate() {
            if col.len() != self.rows {
                return Err(format!("column {i} has wrong length"));
            }
            let ty = self.schema.field(i).column_type();
            let ok = matches!(
                (ty, col),
                (ColumnType::Dimension, Column::Dimension(_))
                    | (ColumnType::Measure, Column::Measure(_))
            );
            if !ok {
                return Err(format!("column {i} type mismatch"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Datum;
    use crate::predicate::Predicate;
    use crate::schema::Field;

    fn sample() -> Relation {
        let schema = Schema::new(vec![
            Field::dimension("date"),
            Field::dimension("state"),
            Field::measure("cases"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        let rows = [
            ("d1", "NY", 10.0),
            ("d1", "CA", 5.0),
            ("d2", "NY", 20.0),
            ("d2", "CA", 6.0),
        ];
        for (d, s, v) in rows {
            b.push_row(vec![Datum::from(d), Datum::from(s), Datum::from(v)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn invariants_hold() {
        sample().check_invariants().unwrap();
    }

    #[test]
    fn select_filters_rows() {
        let rel = sample();
        let slice = rel
            .select(&Conjunction::new().and(Predicate::equals("state", "NY")))
            .unwrap();
        assert_eq!(slice.n_rows(), 2);
        assert_eq!(slice.measure("cases").unwrap(), &[10.0, 20.0]);
        slice.check_invariants().unwrap();
    }

    #[test]
    fn exclude_is_complement() {
        let rel = sample();
        let conj = Conjunction::new().and(Predicate::equals("state", "NY"));
        let inside = rel.select(&conj).unwrap();
        let outside = rel.exclude(&conj).unwrap();
        assert_eq!(inside.n_rows() + outside.n_rows(), rel.n_rows());
        assert_eq!(outside.measure("cases").unwrap(), &[5.0, 6.0]);
    }

    #[test]
    fn select_on_absent_value_yields_empty() {
        let rel = sample();
        let slice = rel
            .select(&Conjunction::new().and(Predicate::equals("state", "TX")))
            .unwrap();
        assert!(slice.is_empty());
        slice.check_invariants().unwrap();
    }

    #[test]
    fn dim_and_measure_accessors_type_check() {
        let rel = sample();
        assert!(rel.dim_column("state").is_ok());
        assert!(rel.dim_column("cases").is_err());
        assert!(rel.measure("cases").is_ok());
        assert!(rel.measure("state").is_err());
    }

    #[test]
    fn gather_preserves_order_given() {
        let rel = sample();
        let g = rel.gather(&[3, 0]);
        assert_eq!(g.measure("cases").unwrap(), &[6.0, 10.0]);
    }
}
