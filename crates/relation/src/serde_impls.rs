//! JSON serialization for substrate types (vendored-serde impls).
//!
//! [`AttrValue`] crosses the service boundary inside timestamps and
//! segment bounds. The encoding keeps the payload natural — integers as
//! JSON numbers, strings as JSON strings — which round-trips losslessly
//! because an `AttrValue` is exactly one of the two.

use serde::{Deserialize, Error, Serialize, Value};

use crate::value::AttrValue;

impl Serialize for AttrValue {
    fn serialize(&self) -> Value {
        match self {
            AttrValue::Int(i) => Value::Number(*i as f64),
            AttrValue::Str(s) => Value::String(s.to_string()),
        }
    }
}

impl Deserialize for AttrValue {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(_) => Ok(AttrValue::Int(i64::deserialize(value)?)),
            Value::String(s) => Ok(AttrValue::from(s.as_str())),
            other => Err(Error::new(format!(
                "expected number or string for an attribute value, got {}",
                other.type_name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_str_roundtrip_distinctly() {
        for v in [
            AttrValue::from(42),
            AttrValue::from(-3),
            AttrValue::from("NY"),
        ] {
            assert_eq!(AttrValue::deserialize(&v.serialize()), Ok(v));
        }
        // "42" the string and 42 the int stay distinguishable.
        let s = AttrValue::from("42");
        let i = AttrValue::from(42);
        assert_ne!(s.serialize(), i.serialize());
        assert_eq!(AttrValue::deserialize(&s.serialize()), Ok(s));
        assert_eq!(AttrValue::deserialize(&i.serialize()), Ok(i));
    }

    #[test]
    fn rejects_foreign_shapes() {
        assert!(AttrValue::deserialize(&Value::Bool(true)).is_err());
        assert!(AttrValue::deserialize(&Value::Number(1.5)).is_err());
        assert!(AttrValue::deserialize(&Value::Null).is_err());
    }
}
