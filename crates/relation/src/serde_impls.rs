//! JSON serialization for substrate types (vendored-serde impls).
//!
//! [`AttrValue`] crosses the service boundary inside timestamps and
//! segment bounds. The encoding keeps the payload natural — integers as
//! JSON numbers, strings as JSON strings — which round-trips losslessly
//! because an `AttrValue` is exactly one of the two.
//!
//! [`Schema`] and [`AggQuery`] cross the boundary in dataset-registration
//! payloads (`POST /datasets`): a schema is an array of
//! `{"name", "kind"}` fields, an aggregation query is
//! `{"time_attr", "agg", "measure"}` with measure expressions tagged by
//! `"op"`.

use serde::{Deserialize, Error, Serialize, Value};

use crate::agg::AggFn;
use crate::builder::Datum;
use crate::query::{AggQuery, MeasureExpr};
use crate::schema::{ColumnType, Field, Schema};
use crate::value::AttrValue;

/// Encodes one raw row as a heterogeneous JSON array in schema order
/// (`["2020-03-01", "NY", 17.0]`) — the row format shared by the HTTP wire
/// protocol and the durable WAL/snapshot layer.
pub fn encode_wire_row(row: &[Datum]) -> Value {
    Value::Array(
        row.iter()
            .map(|d| match d {
                Datum::Attr(v) => v.serialize(),
                Datum::Num(x) => x.serialize(),
            })
            .collect(),
    )
}

/// Decodes one wire row *schema-aware*: strings and integers in dimension
/// slots become attribute values, numbers in measure slots become `f64`s.
/// Any value in the wrong slot is rejected with the offending field named.
pub fn decode_wire_row(schema: &Schema, row: &Value) -> Result<Vec<Datum>, Error> {
    let cells = row
        .as_array()
        .ok_or_else(|| Error::new(format!("expected an array, got {}", row.type_name())))?;
    if cells.len() != schema.len() {
        return Err(Error::new(format!(
            "expected {} values (schema order), got {}",
            schema.len(),
            cells.len()
        )));
    }
    cells
        .iter()
        .zip(schema.fields())
        .map(|(cell, field)| match field.column_type() {
            ColumnType::Dimension => AttrValue::deserialize(cell)
                .map(Datum::Attr)
                .map_err(|e| Error::new(format!("dimension {:?}: {e}", field.name()))),
            ColumnType::Measure => f64::deserialize(cell)
                .map(Datum::Num)
                .map_err(|e| Error::new(format!("measure {:?}: {e}", field.name()))),
        })
        .collect()
}

impl Serialize for AttrValue {
    fn serialize(&self) -> Value {
        match self {
            AttrValue::Int(i) => Value::Number(*i as f64),
            AttrValue::Str(s) => Value::String(s.to_string()),
        }
    }
}

impl Deserialize for AttrValue {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(_) => Ok(AttrValue::Int(i64::deserialize(value)?)),
            Value::String(s) => Ok(AttrValue::from(s.as_str())),
            other => Err(Error::new(format!(
                "expected number or string for an attribute value, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for ColumnType {
    fn serialize(&self) -> Value {
        Value::String(
            match self {
                ColumnType::Dimension => "dimension",
                ColumnType::Measure => "measure",
            }
            .into(),
        )
    }
}

impl Deserialize for ColumnType {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.as_str() {
            Some("dimension") => Ok(ColumnType::Dimension),
            Some("measure") => Ok(ColumnType::Measure),
            _ => Err(Error::new(
                "expected column kind \"dimension\" or \"measure\"",
            )),
        }
    }
}

impl Serialize for Field {
    fn serialize(&self) -> Value {
        Value::object([
            ("name", Value::String(self.name().into())),
            ("kind", self.column_type().serialize()),
        ])
    }
}

impl Deserialize for Field {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let name: String = value.field("name")?;
        Ok(match value.field::<ColumnType>("kind")? {
            ColumnType::Dimension => Field::dimension(name),
            ColumnType::Measure => Field::measure(name),
        })
    }
}

impl Serialize for Schema {
    fn serialize(&self) -> Value {
        self.fields().serialize()
    }
}

impl Deserialize for Schema {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let fields: Vec<Field> = Vec::deserialize(value)?;
        Schema::new(fields).map_err(|e| Error::new(e.to_string()))
    }
}

impl Serialize for AggFn {
    fn serialize(&self) -> Value {
        Value::String(
            match self {
                AggFn::Sum => "sum",
                AggFn::Count => "count",
                AggFn::Avg => "avg",
                AggFn::Variance => "variance",
            }
            .into(),
        )
    }
}

impl Deserialize for AggFn {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.as_str() {
            Some("sum") => Ok(AggFn::Sum),
            Some("count") => Ok(AggFn::Count),
            Some("avg") => Ok(AggFn::Avg),
            Some("variance") => Ok(AggFn::Variance),
            _ => Err(Error::new(
                "expected aggregate \"sum\", \"count\", \"avg\" or \"variance\"",
            )),
        }
    }
}

impl Serialize for MeasureExpr {
    fn serialize(&self) -> Value {
        match self {
            MeasureExpr::Column(name) => Value::object([
                ("op", Value::String("column".into())),
                ("column", Value::String(name.clone())),
            ]),
            MeasureExpr::Product(a, b) => Value::object([
                ("op", Value::String("product".into())),
                ("left", Value::String(a.clone())),
                ("right", Value::String(b.clone())),
            ]),
            MeasureExpr::Scaled(inner, factor) => Value::object([
                ("op", Value::String("scaled".into())),
                ("expr", inner.serialize()),
                ("factor", factor.serialize()),
            ]),
        }
    }
}

impl Deserialize for MeasureExpr {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.get("op").and_then(Value::as_str) {
            Some("column") => Ok(MeasureExpr::Column(value.field("column")?)),
            Some("product") => Ok(MeasureExpr::Product(
                value.field("left")?,
                value.field("right")?,
            )),
            Some("scaled") => {
                let inner: MeasureExpr = value.field("expr")?;
                Ok(inner.scaled(value.field("factor")?))
            }
            _ => Err(Error::new(
                "expected measure op \"column\", \"product\" or \"scaled\"",
            )),
        }
    }
}

impl Serialize for AggQuery {
    fn serialize(&self) -> Value {
        Value::object([
            ("time_attr", Value::String(self.time_attr().into())),
            ("agg", self.agg().serialize()),
            ("measure", self.measure().serialize()),
        ])
    }
}

impl Deserialize for AggQuery {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(AggQuery::new(
            value.field::<String>("time_attr")?,
            value.field("agg")?,
            value.field("measure")?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_str_roundtrip_distinctly() {
        for v in [
            AttrValue::from(42),
            AttrValue::from(-3),
            AttrValue::from("NY"),
        ] {
            assert_eq!(AttrValue::deserialize(&v.serialize()), Ok(v));
        }
        // "42" the string and 42 the int stay distinguishable.
        let s = AttrValue::from("42");
        let i = AttrValue::from(42);
        assert_ne!(s.serialize(), i.serialize());
        assert_eq!(AttrValue::deserialize(&s.serialize()), Ok(s));
        assert_eq!(AttrValue::deserialize(&i.serialize()), Ok(i));
    }

    #[test]
    fn rejects_foreign_shapes() {
        assert!(AttrValue::deserialize(&Value::Bool(true)).is_err());
        assert!(AttrValue::deserialize(&Value::Number(1.5)).is_err());
        assert!(AttrValue::deserialize(&Value::Null).is_err());
    }

    #[test]
    fn schemas_roundtrip_and_reject_duplicates() {
        let schema = Schema::new(vec![
            Field::dimension("date"),
            Field::dimension("state"),
            Field::measure("sold"),
        ])
        .unwrap();
        let back = Schema::deserialize(&schema.serialize()).unwrap();
        assert_eq!(back.fields(), schema.fields());
        // Duplicate field names are rejected at the boundary, not later.
        let dup = Value::Array(vec![
            Field::dimension("a").serialize(),
            Field::measure("a").serialize(),
        ]);
        assert!(Schema::deserialize(&dup).is_err());
        assert!(ColumnType::deserialize(&Value::String("time".into())).is_err());
    }

    #[test]
    fn agg_queries_roundtrip_with_derived_measures() {
        let queries = [
            AggQuery::sum("date", "sold"),
            AggQuery::count("date", "sold"),
            AggQuery::new(
                "date",
                AggFn::Avg,
                MeasureExpr::product("price", "share").scaled(1.0 / 8933.0),
            ),
        ];
        for q in queries {
            let back = AggQuery::deserialize(&q.serialize()).unwrap();
            assert_eq!(back.time_attr(), q.time_attr());
            assert_eq!(back.agg(), q.agg());
            assert_eq!(back.measure(), q.measure());
        }
        assert!(AggFn::deserialize(&Value::String("median".into())).is_err());
        assert!(
            MeasureExpr::deserialize(&Value::object([("op", Value::String("sqrt".into()))]))
                .is_err()
        );
    }
}
