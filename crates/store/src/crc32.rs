//! CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant) over byte
//! slices — the integrity check every durable frame in the store carries.
//!
//! Hand-rolled table-driven implementation: the workspace vendors its few
//! dependencies, and a 30-line checksum does not justify one more.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"TSExplain"), crc32(b"TSExplain"));
    }

    #[test]
    fn single_bit_flips_change_the_sum() {
        let base = crc32(b"hello, durable world");
        let mut bytes = b"hello, durable world".to_vec();
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), base, "bit {i}");
            bytes[i / 8] ^= 1 << (i % 8);
        }
    }
}
