//! The [`DataStore`]: one data directory holding a WAL, tenant
//! checkpoints and demoted cube blobs.
//!
//! Layout under the root:
//!
//! ```text
//! meta.json            last checkpoint's {"next_id": N} (plain JSON)
//! wal/000001.wal …     CRC-framed record segments, replayed in order
//! tenants/t{id}.snap   one frame: tenant schema + query + rows (JSON)
//! cubes/t{id}-c{fp}.cube  one frame: a demoted cube's block snapshot
//! ```
//!
//! **Write path.** Every mutation is appended to the current WAL segment
//! as one CRC frame and fsynced before the caller acknowledges, so an
//! acked request survives a crash. Segments rotate at a size threshold.
//! A checkpoint cycle rotates to a fresh segment *first*
//! ([`DataStore::rotate_wal`]), then writes every tenant's full state to
//! `tenants/` (atomic tmp + rename), persists `next_id`, and deletes
//! only the pre-rotation segments ([`DataStore::checkpoint`]) — records
//! logged concurrently with the export land in the fresh segment and
//! survive, so no acked mutation can fall between a deleted log and a
//! snapshot that predates it.
//!
//! **Recovery.** [`DataStore::open`] loads the newest valid tenant
//! snapshots, then replays the WAL suffix on top: `Register` for an
//! already-snapshotted tenant is skipped, `Rows` batches below a
//! tenant's watermark are skipped (partially applied when they
//! straddle it — `seq` makes this exact), `Remove` tombstones drop the
//! tenant. Replay keeps the longest valid frame prefix: a torn tail or
//! checksum failure ends it, everything after is counted and reported,
//! and nothing ever panics on corrupt bytes. The torn segment is then
//! truncated to that prefix on disk (and beyond-prefix segments are
//! unlinked), so the next boot's replay continues cleanly into every
//! segment written after this recovery instead of re-stopping at the
//! same tear and discarding later acked records.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Serialize, Value};
use tsexplain_obs::Histogram;
use tsexplain_relation::{decode_wire_row, encode_wire_row, AggQuery, Datum, Schema};

use crate::error::StoreError;
use crate::frame::{append_frame, read_all, FrameEnd};
use crate::wal::WalRecord;

/// Rotate the active WAL segment once it exceeds this many bytes.
const SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// Default number of WAL appends between checkpoints (see
/// [`DataStore::wants_checkpoint`]).
const DEFAULT_CHECKPOINT_INTERVAL: u64 = 256;

/// A point-in-time copy of the store's monotone counters (the `/metrics`
/// `store` block).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreMetrics {
    /// WAL records appended (register + rows + remove).
    pub wal_appends: u64,
    /// Framed WAL bytes written.
    pub wal_bytes: u64,
    /// Snapshot files written (tenant checkpoints + demoted cubes).
    pub snapshots: u64,
    /// Tenants reconstructed by recovery-on-boot.
    pub recoveries: u64,
    /// Cubes demoted to disk by the eviction tier.
    pub demotions: u64,
    /// Cubes rehydrated from disk on a cache miss.
    pub rehydrations: u64,
}

/// One tenant as reconstructed by recovery: everything the registry
/// needs to rebuild the live session.
#[derive(Debug)]
pub struct RecoveredTenant {
    /// The tenant id it was registered under (preserved across reboots).
    pub id: u64,
    /// The relation's schema.
    pub schema: Schema,
    /// The aggregation query.
    pub query: AggQuery,
    /// All surviving rows, in ingestion order (snapshot + WAL suffix).
    pub rows: Vec<Vec<Datum>>,
    /// Whether a checkpoint snapshot seeded this tenant (vs pure replay).
    pub from_snapshot: bool,
}

/// The outcome of recovery-on-boot.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Persisted id watermark: the registry must hand out ids from here
    /// so deleted tenants are never resurrected under a recycled id.
    pub next_id: u64,
    /// Recovered tenants, ascending by id.
    pub tenants: Vec<RecoveredTenant>,
    /// WAL records applied during replay.
    pub records_applied: u64,
    /// Records skipped as below a snapshot watermark or addressed to an
    /// unknown/removed tenant.
    pub records_skipped: u64,
    /// Bytes discarded after the longest valid WAL prefix.
    pub discarded_bytes: u64,
    /// Human-readable notes on everything that was discarded or skipped.
    pub notes: Vec<String>,
}

/// One tenant's full state handed to [`DataStore::checkpoint`].
pub struct TenantCheckpoint {
    /// The tenant id.
    pub id: u64,
    /// The relation's schema.
    pub schema: Schema,
    /// The aggregation query.
    pub query: AggQuery,
    /// All rows in ingestion order — the snapshot's row watermark is
    /// implicitly `rows.len()`.
    pub rows: Vec<Vec<Datum>>,
}

struct WalWriter {
    file: File,
    seg_index: u64,
    seg_bytes: u64,
}

/// Latency histograms for the store's three durability-critical
/// operations, exposed for Prometheus exposition.
#[derive(Debug, Default)]
pub struct StoreDurations {
    /// Per-append `fsync` (really `sync_data`) time.
    pub fsync: Histogram,
    /// Full [`DataStore::checkpoint`] cycles.
    pub checkpoint: Histogram,
    /// Recovery-on-boot, recorded once per [`DataStore::open`].
    pub recovery: Histogram,
}

/// The durable storage engine for one data directory (module docs).
pub struct DataStore {
    root: PathBuf,
    wal: Mutex<WalWriter>,
    appends_since_checkpoint: AtomicU64,
    checkpoint_interval: AtomicU64,
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    snapshots: AtomicU64,
    recoveries: AtomicU64,
    demotions: AtomicU64,
    rehydrations: AtomicU64,
    durations: StoreDurations,
}

impl std::fmt::Debug for DataStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataStore")
            .field("root", &self.root)
            .finish_non_exhaustive()
    }
}

impl DataStore {
    /// Opens (creating if needed) the data directory, runs recovery and
    /// returns the store plus everything it recovered. Corrupt bytes are
    /// skipped and reported in [`Recovery::notes`], never a panic.
    pub fn open(root: impl Into<PathBuf>) -> Result<(DataStore, Recovery), StoreError> {
        let started = Instant::now();
        let root = root.into();
        for dir in [
            root.clone(),
            root.join("wal"),
            root.join("tenants"),
            root.join("cubes"),
        ] {
            fs::create_dir_all(&dir).map_err(|e| StoreError::io("create dir", &dir, e))?;
        }

        let mut recovery = Recovery::default();
        let mut max_id_seen = 0u64;

        // Last checkpoint's id watermark.
        let meta_path = root.join("meta.json");
        match fs::read_to_string(&meta_path) {
            Ok(text) => match serde_json::from_str::<Value>(&text) {
                Ok(v) => match v.field::<u64>("next_id") {
                    Ok(n) => recovery.next_id = n,
                    Err(e) => recovery.notes.push(format!("meta.json ignored: {e}")),
                },
                Err(e) => recovery.notes.push(format!("meta.json ignored: {e}")),
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::io("read", &meta_path, e)),
        }

        // Tenant checkpoint snapshots.
        let mut tenants: HashMap<u64, RecoveredTenant> = HashMap::new();
        for path in sorted_files(&root.join("tenants"), ".snap")? {
            match load_tenant_snapshot(&path) {
                Ok(t) => {
                    max_id_seen = max_id_seen.max(t.id);
                    tenants.insert(t.id, t);
                }
                Err(why) => recovery
                    .notes
                    .push(format!("snapshot {} discarded: {why}", path.display())),
            }
        }

        // WAL suffix replay over the snapshots.
        let segments = sorted_files(&root.join("wal"), ".wal")?;
        let mut last_seg_index = 0u64;
        let mut stopped = false;
        for path in &segments {
            last_seg_index = last_seg_index.max(segment_index(path));
            if stopped {
                // A torn segment ends the valid prefix; later segments
                // are beyond it by construction. Replay discarded their
                // records, so the files must go too — left in place they
                // would resurrect the discarded suffix on the next boot,
                // once the truncation below turns the torn segment clean.
                let len = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                recovery.discarded_bytes += len;
                recovery.notes.push(format!(
                    "segment {} beyond torn prefix: {len} bytes unlinked",
                    path.display()
                ));
                fs::remove_file(path).map_err(|e| StoreError::io("unlink", path, e))?;
                continue;
            }
            let bytes = fs::read(path).map_err(|e| StoreError::io("read", path, e))?;
            let (frames, end, lost) = read_all(&bytes);
            for payload in frames {
                replay_record(payload, &mut tenants, &mut recovery, &mut max_id_seen);
            }
            if lost > 0 {
                recovery.discarded_bytes += lost as u64;
                // Truncate the torn bytes away NOW: acked records written
                // after this recovery land in later segments, and a future
                // boot must replay through them. A torn tail left on disk
                // would end that boot's valid prefix right here and
                // discard every later segment — fsynced, acknowledged
                // records included.
                truncate_file(path, (bytes.len() - lost) as u64)?;
                recovery.notes.push(format!(
                    "segment {}: kept longest valid prefix, truncated {lost} bytes ({})",
                    path.display(),
                    match end {
                        FrameEnd::Torn => "torn tail",
                        FrameEnd::BadChecksum => "checksum mismatch",
                        FrameEnd::Clean => "clean",
                    }
                ));
                stopped = true;
            }
        }
        if stopped {
            sync_dir(&root.join("wal"));
        }

        recovery.next_id = recovery.next_id.max(max_id_seen + 1).max(1);
        let mut recovered: Vec<RecoveredTenant> = tenants.into_values().collect();
        recovered.sort_by_key(|t| t.id);
        recovery.tenants = recovered;

        // Appends go to a fresh segment: a possibly-torn tail is never
        // extended, so one recovery pass bounds the damage forever.
        let seg_index = last_seg_index + 1;
        let wal_path = segment_path(&root, seg_index);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(|e| StoreError::io("open", &wal_path, e))?;
        sync_dir(&root.join("wal"));

        let store = DataStore {
            root,
            wal: Mutex::new(WalWriter {
                file,
                seg_index,
                seg_bytes: 0,
            }),
            appends_since_checkpoint: AtomicU64::new(0),
            checkpoint_interval: AtomicU64::new(DEFAULT_CHECKPOINT_INTERVAL),
            wal_appends: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            recoveries: AtomicU64::new(recovery.tenants.len() as u64),
            demotions: AtomicU64::new(0),
            rehydrations: AtomicU64::new(0),
            durations: StoreDurations::default(),
        };
        store.durations.recovery.record(started.elapsed());
        Ok((store, recovery))
    }

    /// The data directory this store owns.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Sets how many WAL appends accumulate before
    /// [`DataStore::wants_checkpoint`] turns true.
    pub fn set_checkpoint_interval(&self, every: u64) {
        self.checkpoint_interval
            .store(every.max(1), Ordering::Relaxed);
    }

    /// True once enough WAL has accumulated since the last checkpoint
    /// that the owner should call [`DataStore::checkpoint`].
    pub fn wants_checkpoint(&self) -> bool {
        self.appends_since_checkpoint.load(Ordering::Relaxed)
            >= self.checkpoint_interval.load(Ordering::Relaxed)
    }

    /// Durably logs a tenant registration.
    pub fn log_register(
        &self,
        id: u64,
        schema: &Schema,
        query: &AggQuery,
        rows: &[Vec<Datum>],
    ) -> Result<(), StoreError> {
        self.append(&WalRecord::Register {
            id,
            schema: schema.clone(),
            query: query.clone(),
            rows: rows.iter().map(|r| encode_wire_row(r)).collect(),
        })
    }

    /// Durably logs an appended row batch. `seq` is the tenant's total
    /// row count *before* the batch.
    pub fn log_rows(&self, id: u64, seq: u64, rows: &[Vec<Datum>]) -> Result<(), StoreError> {
        self.append(&WalRecord::Rows {
            id,
            seq,
            rows: rows.iter().map(|r| encode_wire_row(r)).collect(),
        })
    }

    /// Durably logs a tenant deletion, then removes its snapshot and cube
    /// files. The tombstone lands first so a crash between the two steps
    /// still deletes the tenant on replay.
    pub fn log_remove(&self, id: u64) -> Result<(), StoreError> {
        self.append(&WalRecord::Remove { id })?;
        let _ = fs::remove_file(self.tenant_path(id));
        self.remove_tenant_cubes(id);
        Ok(())
    }

    /// Rotates the WAL to a fresh segment and returns that segment's
    /// index — the rotation point a subsequent [`DataStore::checkpoint`]
    /// truncates below. A checkpoint cycle must rotate FIRST and export
    /// tenant state AFTER: every record already logged then sits below
    /// the rotation point and is covered by the exports, while a record
    /// logged concurrently with the export lands in the fresh segment,
    /// which the truncation spares. Also restarts the checkpoint-interval
    /// counter ([`DataStore::wants_checkpoint`]).
    pub fn rotate_wal(&self) -> Result<u64, StoreError> {
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        let fresh = rotate_locked(&self.root, &mut wal)?;
        drop(wal);
        self.appends_since_checkpoint.store(0, Ordering::Relaxed);
        Ok(fresh)
    }

    /// Writes every tenant's full state to `tenants/`, persists the id
    /// watermark, then deletes the WAL segments below `rotation` — a
    /// value obtained from [`DataStore::rotate_wal`] *before* the tenant
    /// states were exported (see there for why that order is the
    /// crash-safety contract; the `seq` watermark makes any snapshot/WAL
    /// overlap idempotent on replay). Tenants absent from `tenants` lose
    /// their snapshot files (they were deleted).
    pub fn checkpoint(
        &self,
        next_id: u64,
        tenants: &[TenantCheckpoint],
        rotation: u64,
    ) -> Result<(), StoreError> {
        let started = Instant::now();
        for t in tenants {
            let payload = serde_json::to_string(&Value::object([
                ("id", t.id.serialize()),
                ("schema", t.schema.serialize()),
                ("query", t.query.serialize()),
                (
                    "rows",
                    Value::Array(t.rows.iter().map(|r| encode_wire_row(r)).collect()),
                ),
            ]))
            .map_err(|e| StoreError::Encode(e.to_string()))?;
            let mut framed = Vec::with_capacity(payload.len() + 8);
            append_frame(&mut framed, payload.as_bytes());
            write_atomic(&self.tenant_path(t.id), &framed)?;
            self.snapshots.fetch_add(1, Ordering::Relaxed);
        }
        // Snapshot files for tenants that no longer exist are stale.
        let live: Vec<u64> = tenants.iter().map(|t| t.id).collect();
        for path in sorted_files(&self.root.join("tenants"), ".snap")? {
            let keep = tenant_id_of(&path).is_some_and(|id| live.contains(&id));
            if !keep {
                let _ = fs::remove_file(&path);
            }
        }

        let meta = format!("{{\"next_id\":{next_id}}}");
        write_atomic(&self.root.join("meta.json"), meta.as_bytes())?;

        // Drop every segment below the rotation point: the snapshots
        // above were exported after the rotation, so they cover that
        // prefix in full.
        for old in sorted_files(&self.root.join("wal"), ".wal")? {
            if segment_index(&old) < rotation {
                let _ = fs::remove_file(&old);
            }
        }
        sync_dir(&self.root.join("wal"));
        self.durations.checkpoint.record(started.elapsed());
        Ok(())
    }

    /// Persists a demoted cube's block snapshot (atomic tmp + rename).
    pub fn store_cube(
        &self,
        tenant: u64,
        fingerprint: u64,
        bytes: &[u8],
    ) -> Result<(), StoreError> {
        let mut framed = Vec::with_capacity(bytes.len() + 8);
        append_frame(&mut framed, bytes);
        write_atomic(&self.cube_path(tenant, fingerprint), &framed)?;
        self.demotions.fetch_add(1, Ordering::Relaxed);
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Loads a demoted cube's bytes, if a valid snapshot exists. A
    /// missing or corrupt file is `None` (the caller rebuilds from the
    /// session instead), and a corrupt file is unlinked on sight.
    ///
    /// A raw load is not yet a rehydration: the caller still validates
    /// the decoded cube's cache key and row watermark, and only a copy
    /// that actually serves counts — it reports that via
    /// [`DataStore::note_rehydration`].
    pub fn load_cube(&self, tenant: u64, fingerprint: u64) -> Option<Vec<u8>> {
        let path = self.cube_path(tenant, fingerprint);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => return None,
        };
        let (mut frames, end, _) = read_all(&bytes);
        if end != FrameEnd::Clean || frames.len() != 1 {
            tsexplain_obs::log::warn(
                "store",
                "cube snapshot is corrupt; discarding it",
                &[
                    ("tenant", Value::Number(tenant as f64)),
                    ("path", Value::String(path.display().to_string())),
                ],
            );
            let _ = fs::remove_file(&path);
            return None;
        }
        Some(frames.remove(0).to_vec())
    }

    /// Counts one served rehydration (see [`DataStore::load_cube`]):
    /// called once the loaded cube passed the caller's key + row-watermark
    /// checks, so stale or fingerprint-colliding loads that get discarded
    /// and rebuilt never inflate the `/metrics` store block.
    pub fn note_rehydration(&self) {
        self.rehydrations.fetch_add(1, Ordering::Relaxed);
    }

    /// Unlinks one demoted cube (e.g. after it was rehydrated and then
    /// legitimately dropped).
    pub fn drop_cube(&self, tenant: u64, fingerprint: u64) {
        let _ = fs::remove_file(self.cube_path(tenant, fingerprint));
    }

    /// The store's durability-operation latency histograms.
    pub fn durations(&self) -> &StoreDurations {
        &self.durations
    }

    /// A point-in-time copy of the store counters.
    pub fn metrics(&self) -> StoreMetrics {
        StoreMetrics {
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            rehydrations: self.rehydrations.load(Ordering::Relaxed),
        }
    }

    fn append(&self, record: &WalRecord) -> Result<(), StoreError> {
        let payload =
            serde_json::to_string(record).map_err(|e| StoreError::Encode(e.to_string()))?;
        let mut framed = Vec::with_capacity(payload.len() + 8);
        append_frame(&mut framed, payload.as_bytes());

        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        if wal.seg_bytes >= SEGMENT_BYTES {
            rotate_locked(&self.root, &mut wal)?;
        }
        let path = segment_path(&self.root, wal.seg_index);
        wal.file
            .write_all(&framed)
            .map_err(|e| StoreError::io("append", &path, e))?;
        let fsync_started = Instant::now();
        wal.file
            // tsx-lint: allow(fsync-under-lock, fsync-before-ack IS the durability contract; the WAL guard is last in the documented order registry → session → store WAL)
            .sync_data()
            .map_err(|e| StoreError::io("fsync", &path, e))?;
        self.durations.fsync.record(fsync_started.elapsed());
        wal.seg_bytes += framed.len() as u64;
        drop(wal);

        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes
            .fetch_add(framed.len() as u64, Ordering::Relaxed);
        self.appends_since_checkpoint
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn tenant_path(&self, id: u64) -> PathBuf {
        self.root.join("tenants").join(format!("t{id}.snap"))
    }

    fn cube_path(&self, tenant: u64, fingerprint: u64) -> PathBuf {
        self.root
            .join("cubes")
            .join(format!("t{tenant}-c{fingerprint:016x}.cube"))
    }

    fn remove_tenant_cubes(&self, tenant: u64) {
        let prefix = format!("t{tenant}-");
        if let Ok(entries) = fs::read_dir(self.root.join("cubes")) {
            for entry in entries.flatten() {
                if entry
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with(&prefix))
                {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }
}

/// Applies one WAL frame to the recovered-tenant map (module docs).
fn replay_record(
    payload: &[u8],
    tenants: &mut HashMap<u64, RecoveredTenant>,
    recovery: &mut Recovery,
    max_id_seen: &mut u64,
) {
    let record = match std::str::from_utf8(payload)
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str::<WalRecord>(t).map_err(|e| e.to_string()))
    {
        Ok(r) => r,
        Err(why) => {
            // The frame passed its checksum but doesn't parse: a record
            // from a future version. Skip it rather than discard the log.
            recovery.records_skipped += 1;
            recovery
                .notes
                .push(format!("unreadable WAL record skipped: {why}"));
            return;
        }
    };
    match record {
        WalRecord::Register {
            id,
            schema,
            query,
            rows,
        } => {
            *max_id_seen = (*max_id_seen).max(id);
            if tenants.contains_key(&id) {
                // The snapshot is newer than the registration.
                recovery.records_skipped += 1;
                return;
            }
            if let Some(decoded) = decode_rows_or_note(&schema, &rows, id, recovery) {
                tenants.insert(
                    id,
                    RecoveredTenant {
                        id,
                        schema,
                        query,
                        rows: decoded,
                        from_snapshot: false,
                    },
                );
                recovery.records_applied += 1;
            }
        }
        WalRecord::Rows { id, seq, rows } => {
            *max_id_seen = (*max_id_seen).max(id);
            let Some(tenant) = tenants.get_mut(&id) else {
                recovery.records_skipped += 1;
                recovery
                    .notes
                    .push(format!("rows for unknown tenant {id} skipped"));
                return;
            };
            let have = tenant.rows.len() as u64;
            if seq > have {
                recovery.records_skipped += 1;
                recovery.notes.push(format!(
                    "rows for tenant {id} skipped: gap (seq {seq}, have {have})"
                ));
                return;
            }
            if seq + rows.len() as u64 <= have {
                // Entirely below the snapshot watermark.
                recovery.records_skipped += 1;
                return;
            }
            let fresh = &rows[(have - seq) as usize..];
            let schema = tenant.schema.clone();
            if let Some(mut decoded) = decode_rows_or_note(&schema, fresh, id, recovery) {
                tenants
                    .get_mut(&id)
                    .expect("tenant still present")
                    .rows
                    .append(&mut decoded);
                recovery.records_applied += 1;
            }
        }
        WalRecord::Remove { id } => {
            *max_id_seen = (*max_id_seen).max(id);
            tenants.remove(&id);
            recovery.records_applied += 1;
        }
    }
}

fn decode_rows_or_note(
    schema: &Schema,
    rows: &[Value],
    tenant: u64,
    recovery: &mut Recovery,
) -> Option<Vec<Vec<Datum>>> {
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        match decode_wire_row(schema, row) {
            Ok(r) => out.push(r),
            Err(e) => {
                recovery.records_skipped += 1;
                recovery
                    .notes
                    .push(format!("record for tenant {tenant} skipped: row {i}: {e}"));
                return None;
            }
        }
    }
    Some(out)
}

fn load_tenant_snapshot(path: &Path) -> Result<RecoveredTenant, String> {
    let bytes = fs::read(path).map_err(|e| e.to_string())?;
    let (frames, end, _) = read_all(&bytes);
    if end != FrameEnd::Clean || frames.len() != 1 {
        return Err("torn or corrupt frame".into());
    }
    let text = std::str::from_utf8(frames[0]).map_err(|e| e.to_string())?;
    let value: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
    let id: u64 = value.field("id").map_err(|e| e.to_string())?;
    let schema: Schema = value.field("schema").map_err(|e| e.to_string())?;
    let query: AggQuery = value.field("query").map_err(|e| e.to_string())?;
    let wire_rows: Vec<Value> = value.field("rows").map_err(|e| e.to_string())?;
    let mut rows = Vec::with_capacity(wire_rows.len());
    for (i, row) in wire_rows.iter().enumerate() {
        rows.push(decode_wire_row(&schema, row).map_err(|e| format!("row {i}: {e}"))?);
    }
    Ok(RecoveredTenant {
        id,
        schema,
        query,
        rows,
        from_snapshot: true,
    })
}

/// Files directly under `dir` whose name ends with `suffix`, sorted by
/// name (zero-padded segment names sort numerically).
fn sorted_files(dir: &Path, suffix: &str) -> Result<Vec<PathBuf>, StoreError> {
    let entries = fs::read_dir(dir).map_err(|e| StoreError::io("read dir", dir, e))?;
    let mut out: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(suffix))
        })
        .collect();
    out.sort();
    Ok(out)
}

fn segment_path(root: &Path, index: u64) -> PathBuf {
    root.join("wal").join(format!("{index:06}.wal"))
}

/// Points the writer at a freshly created next segment and returns its
/// index. Shared by size-triggered rotation and checkpoint rotation.
fn rotate_locked(root: &Path, wal: &mut WalWriter) -> Result<u64, StoreError> {
    let fresh = wal.seg_index + 1;
    let path = segment_path(root, fresh);
    wal.file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| StoreError::io("open", &path, e))?;
    wal.seg_index = fresh;
    wal.seg_bytes = 0;
    sync_dir(&root.join("wal"));
    Ok(fresh)
}

/// Durably truncates `path` to its first `len` bytes.
fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    let f = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StoreError::io("open", path, e))?;
    f.set_len(len)
        .map_err(|e| StoreError::io("truncate", path, e))?;
    f.sync_all().map_err(|e| StoreError::io("fsync", path, e))?;
    Ok(())
}

/// The numeric index of a `{index:06}.wal` segment (0 if unparsable,
/// which sorts it before every real segment).
fn segment_index(path: &Path) -> u64 {
    path.file_stem()
        .and_then(|s| s.to_str())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The tenant id of a `t{id}.snap` file name.
fn tenant_id_of(path: &Path) -> Option<u64> {
    path.file_stem()
        .and_then(|s| s.to_str())
        .and_then(|s| s.strip_prefix('t'))
        .and_then(|s| s.parse().ok())
}

/// Write-then-rename with fsync at each step: readers see either the old
/// file or the complete new one, never a torn write.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp).map_err(|e| StoreError::io("create", &tmp, e))?;
        f.write_all(bytes)
            .map_err(|e| StoreError::io("write", &tmp, e))?;
        f.sync_all().map_err(|e| StoreError::io("fsync", &tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| StoreError::io("rename", path, e))?;
    if let Some(parent) = path.parent() {
        sync_dir(parent);
    }
    Ok(())
}

/// Best-effort directory fsync (makes renames and creations durable on
/// filesystems that need it; harmless where it isn't supported).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}
