use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors from the durable store.
///
/// Corruption is deliberately *not* an error at recovery time — torn
/// tails and bad frames are skipped and counted (see
/// [`crate::Recovery`]) — so this type covers genuine I/O failures and
/// requests that cannot be served (e.g. logging to a closed store).
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure, with the path it struck.
    Io {
        /// What the store was doing.
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A record could not be encoded (should be unreachable for the
    /// types the store writes; kept explicit rather than panicking).
    Encode(String),
}

impl StoreError {
    pub(crate) fn io(op: &'static str, path: impl Into<PathBuf>, source: io::Error) -> Self {
        StoreError::Io {
            op,
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            StoreError::Encode(what) => write!(f, "encode: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Encode(_) => None,
        }
    }
}
