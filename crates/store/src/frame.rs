//! CRC-framed byte records — the one on-disk envelope every durable
//! artifact uses.
//!
//! A frame is `[len: u32 LE][crc32(payload): u32 LE][payload]`. WAL
//! segments are a sequence of frames; snapshot files (tenant state, cube
//! blobs) are exactly one frame. Decoding never trusts `len`: a frame
//! whose claimed length runs past the buffer is *torn* (a crash mid
//! `write`), a frame whose checksum mismatches is *corrupt* (torn inside
//! the payload, or bit rot) — both end the valid prefix without a panic.

use crate::crc32::crc32;

/// Frame header size: length + checksum.
pub const HEADER: usize = 8;

/// Appends one frame around `payload` to `out`.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One decoded frame: the payload and the total encoded size consumed.
pub struct Frame<'a> {
    /// The checksummed payload.
    pub payload: &'a [u8],
    /// Bytes this frame occupies on disk (header + payload).
    pub encoded_len: usize,
}

/// Why decoding stopped at a given offset.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEnd {
    /// Clean end of input: the previous frame was the last one.
    Clean,
    /// A partial header or a payload shorter than its declared length —
    /// the torn tail a crash mid-append leaves behind.
    Torn,
    /// The payload is complete but fails its checksum.
    BadChecksum,
}

/// Decodes the frame starting at `buf[at..]`.
pub fn read_frame(buf: &[u8], at: usize) -> Result<Frame<'_>, FrameEnd> {
    let rest = &buf[at.min(buf.len())..];
    if rest.is_empty() {
        return Err(FrameEnd::Clean);
    }
    if rest.len() < HEADER {
        return Err(FrameEnd::Torn);
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
    let sum = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    let Some(payload) = rest[HEADER..].get(..len) else {
        return Err(FrameEnd::Torn);
    };
    if crc32(payload) != sum {
        return Err(FrameEnd::BadChecksum);
    }
    Ok(Frame {
        payload,
        encoded_len: HEADER + len,
    })
}

/// Decodes a whole buffer's longest valid frame prefix: the payload
/// byte-ranges of every intact frame, plus how the prefix ended and how
/// many bytes after it were discarded.
pub fn read_all(buf: &[u8]) -> (Vec<&[u8]>, FrameEnd, usize) {
    let mut frames = Vec::new();
    let mut at = 0;
    loop {
        match read_frame(buf, at) {
            Ok(f) => {
                at += f.encoded_len;
                frames.push(f.payload);
            }
            Err(end) => return (frames, end, buf.len() - at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            append_frame(&mut out, p);
        }
        out
    }

    #[test]
    fn roundtrips_a_sequence() {
        let buf = segment(&[b"one", b"", b"three"]);
        let (frames, end, lost) = read_all(&buf);
        assert_eq!(frames, vec![&b"one"[..], &b""[..], &b"three"[..]]);
        assert_eq!(end, FrameEnd::Clean);
        assert_eq!(lost, 0);
    }

    #[test]
    fn every_truncation_keeps_the_longest_valid_prefix() {
        let buf = segment(&[b"alpha", b"beta", b"gamma"]);
        for cut in 0..buf.len() {
            let (frames, end, lost) = read_all(&buf[..cut]);
            // Each recovered payload is one of the originals, in order.
            assert!(frames.len() <= 3);
            for (i, p) in frames.iter().enumerate() {
                assert_eq!(*p, [&b"alpha"[..], b"beta", b"gamma"][i]);
            }
            // A cut exactly on a frame boundary is a clean (shorter) log;
            // anywhere else the tail is torn and fully accounted for.
            let consumed: usize = frames.iter().map(|p| p.len() + HEADER).sum();
            assert_eq!(lost, cut - consumed);
            assert_eq!(
                end,
                if lost == 0 {
                    FrameEnd::Clean
                } else {
                    FrameEnd::Torn
                }
            );
        }
    }

    #[test]
    fn bit_flips_are_bad_checksums_not_panics() {
        let clean = segment(&[b"alpha", b"beta"]);
        for bit in 0..clean.len() * 8 {
            let mut buf = clean.clone();
            buf[bit / 8] ^= 1 << (bit % 8);
            let (frames, _, _) = read_all(&buf);
            // Whatever survives is a verbatim original prefix.
            for (i, p) in frames.iter().enumerate() {
                assert_eq!(*p, [&b"alpha"[..], b"beta"][i], "bit {bit}");
            }
        }
    }

    #[test]
    fn oversized_length_is_torn() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        buf.extend_from_slice(b"short");
        let (frames, end, lost) = read_all(&buf);
        assert!(frames.is_empty());
        assert_eq!(end, FrameEnd::Torn);
        assert_eq!(lost, buf.len());
    }
}
