//! # tsexplain-store
//!
//! The durable storage engine under a TSExplain serving deployment:
//! a CRC-framed, fsynced, segment-rotated write-ahead log of every
//! tenant registration / row batch / deletion, checkpoint snapshots
//! that truncate it, block snapshots of demoted cubes, and
//! recovery-on-boot that reconstructs every tenant from whatever valid
//! prefix a crash left behind.
//!
//! The crate is dependency-free in the workspace's vendoring spirit:
//! `std::fs` for I/O, the vendored `serde`/`serde_json` for record
//! payloads (the same encodings the HTTP wire uses, so a WAL is
//! readable with the API's own vocabulary), a hand-rolled CRC-32, and
//! `tsexplain-obs` for fsync/checkpoint/recovery latency histograms and
//! structured logging.
//! It knows nothing about cubes beyond "a blob of bytes with a
//! fingerprint" — cube snapshot encoding lives with the cube, framing
//! and placement live here.
//!
//! Entry point: [`DataStore::open`], which recovers and then serves.
//! See [`store`]'s module docs for the on-disk layout and the exact
//! recovery semantics.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
mod crc32;
mod error;
mod frame;
mod store;
mod wal;

pub use error::StoreError;
pub use store::{
    DataStore, RecoveredTenant, Recovery, StoreDurations, StoreMetrics, TenantCheckpoint,
};
pub use wal::WalRecord;
