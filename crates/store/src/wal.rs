//! WAL record vocabulary and its JSON codec.
//!
//! Every frame in a WAL segment carries one JSON record, tagged by
//! `"kind"`. Schemas and queries reuse the relation crate's serde (the
//! same encoding the HTTP wire uses), and rows travel as the shared
//! schema-ordered wire arrays — so a WAL is readable with the same
//! vocabulary as the API traffic that produced it.
//!
//! `Rows.seq` is the tenant's total row count *before* the batch. It is
//! what makes snapshot + suffix replay idempotent: a replayer holding
//! `n` rows skips records entirely below its watermark and applies only
//! the unseen tail of an overlapping batch.

use serde::{Deserialize, Error, Serialize, Value};
use tsexplain_relation::{AggQuery, Schema};

/// One durable event in a tenant's life.
#[derive(Debug)]
pub enum WalRecord {
    /// A tenant was registered (`POST /datasets`), with its initial rows.
    Register {
        /// The tenant id the registry assigned.
        id: u64,
        /// The relation's schema.
        schema: Schema,
        /// The "what happened" aggregation query.
        query: AggQuery,
        /// Initial rows as wire arrays (possibly empty).
        rows: Vec<Value>,
    },
    /// A row batch was appended (`POST /datasets/{id}/rows`).
    Rows {
        /// The tenant.
        id: u64,
        /// Tenant row count before this batch (see module docs).
        seq: u64,
        /// The batch, as wire arrays.
        rows: Vec<Value>,
    },
    /// The tenant was deleted (`DELETE /datasets/{id}`); replay must not
    /// resurrect it.
    Remove {
        /// The tenant.
        id: u64,
    },
}

impl Serialize for WalRecord {
    fn serialize(&self) -> Value {
        match self {
            WalRecord::Register {
                id,
                schema,
                query,
                rows,
            } => Value::object([
                ("kind", Value::String("register".into())),
                ("id", id.serialize()),
                ("schema", schema.serialize()),
                ("query", query.serialize()),
                ("rows", rows.serialize()),
            ]),
            WalRecord::Rows { id, seq, rows } => Value::object([
                ("kind", Value::String("rows".into())),
                ("id", id.serialize()),
                ("seq", seq.serialize()),
                ("rows", rows.serialize()),
            ]),
            WalRecord::Remove { id } => Value::object([
                ("kind", Value::String("remove".into())),
                ("id", id.serialize()),
            ]),
        }
    }
}

impl Deserialize for WalRecord {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.get("kind").and_then(Value::as_str) {
            Some("register") => Ok(WalRecord::Register {
                id: value.field("id")?,
                schema: value.field("schema")?,
                query: value.field("query")?,
                rows: value.field("rows")?,
            }),
            Some("rows") => Ok(WalRecord::Rows {
                id: value.field("id")?,
                seq: value.field("seq")?,
                rows: value.field("rows")?,
            }),
            Some("remove") => Ok(WalRecord::Remove {
                id: value.field("id")?,
            }),
            _ => Err(Error::new(
                "expected WAL record kind \"register\", \"rows\" or \"remove\"",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_relation::{AggQuery, Field, Schema};

    #[test]
    fn records_roundtrip() {
        let schema = Schema::new(vec![Field::dimension("t"), Field::measure("v")]).unwrap();
        let records = [
            WalRecord::Register {
                id: 3,
                schema,
                query: AggQuery::sum("t", "v"),
                rows: vec![Value::Array(vec![
                    Value::String("d0".into()),
                    Value::Number(1.5),
                ])],
            },
            WalRecord::Rows {
                id: 3,
                seq: 1,
                rows: vec![Value::Array(vec![
                    Value::String("d1".into()),
                    Value::Number(2.5),
                ])],
            },
            WalRecord::Remove { id: 3 },
        ];
        for rec in &records {
            let text = serde_json::to_string(rec).unwrap();
            match (rec, serde_json::from_str::<WalRecord>(&text).unwrap()) {
                (
                    WalRecord::Register { id, rows, .. },
                    WalRecord::Register {
                        id: id2,
                        rows: rows2,
                        query,
                        ..
                    },
                ) => {
                    assert_eq!(*id, id2);
                    assert_eq!(*rows, rows2);
                    assert_eq!(query.time_attr(), "t");
                }
                (
                    WalRecord::Rows { id, seq, rows },
                    WalRecord::Rows {
                        id: id2,
                        seq: seq2,
                        rows: rows2,
                    },
                ) => {
                    assert_eq!((*id, *seq, rows), (id2, seq2, &rows2));
                }
                (WalRecord::Remove { id }, WalRecord::Remove { id: id2 }) => {
                    assert_eq!(*id, id2);
                }
                (a, b) => panic!("kind changed in roundtrip: {a:?} -> {b:?}"),
            }
        }
        assert!(serde_json::from_str::<WalRecord>("{\"kind\":\"truncate\"}").is_err());
    }
}
