//! Crash-injection suite for the durable store: truncated WAL tails,
//! bit-flipped frames, partial snapshot files and corrupt metadata.
//!
//! The contract under test: recovery keeps the longest valid prefix of
//! the log, reports what it discarded, and **never panics** — whatever
//! bytes a crash (or bit rot) leaves behind. Truncation points are
//! exercised exhaustively for one fixture and by proptest over random
//! workloads; bit flips by proptest.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use tsexplain_relation::{AggQuery, AttrValue, Datum, Field, Schema};
use tsexplain_store::{DataStore, TenantCheckpoint};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tsx-store-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::dimension("t"),
        Field::dimension("state"),
        Field::measure("v"),
    ])
    .unwrap()
}

fn query() -> AggQuery {
    AggQuery::sum("t", "v")
}

/// `n` rows with distinct content so prefix checks are meaningful.
fn rows(from: usize, n: usize) -> Vec<Vec<Datum>> {
    (from..from + n)
        .map(|i| {
            vec![
                Datum::Attr(AttrValue::Int(i as i64)),
                Datum::Attr(AttrValue::from(if i % 2 == 0 { "NY" } else { "CA" })),
                Datum::Num(0.5 * i as f64 - 3.0),
            ]
        })
        .collect()
}

/// The single live WAL segment of a store that was opened once.
fn only_wal_segment(dir: &std::path::Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir.join("wal"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "wal"))
        .collect();
    segs.sort();
    assert_eq!(segs.len(), 1, "expected exactly one segment");
    segs.remove(0)
}

/// Writes one tenant (3 initial rows) plus `batches` two-row appends,
/// then closes the store. Returns the data dir.
fn seed_store(tag: &str, batches: usize) -> PathBuf {
    let dir = temp_dir(tag);
    let (store, recovery) = DataStore::open(&dir).unwrap();
    assert!(recovery.tenants.is_empty());
    store
        .log_register(1, &schema(), &query(), &rows(0, 3))
        .unwrap();
    for b in 0..batches {
        store
            .log_rows(1, (3 + 2 * b) as u64, &rows(3 + 2 * b, 2))
            .unwrap();
    }
    drop(store);
    dir
}

#[test]
fn clean_reboot_recovers_everything() {
    let dir = seed_store("clean", 4);
    let (store, recovery) = DataStore::open(&dir).unwrap();
    assert_eq!(recovery.tenants.len(), 1);
    let t = &recovery.tenants[0];
    assert_eq!(t.id, 1);
    assert_eq!(t.rows, rows(0, 11));
    assert!(!t.from_snapshot);
    assert!(recovery.next_id >= 2);
    assert_eq!(recovery.discarded_bytes, 0);
    assert_eq!(store.metrics().recoveries, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_wal_truncation_point_recovers_a_prefix() {
    let dir = seed_store("trunc", 3);
    let seg = only_wal_segment(&dir);
    let full = std::fs::read(&seg).unwrap();
    let all_rows = rows(0, 9);
    for cut in 0..full.len() {
        std::fs::write(&seg, &full[..cut]).unwrap();
        let (_store, recovery) = DataStore::open(&dir).unwrap();
        match recovery.tenants.as_slice() {
            [] => {} // register frame itself truncated
            [t] => {
                assert!(
                    t.rows.len() <= all_rows.len() && t.rows == all_rows[..t.rows.len()],
                    "cut {cut}: recovered rows must be a prefix"
                );
                // Whole batches survive or vanish: 3 initial + 2 per batch.
                assert!(
                    t.rows.len() == 3 || (t.rows.len() > 3 && (t.rows.len() - 3) % 2 == 0),
                    "cut {cut}: partial batch applied"
                );
            }
            more => panic!("cut {cut}: {} tenants", more.len()),
        }
        if cut != full.len() && !full[..cut].is_empty() {
            // Something was cut off mid-log: it must be accounted for
            // whenever the cut is not on a frame boundary.
            let consumed: usize = full.len() - cut;
            assert!(consumed > 0);
        }
        // Each open starts a fresh segment; remove it so the next
        // iteration still sees exactly one truncated segment plus it.
        for extra in std::fs::read_dir(dir.join("wal")).unwrap().flatten() {
            if extra.path() != seg {
                std::fs::remove_file(extra.path()).unwrap();
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The second-crash scenario: recovery from a torn tail must truncate the
/// tear on disk, so records acked *after* that recovery (which land in a
/// fresh segment) survive the next reboot instead of being discarded as
/// "beyond the torn prefix".
#[test]
fn acked_writes_after_a_torn_tail_survive_a_second_crash() {
    let dir = seed_store("retear", 2); // register rows 0..3 + batches → rows 0..7
    let seg = only_wal_segment(&dir);
    let full = std::fs::read(&seg).unwrap();
    // Crash #1: tear the last frame mid-payload.
    std::fs::write(&seg, &full[..full.len() - 3]).unwrap();

    let (store, recovery) = DataStore::open(&dir).unwrap();
    assert_eq!(recovery.tenants[0].rows, rows(0, 5));
    assert!(recovery.discarded_bytes > 0);
    // The tear is gone from disk: the segment now ends on the valid prefix.
    let kept = std::fs::metadata(&seg).unwrap().len() as u64;
    assert_eq!(kept, full.len() as u64 - 3 - recovery.discarded_bytes);
    // New acked writes go to the fresh post-recovery segment.
    store.log_rows(1, 5, &rows(5, 2)).unwrap();
    drop(store); // crash #2

    let (_store, recovery) = DataStore::open(&dir).unwrap();
    assert_eq!(
        recovery.discarded_bytes, 0,
        "the first recovery must have truncated the tear"
    );
    assert_eq!(
        recovery.tenants[0].rows,
        rows(0, 7),
        "acked post-recovery rows must survive the second crash"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Segments beyond a torn one are unlinked, so recovery is stable: a
/// second boot sees exactly the state the first one recovered.
#[test]
fn segments_beyond_a_torn_one_are_unlinked() {
    let dir = seed_store("beyond", 1); // segment 000001: rows 0..5
    let seg = only_wal_segment(&dir);
    let full = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &full[..full.len() - 3]).unwrap();
    // A leftover later segment (as the pre-truncation recovery code could
    // leave behind) holding records replay will not reach.
    std::fs::copy(&seg, dir.join("wal").join("000002.wal")).unwrap();

    let (_s, first) = DataStore::open(&dir).unwrap();
    assert!(first
        .notes
        .iter()
        .any(|n| n.contains("beyond torn prefix") && n.contains("unlinked")));
    assert!(!dir.join("wal").join("000002.wal").exists());
    drop(_s);
    let (_s, second) = DataStore::open(&dir).unwrap();
    assert_eq!(second.discarded_bytes, 0);
    assert_eq!(second.tenants[0].rows, first.tenants[0].rows);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The checkpoint crash-safety contract: a record logged after the
/// rotation point but covered by an *older* tenant export must survive
/// the checkpoint's truncation and replay on top of the snapshot.
#[test]
fn records_logged_after_rotation_survive_checkpoint_truncation() {
    let dir = temp_dir("rotation-race");
    let (store, _) = DataStore::open(&dir).unwrap();
    store
        .log_register(1, &schema(), &query(), &rows(0, 3))
        .unwrap();
    // Export taken as of 3 rows — i.e. BEFORE the concurrent batch below.
    let exported = TenantCheckpoint {
        id: 1,
        schema: schema(),
        query: query(),
        rows: rows(0, 3),
    };
    let rotation = store.rotate_wal().unwrap();
    // An append racing the export: it lands in the fresh segment.
    store.log_rows(1, 3, &rows(3, 2)).unwrap();
    store.checkpoint(2, &[exported], rotation).unwrap();
    drop(store);

    let (_store, recovery) = DataStore::open(&dir).unwrap();
    assert_eq!(recovery.tenants.len(), 1);
    let t = &recovery.tenants[0];
    assert!(t.from_snapshot, "snapshot seeds the tenant");
    assert_eq!(
        t.rows,
        rows(0, 5),
        "the post-rotation batch must replay on top of the older snapshot"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tombstone_survives_reboot() {
    let dir = temp_dir("tombstone");
    let (store, _) = DataStore::open(&dir).unwrap();
    store
        .log_register(1, &schema(), &query(), &rows(0, 3))
        .unwrap();
    store
        .log_register(2, &schema(), &query(), &rows(0, 2))
        .unwrap();
    store.log_remove(1).unwrap();
    drop(store);
    let (_store, recovery) = DataStore::open(&dir).unwrap();
    assert_eq!(recovery.tenants.len(), 1);
    assert_eq!(recovery.tenants[0].id, 2);
    // Deleted ids are never recycled.
    assert!(recovery.next_id >= 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_truncates_wal_and_seeds_recovery() {
    let dir = seed_store("checkpoint", 2);
    let (store, recovery) = DataStore::open(&dir).unwrap();
    let t = &recovery.tenants[0];
    let rotation = store.rotate_wal().unwrap();
    store
        .checkpoint(
            recovery.next_id,
            &[TenantCheckpoint {
                id: t.id,
                schema: t.schema.clone(),
                query: t.query.clone(),
                rows: t.rows.clone(),
            }],
            rotation,
        )
        .unwrap();
    // Post-checkpoint rows land in the fresh segment.
    store.log_rows(1, 7, &rows(7, 2)).unwrap();
    drop(store);

    let (_store, recovery) = DataStore::open(&dir).unwrap();
    assert_eq!(recovery.tenants.len(), 1);
    let t = &recovery.tenants[0];
    assert!(t.from_snapshot, "checkpoint snapshot must seed recovery");
    assert_eq!(t.rows, rows(0, 9));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partial_tenant_snapshot_falls_back_to_wal() {
    let dir = seed_store("partsnap", 2);
    let (store, recovery) = DataStore::open(&dir).unwrap();
    let t = &recovery.tenants[0];
    let rotation = store.rotate_wal().unwrap();
    store
        .checkpoint(
            recovery.next_id,
            &[TenantCheckpoint {
                id: t.id,
                schema: t.schema.clone(),
                query: t.query.clone(),
                rows: t.rows.clone(),
            }],
            rotation,
        )
        .unwrap();
    drop(store);
    // Tear the snapshot mid-file. The WAL was truncated by the
    // checkpoint, so the tenant is unrecoverable — which must be a
    // reported skip, not a panic and not a phantom tenant.
    let snap = dir.join("tenants").join("t1.snap");
    let bytes = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, &bytes[..bytes.len() / 2]).unwrap();
    let (_store, recovery) = DataStore::open(&dir).unwrap();
    assert!(recovery.tenants.is_empty());
    assert!(
        recovery.notes.iter().any(|n| n.contains("t1.snap")),
        "discarded snapshot must be reported: {:?}",
        recovery.notes
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_meta_is_ignored_and_next_id_still_safe() {
    let dir = seed_store("meta", 1);
    std::fs::write(dir.join("meta.json"), b"{not json").unwrap();
    let (_store, recovery) = DataStore::open(&dir).unwrap();
    assert!(recovery.next_id >= 2, "id watermark from WAL replay");
    assert!(recovery.notes.iter().any(|n| n.contains("meta.json")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cube_blobs_roundtrip_and_corruption_is_contained() {
    let dir = temp_dir("cubes");
    let (store, _) = DataStore::open(&dir).unwrap();
    let blob: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
    store.store_cube(7, 0xdead_beef, &blob).unwrap();
    assert_eq!(store.load_cube(7, 0xdead_beef), Some(blob.clone()));
    assert_eq!(store.load_cube(7, 0x1), None);
    // A raw load is not a rehydration: the session layer reports one only
    // after the decoded cube passes its key + row-watermark checks.
    let m = store.metrics();
    assert_eq!((m.demotions, m.rehydrations), (1, 0));
    store.note_rehydration();
    assert_eq!(store.metrics().rehydrations, 1);

    // Flip one byte: the load must fail closed and unlink the file.
    let path = dir
        .join("cubes")
        .join(format!("t7-c{:016x}.cube", 0xdead_beefu64));
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[100] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(store.load_cube(7, 0xdead_beef), None);
    assert!(!path.exists(), "corrupt cube snapshot must be unlinked");

    store.store_cube(7, 0x2, &blob).unwrap();
    store.log_register(7, &schema(), &query(), &[]).unwrap();
    store.log_remove(7).unwrap();
    assert_eq!(store.load_cube(7, 0x2), None, "removal unlinks cubes");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random workloads, random truncation points: recovery is always a
    /// clean prefix of whole batches and never panics.
    #[test]
    fn random_truncation_recovers_a_prefix(
        batches in 1usize..6,
        cut_fraction in 0.0f64..1.0,
    ) {
        let dir = seed_store("prop-trunc", batches);
        let seg = only_wal_segment(&dir);
        let full = std::fs::read(&seg).unwrap();
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        std::fs::write(&seg, &full[..cut]).unwrap();
        let (_store, recovery) = DataStore::open(&dir).unwrap();
        let all = rows(0, 3 + 2 * batches);
        for t in &recovery.tenants {
            prop_assert!(t.rows.len() <= all.len());
            prop_assert_eq!(&t.rows[..], &all[..t.rows.len()]);
        }
        prop_assert!(recovery.discarded_bytes as usize <= cut);
        if cut < full.len() && recovery.discarded_bytes > 0 {
            prop_assert!(!recovery.notes.is_empty(), "discards must be reported");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A single flipped bit anywhere in the WAL: recovery still yields a
    /// verbatim prefix (the poisoned frame and everything after it are
    /// discarded) and never panics.
    #[test]
    fn random_bit_flip_never_panics_and_keeps_a_prefix(
        batches in 1usize..5,
        bit_fraction in 0.0f64..1.0,
    ) {
        let dir = seed_store("prop-flip", batches);
        let seg = only_wal_segment(&dir);
        let mut bytes = std::fs::read(&seg).unwrap();
        let bit = ((bytes.len() * 8 - 1) as f64 * bit_fraction) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&seg, &bytes).unwrap();
        let (_store, recovery) = DataStore::open(&dir).unwrap();
        let all = rows(0, 3 + 2 * batches);
        for t in &recovery.tenants {
            prop_assert!(t.rows.len() <= all.len());
            prop_assert_eq!(&t.rows[..], &all[..t.rows.len()]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
