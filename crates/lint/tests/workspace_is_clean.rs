//! The gate itself: the real workspace must lint clean with an empty
//! baseline, and the binary must actually fail when pointed at a
//! workspace that violates a rule — a green CI step that cannot go red
//! guards nothing.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn tsx_lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tsx-lint"))
}

#[test]
fn workspace_lints_clean_under_deny() {
    let output = tsx_lint()
        .args(["--root"])
        .arg(workspace_root())
        .arg("--deny")
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "tsx-lint --deny failed on the workspace:\n{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn json_report_parses_and_is_empty() {
    let output = tsx_lint()
        .args(["--root"])
        .arg(workspace_root())
        .args(["--format", "json"])
        .output()
        .unwrap();
    assert!(output.status.success());
    let report = serde_json::parse(&String::from_utf8_lossy(&output.stdout)).unwrap();
    let findings = report.get("findings").and_then(|v| v.as_array()).unwrap();
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn committed_baseline_is_empty() {
    let text = std::fs::read_to_string(workspace_root().join("lint-baseline.json")).unwrap();
    let value = serde_json::parse(&text).unwrap();
    let findings = value.get("findings").and_then(|v| v.as_array()).unwrap();
    assert!(
        findings.is_empty(),
        "lint-baseline.json has grandfathered findings — fix them instead"
    );
}

#[test]
fn deny_exits_nonzero_on_a_dirty_workspace() {
    // A throwaway workspace with one wall-clock violation in a scoped crate.
    let dir = std::env::temp_dir().join(format!("tsx-lint-dirty-{}", std::process::id()));
    let src_dir = dir.join("crates/cube/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").unwrap();
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n",
    )
    .unwrap();

    let output = tsx_lint()
        .args(["--root"])
        .arg(&dir)
        .arg("--deny")
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout).to_string();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(output.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("wall-clock"), "stdout:\n{stdout}");

    // Without --deny the same findings are reported but the exit is 0:
    // report mode must stay usable in pipelines that only want the list.
    let src_dir2 = dir.join("crates/cube/src");
    std::fs::create_dir_all(&src_dir2).unwrap();
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").unwrap();
    std::fs::write(
        src_dir2.join("lib.rs"),
        "pub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n",
    )
    .unwrap();
    let output = tsx_lint().args(["--root"]).arg(&dir).output().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(output.status.code(), Some(0));
}
