//! Pins the exact diagnostics every fixture produces. The corpus under
//! `tests/fixtures/` demonstrates at least one caught violation per rule
//! family plus the allow-directive and clean variants; this golden keeps
//! the lint's behaviour reviewable — any rule change shows up as a JSON
//! diff, regenerated with `TSX_REGEN_GOLDEN=1`.

use std::path::Path;

use serde::{Serialize, Value};
use tsexplain_lint::lint_source;

/// (fixture file, pseudo workspace path that scopes its rule families).
const FIXTURES: &[(&str, &str)] = &[
    ("determinism.rs", "crates/cube/src/fixture.rs"),
    ("panics.rs", "crates/server/src/router.rs"),
    ("locks.rs", "crates/store/src/fixture.rs"),
    ("directives.rs", "crates/cube/src/fixture.rs"),
];

fn fixture_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixture_diagnostics_match_golden() {
    let mut report = Vec::new();
    for (file, pseudo_path) in FIXTURES {
        let source = std::fs::read_to_string(fixture_dir().join(file)).unwrap();
        let findings = lint_source(pseudo_path, &source);
        assert!(
            !findings.is_empty(),
            "{file}: a violation fixture must catch at least one finding"
        );
        report.push((
            file.to_string(),
            Value::Array(findings.iter().map(Serialize::serialize).collect()),
        ));
    }
    let rendered = serde_json::to_string_pretty(&Value::object(report)).unwrap();

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/diagnostics.json");
    if std::env::var("TSX_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, rendered.as_bytes()).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden missing — run with TSX_REGEN_GOLDEN=1 to create it");
    assert_eq!(
        rendered.trim(),
        golden.trim(),
        "fixture diagnostics drifted from tests/golden/diagnostics.json \
         (regen with TSX_REGEN_GOLDEN=1 if the change is intended)"
    );
}

#[test]
fn every_rule_family_catches_at_least_one_violation() {
    let mut caught: Vec<String> = Vec::new();
    for (file, pseudo_path) in FIXTURES {
        let source = std::fs::read_to_string(fixture_dir().join(file)).unwrap();
        caught.extend(
            lint_source(pseudo_path, &source)
                .into_iter()
                .map(|d| d.rule),
        );
    }
    for family_rule in [
        "map-iter",
        "wall-clock",
        "env-read", // determinism
        "no-unwrap",
        "no-panic", // panic-freedom
        "lock-order",
        "fsync-under-lock", // lock/IO discipline
        "bad-directive",
        "unused-allow", // directive hygiene
    ] {
        assert!(
            caught.iter().any(|r| r == family_rule),
            "no fixture triggers `{family_rule}` (caught: {caught:?})"
        );
    }
}

#[test]
fn clean_fixture_is_clean_under_every_scope() {
    let source = std::fs::read_to_string(fixture_dir().join("clean.rs")).unwrap();
    for pseudo_path in [
        "crates/cube/src/fixture.rs",  // determinism
        "crates/server/src/router.rs", // panic-freedom
        "crates/store/src/fixture.rs", // lock discipline
        "crates/core/src/registry.rs", // panic + locks combined
    ] {
        let findings = lint_source(pseudo_path, &source);
        assert!(findings.is_empty(), "{pseudo_path}: {findings:?}");
    }
}

#[test]
fn allow_variants_suppress_only_their_own_rule() {
    let source = std::fs::read_to_string(fixture_dir().join("determinism.rs")).unwrap();
    let findings = lint_source("crates/cube/src/fixture.rs", &source);
    // The allowed sites (byte_total, timed) must not appear…
    assert!(
        findings.iter().all(|d| !source
            .lines()
            .nth(d.line - 1)
            .unwrap_or("")
            .contains("tsx-lint: allow")),
        "an allow-directive site still produced a finding: {findings:?}"
    );
    // …while the violations on other lines still do.
    assert!(findings.iter().any(|d| d.rule == "map-iter"));
    assert!(findings.iter().any(|d| d.rule == "wall-clock"));
    assert!(findings.iter().any(|d| d.rule == "env-read"));
}
