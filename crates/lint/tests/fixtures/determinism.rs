//! Fixture: determinism-family violations, allow-directives, and clean
//! variants. Linted as if it lived at `crates/cube/src/fixture.rs`; never
//! compiled.

use std::collections::{BTreeMap, HashMap, HashSet};

/// VIOLATION (map-iter): emission order is the hash order.
fn emit_scores(scores: &HashMap<String, f64>) -> Vec<String> {
    scores.iter().map(|(k, v)| format!("{k}={v}")).collect()
}

/// VIOLATION (map-iter): `for` over a HashSet.
fn emit_seen(seen: &HashSet<u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for x in seen {
        out.push(*x);
    }
    out
}

/// ALLOWED: order-insensitive reduction under a reasoned directive.
fn byte_total(sizes: &HashMap<String, usize>) -> usize {
    sizes.values().sum() // tsx-lint: allow(map-iter, order-insensitive sum; no emission)
}

/// CLEAN: construction and lookup never iterate.
fn lookup(scores: &HashMap<String, f64>, key: &str) -> Option<f64> {
    scores.get(key).copied()
}

/// CLEAN: BTreeMap iteration is ordered.
fn emit_sorted(sorted: &BTreeMap<String, f64>) -> Vec<String> {
    sorted.iter().map(|(k, v)| format!("{k}={v}")).collect()
}

/// VIOLATION (wall-clock): a timestamp is a nondeterministic input.
fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

/// ALLOWED: timing that is stripped before goldens compare.
fn timed() -> std::time::Duration {
    let start = std::time::Instant::now(); // tsx-lint: allow(wall-clock, feeds StageTimers; golden-stripped)
    start.elapsed()
}

/// VIOLATION (env-read): an undocumented environment knob.
fn secret_tuning() -> Option<String> {
    std::env::var("TSX_SECRET_MODE").ok()
}

/// CLEAN: reads of documented knobs need no directive.
fn threads() -> Option<String> {
    std::env::var("TSX_THREADS").ok()
}
