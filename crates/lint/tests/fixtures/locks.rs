//! Fixture: lock/IO-discipline violations, allow-directives, and clean
//! variants. Linted as if it lived at `crates/store/src/fixture.rs`;
//! never compiled.

use std::fs::File;
use std::sync::{Mutex, RwLock};

/// VIOLATION (lock-order): a second acquisition under a held guard with
/// no directive citing the documented order.
fn nested(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock().unwrap_or_else(|e| e.into_inner());
    let gb = b.lock().unwrap_or_else(|e| e.into_inner());
    *ga + *gb
}

/// VIOLATION (fsync-under-lock): fsync latency stalls every waiter.
fn sync_under_guard(wal: &Mutex<File>) -> std::io::Result<()> {
    let file = wal.lock().unwrap_or_else(|e| e.into_inner());
    file.sync_all()?;
    Ok(())
}

/// ALLOWED: a deliberate nested acquisition citing the documented order.
fn ordered(registry: &RwLock<u32>, session: &Mutex<u32>) -> u32 {
    let map = registry.read().unwrap_or_else(|e| e.into_inner());
    // tsx-lint: allow(lock-order, follows the documented order registry → session → store WAL)
    let s = session.lock().unwrap_or_else(|e| e.into_inner());
    *map + *s
}

/// CLEAN: dropping the first guard before the second acquisition.
fn sequential(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock().unwrap_or_else(|e| e.into_inner());
    let first = *ga;
    drop(ga);
    let gb = b.lock().unwrap_or_else(|e| e.into_inner());
    first + *gb
}

/// CLEAN: a statement temporary releases its guard at the semicolon.
fn temporary(m: &RwLock<Vec<u32>>, n: &Mutex<u32>) -> u32 {
    m.write().unwrap_or_else(|e| e.into_inner()).push(1);
    let g = n.lock().unwrap_or_else(|e| e.into_inner());
    *g
}

/// CLEAN: an if-let guard is scoped to its own block.
fn scoped(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    if let Ok(g) = a.try_lock() {
        return *g;
    }
    let h = b.lock().unwrap_or_else(|e| e.into_inner());
    *h
}
