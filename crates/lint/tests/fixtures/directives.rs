//! Fixture: directive-syntax findings. Linted as if it lived at
//! `crates/cube/src/fixture.rs`; never compiled.

use std::collections::HashMap;

/// VIOLATION (bad-directive): the reason is mandatory.
fn missing_reason(scores: &HashMap<String, f64>) -> usize {
    scores.values().count() // tsx-lint: allow(map-iter)
}

/// VIOLATION (bad-directive): the rule must exist.
fn unknown_rule(scores: &HashMap<String, f64>) -> usize {
    scores.keys().count() // tsx-lint: allow(hash-chaos, with a perfectly fine reason)
}

/// VIOLATION (unused-allow): nothing on the next statement trips the rule.
fn stale() -> u32 {
    // tsx-lint: allow(wall-clock, this statement never reads a clock)
    let x = 1 + 1;
    x
}

/// CLEAN: a well-formed, used directive (reason may contain parens).
fn used(sizes: &HashMap<String, usize>) -> usize {
    sizes.values().sum() // tsx-lint: allow(map-iter, order-insensitive sum (commutative monoid))
}
