//! Fixture: idiomatic code that trips no rule in any family. Linted
//! under every scope in the golden test; never compiled.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Ordered emission, typed errors, one lock at a time.
fn summarize(data: &BTreeMap<String, f64>) -> Result<String, String> {
    let mut out = String::new();
    for (key, value) in data {
        out.push_str(&format!("{key}={value}\n"));
    }
    if out.is_empty() {
        return Err("no data".to_string());
    }
    Ok(out)
}

fn counter_value(lock: &Mutex<u64>) -> u64 {
    let guard = lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *guard
}

/// Raw strings, chars, and lifetimes must not confuse the lexer.
fn tricky<'a>(s: &'a str) -> (&'a str, char, &'static str) {
    (s, '"', r#"quoted "inner" text"#)
}
