//! Fixture: panic-freedom violations, exemptions, and clean variants.
//! Linted as if it lived at `crates/server/src/router.rs`; never compiled.

/// VIOLATION (no-unwrap): a panic here drops the connection.
fn parse_port(raw: &str) -> u16 {
    raw.parse().unwrap()
}

/// VIOLATION (no-unwrap): `.expect` is the same panic with a message.
fn parse_host(raw: &str) -> String {
    raw.split(':').next().expect("host before colon").to_string()
}

/// VIOLATION (no-panic): request handling must degrade to a typed error.
fn route(path: &str) -> &'static str {
    match path {
        "/metrics" => "metrics",
        _ => panic!("unrouted path {path}"),
    }
}

/// VIOLATION (no-panic): `unreachable!` is still an unwind.
fn classify(status: u16) -> &'static str {
    match status / 100 {
        2 => "ok",
        4 => "client",
        5 => "server",
        _ => unreachable!(),
    }
}

/// CLEAN: poison recovery without a panic path.
fn read_counter(lock: &std::sync::Mutex<u64>) -> u64 {
    *lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// CLEAN: identifiers merely *containing* `unwrap` never match.
fn unwrap_or_defaults(value: Option<u16>) -> u16 {
    value.unwrap_or(8080)
}

#[cfg(test)]
mod tests {
    /// EXEMPT: tests may panic freely.
    #[test]
    fn unwraps_are_fine_here() {
        let v: Result<u16, ()> = Ok(1);
        assert_eq!(v.unwrap(), 1);
        if false {
            panic!("test-only");
        }
    }
}
