//! A hand-rolled Rust *line scanner* — not a parser. It produces a
//! sanitized view of a source file in which every comment and every
//! string/char-literal body is blanked to spaces (byte-for-byte, so
//! offsets and line numbers are preserved), while recording three side
//! tables the rules need:
//!
//! * the comments themselves (for `tsx-lint: allow(...)` directives),
//! * the string literals (the env-read rule must see knob names),
//! * `#[cfg(test)]` / `#[test]` item ranges (tests are exempt from
//!   every rule — the invariants guard *shipping* code paths).
//!
//! The scanner understands nested block comments, raw strings
//! (`r"…"`, `r#"…"#`, byte variants), escapes, and the `'a` lifetime vs
//! `'a'` char-literal ambiguity. It deliberately does **not** build an
//! AST: the workspace bans `syn`-class dependencies, and the rules are
//! specified textually (see the crate docs) so a token-accurate
//! sanitized view is exactly enough.

/// One `//`-style comment (doc comments included), with its text.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// The comment text after the slashes, trimmed.
    pub text: String,
    /// Whether any non-whitespace code precedes it on its line.
    pub code_before: bool,
}

/// One string literal's decoded position (content left as written;
/// escapes are not processed — the rules only substring-match knobs).
#[derive(Clone, Debug)]
pub struct StrLit {
    /// Byte offset of the opening quote in the original source.
    pub start: usize,
    /// Byte offset one past the closing quote.
    pub end: usize,
    /// The literal body (between the quotes), as written.
    pub content: String,
}

/// The sanitized view of one source file.
#[derive(Debug)]
pub struct Scan {
    /// Same byte length as the source; comment and literal bodies are
    /// spaces, newlines are kept, code bytes are untouched.
    pub code: String,
    /// Every line comment, in order.
    pub comments: Vec<Comment>,
    /// Every string literal, in order.
    pub strings: Vec<StrLit>,
    /// Byte offset of each line start (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// Half-open byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(usize, usize)>,
}

impl Scan {
    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether an offset falls inside a test-only item.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| offset >= a && offset < b)
    }

    /// The string literal fully contained in `range`, if any.
    pub fn string_in(&self, range: (usize, usize)) -> Option<&StrLit> {
        self.strings
            .iter()
            .find(|s| s.start >= range.0 && s.end <= range.1)
    }
}

/// Sanitizes `source` (see module docs).
pub fn scan(source: &str) -> Scan {
    let bytes = source.as_bytes();
    let mut code = vec![0u8; bytes.len()];
    code.copy_from_slice(bytes);
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut line_starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' && i + 1 < bytes.len() {
            line_starts.push(i + 1);
        }
    }
    let line_of = |offset: usize| -> usize {
        match line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    };

    let blank = |code: &mut [u8], from: usize, to: usize| {
        for c in code.iter_mut().take(to).skip(from) {
            if *c != b'\n' {
                *c = b' ';
            }
        }
    };

    let next_at = |base: usize, k: usize| bytes.get(base + k).copied().unwrap_or(0);
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if next_at(i, 1) == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = source[start..i].trim_start_matches('/').trim().to_string();
                let line = line_of(start);
                let line_start = line_starts[line - 1];
                let code_before = code[line_start..start]
                    .iter()
                    .any(|&c| !c.is_ascii_whitespace());
                comments.push(Comment {
                    line,
                    text,
                    code_before,
                });
                blank(&mut code, start, i);
            }
            b'/' if next_at(i, 1) == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && next_at(i, 1) == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && next_at(i, 1) == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut code, start, i);
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                // r"…", r#"…"#, br"…", rb is not a thing; b handled below.
                let mut j = i;
                while bytes.get(j) == Some(&b'r') || bytes.get(j) == Some(&b'b') {
                    j += 1;
                }
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                // j is at the opening quote.
                let body_start = j + 1;
                let mut k = body_start;
                'raw: while k < bytes.len() {
                    if bytes[k] == b'"' {
                        let mut h = 0usize;
                        while bytes.get(k + 1 + h) == Some(&b'#') {
                            h += 1;
                        }
                        if h >= hashes {
                            let end = k + 1 + hashes;
                            strings.push(StrLit {
                                start: i,
                                end,
                                content: source[body_start..k].to_string(),
                            });
                            blank(&mut code, body_start, k);
                            i = end;
                            break 'raw;
                        }
                    }
                    k += 1;
                }
                if k >= bytes.len() {
                    i = bytes.len(); // unterminated; blank nothing more
                }
            }
            b'b' if next_at(i, 1) == b'"' => {
                i = consume_string(source, bytes, i + 1, i, &mut strings, &mut code);
            }
            b'b' if next_at(i, 1) == b'\'' => {
                i = consume_char(bytes, i + 1, &mut code);
            }
            b'"' => {
                i = consume_string(source, bytes, i, i, &mut strings, &mut code);
            }
            b'\'' => {
                // Lifetime or char literal?
                if next_at(i, 1) == b'\\' {
                    i = consume_char(bytes, i, &mut code);
                } else {
                    // 'x' is a char literal; 'x anything-else is a lifetime.
                    // Look past one UTF-8 character for a closing quote.
                    let mut j = i + 1;
                    if j < bytes.len() {
                        j += utf8_len(bytes[j]);
                    }
                    if bytes.get(j) == Some(&b'\'') {
                        blank(&mut code, i + 1, j);
                        i = j + 1;
                    } else {
                        i += 1; // lifetime: leave as code
                    }
                }
            }
            _ => i += 1,
        }
    }

    let code = String::from_utf8_lossy(&code).into_owned();
    let test_ranges = find_test_ranges(&code);
    Scan {
        code,
        comments,
        strings,
        line_starts,
        test_ranges,
    }
}

/// True when `i` starts a raw (possibly byte) string literal.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // Must not be the tail of an identifier (e.g. `attr` before `"`).
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Consumes a `"…"` literal starting at quote offset `q` (the literal
/// itself started at `lit_start`, which differs for `b"…"`).
fn consume_string(
    source: &str,
    bytes: &[u8],
    q: usize,
    lit_start: usize,
    strings: &mut Vec<StrLit>,
    code: &mut [u8],
) -> usize {
    let body_start = q + 1;
    let mut i = body_start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                strings.push(StrLit {
                    start: lit_start,
                    end: i + 1,
                    content: source[body_start..i].to_string(),
                });
                for c in code.iter_mut().take(i).skip(body_start) {
                    if *c != b'\n' {
                        *c = b' ';
                    }
                }
                return i + 1;
            }
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Consumes a `'…'` char literal starting at quote offset `q`.
fn consume_char(bytes: &[u8], q: usize, code: &mut [u8]) -> usize {
    let mut i = q + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => {
                for c in code.iter_mut().take(i).skip(q + 1) {
                    if *c != b'\n' {
                        *c = b' ';
                    }
                }
                return i + 1;
            }
            _ => i += 1,
        }
    }
    bytes.len()
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Byte ranges of items annotated `#[cfg(test)]` or `#[test]` in
/// sanitized code: from the attribute through the item's closing brace
/// (or terminating semicolon for brace-less items like `use`).
fn find_test_ranges(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut from = 0usize;
    loop {
        let hit = match (
            find_at(code, from, "cfg(test)"),
            find_at(code, from, "#[test]"),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let Some(at) = hit else { break };
        from = at + 1;
        // Walk back to the `#[` that opens this attribute (for the
        // `#[test]` pattern the hit itself is the opener); bail if this
        // `cfg(test)` is not inside an attribute at all.
        let Some(attr_start) = code[..(at + 2).min(code.len())].rfind("#[") else {
            continue;
        };
        if ranges.iter().any(|&(a, b)| attr_start >= a && at < b) {
            continue; // already inside a recorded test item
        }
        // Find the attribute's closing `]`.
        let mut depth = 0usize;
        let mut i = attr_start + 1;
        let mut attr_end = None;
        while i < bytes.len() {
            match bytes[i] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        attr_end = Some(i + 1);
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let Some(mut i) = attr_end else { continue };
        // Skip whitespace and any further attributes before the item.
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i + 1 < bytes.len() && bytes[i] == b'#' && bytes[i + 1] == b'[' {
                let mut depth = 0usize;
                while i < bytes.len() {
                    match bytes[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            } else {
                break;
            }
        }
        // The item runs to its matching `}` (tracking nesting), or to a
        // `;` that arrives before any `{` (brace-less item).
        let mut depth = 0usize;
        let mut end = bytes.len();
        let mut j = i;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        ranges.push((attr_start, end));
        from = end;
    }
    ranges
}

/// First occurrence of `needle` at or after `from`.
fn find_at(haystack: &str, from: usize, needle: &str) -> Option<usize> {
    haystack
        .get(from..)
        .and_then(|s| s.find(needle))
        .map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked_but_offsets_hold() {
        let src = "let a = \"unwrap()\"; // unwrap()\nlet b = 1;\n";
        let s = scan(src);
        assert_eq!(s.code.len(), src.len());
        assert!(!s.code.contains("unwrap"));
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].content, "unwrap()");
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].code_before);
        assert_eq!(s.line_of(src.find("let b").unwrap()), 2);
    }

    #[test]
    fn raw_strings_and_char_literals_are_handled() {
        let src =
            "let r = r#\"lock() \"quoted\" body\"#; let c = '\\''; let lt: &'static str = \"x\";";
        let s = scan(src);
        assert!(!s.code.contains("lock()"));
        assert!(s.code.contains("'static"));
        assert_eq!(s.strings[0].content, "lock() \"quoted\" body");
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let src = "a /* outer /* inner */ still comment */ b";
        let s = scan(src);
        assert!(s.code.starts_with('a'));
        assert!(s.code.trim_end().ends_with('b'));
        assert!(!s.code.contains("comment"));
    }

    #[test]
    fn cfg_test_items_are_ranged() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let s = scan(src);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(s.in_test(unwrap_at));
        assert!(!s.in_test(src.find("live").unwrap()));
        assert!(!s.in_test(src.find("after").unwrap()));
    }

    #[test]
    fn test_attr_on_fn_is_ranged() {
        let src = "#[test]\nfn check() { y.expect(\"boom\"); }\nfn live() {}\n";
        let s = scan(src);
        assert!(s.in_test(src.find("expect").unwrap()));
        assert!(!s.in_test(src.find("live").unwrap()));
    }
}
