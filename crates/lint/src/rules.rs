//! The three rule families, implemented over the sanitized view from
//! [`crate::lexer`]. Every matcher is token-accurate (identifier
//! boundaries, empty-argument checks, receiver lookup across
//! line-wrapped method chains) but deliberately type-free: the rules
//! are specified textually, and anything the scanner cannot prove is
//! left alone rather than guessed at.

use crate::lexer::Scan;
use crate::{Diagnostic, Family};

/// HashMap/HashSet iteration feeding results (determinism family).
pub const MAP_ITER: &str = "map-iter";
/// `Instant::now` / `SystemTime` in pure-compute code.
pub const WALL_CLOCK: &str = "wall-clock";
/// Environment reads outside the documented knobs.
pub const ENV_READ: &str = "env-read";
/// `.unwrap()` / `.expect()` in a request path.
pub const NO_UNWRAP: &str = "no-unwrap";
/// `panic!` / `unreachable!` / `todo!` / `unimplemented!` in a request path.
pub const NO_PANIC: &str = "no-panic";
/// A second lock acquisition under a held guard.
pub const LOCK_ORDER: &str = "lock-order";
/// An fsync-class call under a held guard.
pub const FSYNC_UNDER_LOCK: &str = "fsync-under-lock";

/// Environment variables the workspace documents as behaviour knobs.
/// Reads of anything else inside a determinism-scoped crate are
/// findings: an undocumented env read is a hidden input that can make
/// two runs of the same request diverge.
pub const ALLOWED_ENV_KNOBS: &[&str] = &["TSX_THREADS", "TSX_LOG", "TSX_REGEN_GOLDEN"];

/// Every rule id, for directive validation and `--list-rules`.
pub const ALL_RULES: &[&str] = &[
    MAP_ITER,
    WALL_CLOCK,
    ENV_READ,
    NO_UNWRAP,
    NO_PANIC,
    LOCK_ORDER,
    FSYNC_UNDER_LOCK,
];

/// Map methods whose iteration order is the hash order.
const MAP_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Runs every family in `families` over one sanitized file.
pub fn run(scan: &Scan, families: &[Family], wall_clock_exempt: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for family in families {
        match family {
            Family::Determinism => determinism(scan, wall_clock_exempt, &mut out),
            Family::PanicFree => panic_free(scan, &mut out),
            Family::Locks => locks(scan, &mut out),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

fn determinism(scan: &Scan, wall_clock_exempt: bool, out: &mut Vec<Diagnostic>) {
    let maps = map_typed_idents(&scan.code);

    // Iteration methods on a receiver known to be HashMap/HashSet-typed.
    for method in MAP_ITER_METHODS {
        for call in method_calls(&scan.code, method) {
            if scan.in_test(call.at) {
                continue;
            }
            let Some(receiver) = receiver_ident(&scan.code, call.dot) else {
                continue; // call-result receiver: type unknowable here
            };
            if maps.contains(&receiver) {
                out.push(Diagnostic::at(
                    scan.line_of(call.at),
                    MAP_ITER,
                    format!(
                        "`{receiver}.{method}()` iterates a HashMap/HashSet in hash \
                         order; emit through a sorted/BTreeMap/chunk-ordered path \
                         (construction and lookup are fine)"
                    ),
                ));
            }
        }
    }
    // `for x in [&[mut]] ident` over a known map.
    for (at, expr) in for_loop_exprs(&scan.code) {
        if scan.in_test(at) {
            continue;
        }
        let path = expr
            .trim_start_matches('&')
            .trim_start()
            .trim_start_matches("mut ")
            .trim();
        let last = path.rsplit('.').next().unwrap_or(path).trim();
        if is_ident(last) && maps.contains(&last.to_string()) {
            out.push(Diagnostic::at(
                scan.line_of(at),
                MAP_ITER,
                format!(
                    "`for … in {expr}` iterates a HashMap/HashSet in hash order; \
                     emit through a sorted/BTreeMap/chunk-ordered path"
                ),
            ));
        }
    }

    // Wall-clock reads. Timing modules (latency.rs, timers.rs) are the
    // documented exemption: their output is golden-stripped by design.
    if !wall_clock_exempt {
        for token in ["Instant::now", "SystemTime::now", "SystemTime"] {
            for at in ident_path_occurrences(&scan.code, token) {
                if scan.in_test(at) {
                    continue;
                }
                // `SystemTime` alone also matches the `::now` form; report
                // each offset once.
                if token == "SystemTime" && scan.code[at..].starts_with("SystemTime::now") {
                    continue;
                }
                out.push(Diagnostic::at(
                    scan.line_of(at),
                    WALL_CLOCK,
                    format!(
                        "`{token}` in a pure-compute crate: wall-clock reads are \
                         nondeterministic inputs; only golden-stripped timing \
                         output (latency.*, StageTimers) may observe time"
                    ),
                ));
            }
        }
    }

    // Environment reads outside the documented knobs.
    let aliases = env_knob_aliases(scan);
    for name in ["var", "var_os"] {
        for at in env_calls(&scan.code, name) {
            if scan.in_test(at) {
                continue;
            }
            let Some(args) = call_arg_range(&scan.code, at) else {
                continue;
            };
            let allowed = match scan.string_in(args) {
                Some(lit) => ALLOWED_ENV_KNOBS.contains(&lit.content.as_str()),
                None => {
                    let arg_text = scan.code[args.0..args.1].trim();
                    aliases.iter().any(|a| a == arg_text)
                }
            };
            if !allowed {
                out.push(Diagnostic::at(
                    scan.line_of(at),
                    ENV_READ,
                    format!(
                        "environment read outside the documented knobs \
                         ({}): hidden inputs break run-to-run determinism",
                        ALLOWED_ENV_KNOBS.join(", ")
                    ),
                ));
            }
        }
    }
}

/// Constants in this file bound to an allowed knob name, e.g.
/// `pub const THREADS_ENV: &str = "TSX_THREADS";` — reads through the
/// alias are reads of the documented knob.
fn env_knob_aliases(scan: &Scan) -> Vec<String> {
    let mut out = Vec::new();
    for lit in &scan.strings {
        if !ALLOWED_ENV_KNOBS.contains(&lit.content.as_str()) {
            continue;
        }
        // Walk back over `= … str & : IDENT const` (loosely).
        let before = &scan.code[..lit.start];
        let Some(eq) = before.rfind('=') else {
            continue;
        };
        let decl = &before[..eq];
        let Some(colon) = decl.rfind(':') else {
            continue;
        };
        let name = decl[..colon].trim().rsplit(char::is_whitespace).next();
        if let Some(name) = name {
            if is_ident(name) && decl.contains("const") {
                out.push(name.to_string());
            }
        }
    }
    out
}

/// Occurrences of `env::var(` / `env::var_os(` / `std::env::var(`.
fn env_calls(code: &str, name: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for at in ident_occurrences(code, name) {
        // Must be a path call `env::var(`…
        let before = code[..at].trim_end();
        if !before.ends_with("env::") {
            continue;
        }
        let after = code[at + name.len()..].trim_start();
        if after.starts_with('(') {
            out.push(at);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Panic freedom
// ---------------------------------------------------------------------------

fn panic_free(scan: &Scan, out: &mut Vec<Diagnostic>) {
    for method in ["unwrap", "expect"] {
        for call in method_calls(&scan.code, method) {
            if scan.in_test(call.at) {
                continue;
            }
            out.push(Diagnostic::at(
                scan.line_of(call.at),
                NO_UNWRAP,
                format!(
                    "`.{method}()` in a request path: a panic here is a dropped \
                     connection or a poisoned lock, not a bug report — map the \
                     error to a typed 4xx/5xx instead"
                ),
            ));
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for at in macro_calls(&scan.code, mac) {
            if scan.in_test(at) {
                continue;
            }
            out.push(Diagnostic::at(
                scan.line_of(at),
                NO_PANIC,
                format!(
                    "`{mac}!` in a request path: request handling must degrade \
                     to a typed error, never unwind"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Lock / IO discipline
// ---------------------------------------------------------------------------

fn locks(scan: &Scan, out: &mut Vec<Diagnostic>) {
    let code = &scan.code;

    // Every acquisition-shaped call, by offset.
    let mut acquisitions: Vec<(usize, usize, &'static str)> = Vec::new(); // (at, dot, name)
    for name in ["lock", "try_lock", "read", "write"] {
        for call in method_calls(code, name) {
            if empty_args(code, call.at) {
                let n: &'static str = match name {
                    "lock" => "lock",
                    "try_lock" => "try_lock",
                    "read" => "read",
                    _ => "write",
                };
                acquisitions.push((call.at, call.dot, n));
            }
        }
    }
    acquisitions.sort_unstable();

    // fsync-class calls.
    let mut syncs: Vec<(usize, &'static str)> = Vec::new();
    for name in ["sync_all", "sync_data"] {
        for call in method_calls(code, name) {
            let n: &'static str = if name == "sync_all" {
                "sync_all"
            } else {
                "sync_data"
            };
            syncs.push((call.at, n));
        }
    }
    syncs.sort_unstable();

    // Guard bindings: `let <pat> = <receiver>.lock()…;` where the
    // initializer's tail is guard-preserving (`?`, `.expect(…)`,
    // `.unwrap…(…)`, `.map_err(…)`), so the binding holds the guard for
    // the rest of its scope.
    #[derive(Debug)]
    struct Guard {
        name: String,
        bind_at: usize, // offset of the acquisition that created it
        depth: usize,   // brace depth the guard lives at
        line: usize,
        receiver: String,
    }
    let lets = let_statements(code);
    let mut pending: Vec<(usize, String, String, usize)> = Vec::new(); // (bind_at, name, receiver, depth_bias)
    for stmt in &lets {
        let init = &code[stmt.init.0..stmt.init.1];
        let Some((acq_rel, acq_dot_rel)) = last_acquisition_in(init) else {
            continue;
        };
        let after = &init[acq_rel..];
        let Some(close) = balanced_call_end(after) else {
            continue;
        };
        if !trailing_is_guard_preserving(&after[close..]) {
            continue;
        }
        let bind_at = stmt.init.0 + acq_rel;
        let receiver =
            receiver_ident(code, stmt.init.0 + acq_dot_rel).unwrap_or_else(|| "<expr>".to_string());
        // A `{`-terminated initializer (if-let / while-let) scopes the
        // guard to the block that follows, one level deeper.
        let depth_bias = usize::from(stmt.brace_terminated);
        pending.push((bind_at, stmt.pattern_name.clone(), receiver, depth_bias));
    }
    pending.sort_by_key(|p| p.0);

    // One linear walk: brace depth + the set of live guards.
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    let mut live: Vec<Guard> = Vec::new();
    let mut pi = 0usize; // next pending guard
    let mut ai = 0usize; // next acquisition
    let mut si = 0usize; // next sync
    let drops = drop_calls(code);
    let mut di = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        while pi < pending.len() && pending[pi].0 == i {
            let (bind_at, name, receiver, bias) = pending[pi].clone();
            live.push(Guard {
                name,
                bind_at,
                depth: depth + bias,
                line: scan.line_of(bind_at),
                receiver,
            });
            pi += 1;
        }
        while ai < acquisitions.len() && acquisitions[ai].0 == i {
            let (at, dot, name) = acquisitions[ai];
            ai += 1;
            if scan.in_test(at) {
                continue;
            }
            // A guard-creating acquisition is itself already in `live`
            // (pushed just above at this same offset); it must still be
            // checked against every *other* held guard.
            if let Some(guard) = live.iter().rev().find(|g| g.bind_at != at) {
                let receiver = receiver_ident(code, dot).unwrap_or_else(|| "<expr>".to_string());
                out.push(Diagnostic::at(
                    scan.line_of(at),
                    LOCK_ORDER,
                    format!(
                        "`{receiver}.{name}()` acquired while guard `{g}` \
                         (over `{gr}`, line {gl}) is held; nested acquisitions \
                         must follow the documented order registry → session → \
                         store WAL and carry an allow directive citing it",
                        g = guard.name,
                        gr = guard.receiver,
                        gl = guard.line,
                    ),
                ));
            }
        }
        while si < syncs.len() && syncs[si].0 == i {
            let (at, name) = syncs[si];
            si += 1;
            if scan.in_test(at) {
                continue;
            }
            if let Some(guard) = live.last() {
                out.push(Diagnostic::at(
                    scan.line_of(at),
                    FSYNC_UNDER_LOCK,
                    format!(
                        "`{name}()` while guard `{g}` (over `{gr}`, line {gl}) is \
                         held: fsync latency under a lock stalls every waiter; \
                         deliberate fsync-before-ack sites must carry an allow \
                         directive citing the documented order",
                        g = guard.name,
                        gr = guard.receiver,
                        gl = guard.line,
                    ),
                ));
            }
        }
        while di < drops.len() && drops[di].0 == i {
            let name = drops[di].1.clone();
            di += 1;
            live.retain(|g| g.name != name);
        }
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                live.retain(|g| g.depth <= depth);
            }
            _ => {}
        }
    }
}

/// `drop(ident)` call sites: (offset, ident).
fn drop_calls(code: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for at in ident_occurrences(code, "drop") {
        // Free-function position: not preceded by `.` or `::`.
        let before = code[..at].trim_end();
        if before.ends_with('.') || before.ends_with("::") {
            continue;
        }
        let Some(args) = call_arg_range(code, at) else {
            continue;
        };
        let arg = code[args.0..args.1].trim();
        if is_ident(arg) {
            out.push((at, arg.to_string()));
        }
    }
    out.sort_by_key(|d| d.0);
    out
}

/// One `let` statement's shape, offsets into sanitized code.
#[derive(Debug)]
struct LetStmt {
    /// Initializer range (after `=`, before `;` / `else` / `{`).
    init: (usize, usize),
    /// First meaningful identifier bound by the pattern.
    pattern_name: String,
    /// Whether the initializer was terminated by `{` (if-let/while-let).
    brace_terminated: bool,
}

fn let_statements(code: &str) -> Vec<LetStmt> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for at in ident_occurrences(code, "let") {
        // Find the binder `=` (skip `==`, `>=`, `<=`, `!=`, `=>`).
        let mut i = at + 3;
        let mut eq = None;
        while i < bytes.len() {
            match bytes[i] {
                b'=' => {
                    let prev = bytes[i - 1];
                    let next = bytes.get(i + 1).copied().unwrap_or(0);
                    if prev != b'='
                        && prev != b'!'
                        && prev != b'<'
                        && prev != b'>'
                        && next != b'='
                        && next != b'>'
                    {
                        eq = Some(i);
                        break;
                    }
                    i += 1;
                }
                b';' | b'{' => break, // `let x;` or something odd
                _ => i += 1,
            }
        }
        let Some(eq) = eq else { continue };
        let pattern_name = pattern_ident(&code[at + 3..eq]);
        // Initializer: forward to `;`, `else`, or `{` at nesting 0.
        let mut j = eq + 1;
        let mut paren = 0isize;
        let mut brk = 0isize;
        let mut end = None;
        let mut brace_terminated = false;
        while j < bytes.len() {
            match bytes[j] {
                b'(' => paren += 1,
                b')' => paren -= 1,
                b'[' => brk += 1,
                b']' => brk -= 1,
                // Closure parameters may contain anything; a `|` at
                // nesting 0 means the initializer is a closure —
                // never a guard binding. Bail.
                b'|' if paren == 0 && brk == 0 => {
                    end = None;
                    break;
                }
                b';' if paren == 0 && brk == 0 => {
                    end = Some(j);
                    break;
                }
                b'{' if paren == 0 && brk == 0 => {
                    end = Some(j);
                    brace_terminated = true;
                    break;
                }
                b'e' if paren == 0
                    && brk == 0
                    && code[j..].starts_with("else")
                    && word_boundary(bytes, j, 4) =>
                {
                    end = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(end) = end else { continue };
        out.push(LetStmt {
            init: (eq + 1, end),
            pattern_name,
            brace_terminated,
        });
    }
    out
}

/// First bound identifier in a `let` pattern, skipping `mut`, wrapper
/// constructors and type ascription.
fn pattern_ident(pattern: &str) -> String {
    let pattern = pattern.split(':').next().unwrap_or(pattern);
    pattern
        .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty())
        .find(|w| !matches!(*w, "mut" | "ref" | "Ok" | "Some" | "Err"))
        .unwrap_or("_")
        .to_string()
}

/// Last acquisition-shaped call inside an initializer; returns
/// `(offset_of_name, offset_of_dot)` relative to `init`.
fn last_acquisition_in(init: &str) -> Option<(usize, usize)> {
    let mut best = None;
    for name in ["lock", "try_lock", "read", "write"] {
        for call in method_calls(init, name) {
            if empty_args(init, call.at) && best.is_none_or(|(b, _)| call.at > b) {
                best = Some((call.at, call.dot));
            }
        }
    }
    best
}

/// Given text starting at a method name, the relative offset one past
/// the call's balanced `(...)`.
fn balanced_call_end(s: &str) -> Option<usize> {
    let open = s.find('(')?;
    let bytes = s.as_bytes();
    let mut depth = 0isize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether an initializer tail after the acquisition keeps the guard:
/// only `?` and error-mapping adapters are allowed; any other method
/// call consumes the guard into a temporary.
fn trailing_is_guard_preserving(mut s: &str) -> bool {
    loop {
        s = s.trim_start();
        if s.is_empty() {
            return true;
        }
        if let Some(rest) = s.strip_prefix('?') {
            s = rest;
            continue;
        }
        let mut matched = false;
        for adapter in [".unwrap_or_else", ".expect", ".unwrap", ".map_err"] {
            if let Some(rest) = s.strip_prefix(adapter) {
                let Some(end) = balanced_call_end(rest) else {
                    return false;
                };
                // `.unwrap` must be the call itself, not `.unwrap_or(…)`.
                if rest.trim_start().starts_with('(') {
                    s = &rest[end..];
                    matched = true;
                    break;
                }
            }
        }
        if !matched {
            return false;
        }
    }
}

// ---------------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------------

/// A `.name(` method call: `at` is the name's offset, `dot` the dot's.
#[derive(Clone, Copy, Debug)]
pub struct MethodCall {
    pub at: usize,
    pub dot: usize,
}

/// Exact-identifier method calls `.name(`, dot and call possibly
/// separated by whitespace/newlines (rustfmt wraps long chains).
pub fn method_calls(code: &str, name: &str) -> Vec<MethodCall> {
    let mut out = Vec::new();
    for at in ident_occurrences(code, name) {
        let before = code[..at].trim_end();
        if !before.ends_with('.') {
            continue;
        }
        let dot = before.len() - 1;
        let after = code[at + name.len()..].trim_start();
        if after.starts_with('(') {
            out.push(MethodCall { at, dot });
        }
    }
    out
}

/// Whether the call at `name_at` has an empty argument list `()`.
pub fn empty_args(code: &str, name_at: usize) -> bool {
    let after = &code[name_at..];
    let Some(open) = after.find('(') else {
        return false;
    };
    after[open + 1..].trim_start().starts_with(')')
}

/// The identifier immediately before a `.` (the receiver's last path
/// segment), or `None` when the receiver is a call result / closing
/// bracket / literal.
pub fn receiver_ident(code: &str, dot: usize) -> Option<String> {
    let before = code[..dot].trim_end();
    let bytes = before.as_bytes();
    let mut i = bytes.len();
    while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        i -= 1;
    }
    if i == bytes.len() {
        return None;
    }
    let ident = &before[i..];
    if ident.as_bytes()[0].is_ascii_digit() {
        return None;
    }
    Some(ident.to_string())
}

/// Word-boundary occurrences of a bare identifier.
pub fn ident_occurrences(code: &str, ident: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = code.get(from..).and_then(|s| s.find(ident)) {
        let at = from + p;
        if word_boundary(bytes, at, ident.len()) {
            out.push(at);
        }
        from = at + 1;
    }
    out
}

/// Occurrences of a `Path::like` token with identifier boundaries on
/// both ends.
pub fn ident_path_occurrences(code: &str, path: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = code.get(from..).and_then(|s| s.find(path)) {
        let at = from + p;
        let head_ok = at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let endb = at + path.len();
        let tail_ok =
            endb >= bytes.len() || !(bytes[endb].is_ascii_alphanumeric() || bytes[endb] == b'_');
        if head_ok && tail_ok {
            out.push(at);
        }
        from = at + 1;
    }
    out
}

fn word_boundary(bytes: &[u8], at: usize, len: usize) -> bool {
    let head_ok = at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
    let end = at + len;
    let tail_ok = end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
    head_ok && tail_ok
}

/// `name!(` macro invocations in non-path position.
pub fn macro_calls(code: &str, name: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for at in ident_occurrences(code, name) {
        let after = code[at + name.len()..].trim_start();
        if after.starts_with('!') {
            out.push(at);
        }
    }
    out
}

/// `(start, end)` of a call's argument text, given the callee offset.
pub fn call_arg_range(code: &str, name_at: usize) -> Option<(usize, usize)> {
    let after = &code[name_at..];
    let open = after.find('(')?;
    let end = balanced_call_end(after)?;
    Some((name_at + open + 1, name_at + end - 1))
}

/// `for <pat> in <expr> {` headers: `(offset_of_for, expr_text)`.
fn for_loop_exprs(code: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for at in ident_occurrences(code, "for") {
        let rest = &code[at + 3..];
        let Some(in_rel) = find_word(rest, "in") else {
            continue;
        };
        let after_in = &rest[in_rel + 2..];
        let Some(brace) = after_in.find('{') else {
            continue;
        };
        // Generic `for<'a>` and trait bounds have no `in`-then-`{` shape
        // nearby; cap the search to the same statement.
        if rest[..in_rel].contains(';') || after_in[..brace].contains(';') {
            continue;
        }
        out.push((at, after_in[..brace].trim().to_string()));
    }
    out
}

/// First word-boundary occurrence of `word` in `s`.
fn find_word(s: &str, word: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut from = 0usize;
    while let Some(p) = s.get(from..).and_then(|t| t.find(word)) {
        let at = from + p;
        if word_boundary(bytes, at, word.len()) {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

pub fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
        && !s.as_bytes()[0].is_ascii_digit()
}

/// Identifiers declared with a HashMap/HashSet type or constructed via
/// `HashMap::new()`-style calls, collected file-wide (scope-free on
/// purpose: shadowing across scopes is rare and a false positive is one
/// allow directive away).
fn map_typed_idents(code: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for ty in ["HashMap", "HashSet"] {
        for at in ident_occurrences(code, ty) {
            let after = code[at + ty.len()..].trim_start();
            let before = code[..at].trim_end();
            if after.starts_with("::") {
                // `let [mut] name = HashMap::new()` / `with_capacity(…)`.
                let Some(rest) = before.strip_suffix('=') else {
                    continue;
                };
                let decl = rest.trim_end();
                let bytes = decl.as_bytes();
                let mut i = bytes.len();
                while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
                    i -= 1;
                }
                let name = &decl[i..];
                if is_ident(name) && name != "mut" {
                    out.push(name.to_string());
                }
            } else if after.starts_with('<') || after.starts_with('>') || after.starts_with(',') {
                // Type position: `name: [&[mut]] HashMap<…>`. Strip
                // reference sigils back to the `:`, then take the
                // identifier before it. A `Vec<HashMap<…>>` receiver is
                // *not* recorded: iterating the Vec is ordered.
                let mut decl = before;
                loop {
                    let trimmed = decl.trim_end();
                    if let Some(r) = trimmed.strip_suffix("mut") {
                        decl = r;
                    } else if let Some(r) = trimmed.strip_suffix('&') {
                        decl = r;
                    } else {
                        decl = trimmed;
                        break;
                    }
                }
                let Some(rest) = decl.strip_suffix(':') else {
                    continue;
                };
                let decl = rest.trim_end();
                let bytes = decl.as_bytes();
                let mut i = bytes.len();
                while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
                    i -= 1;
                }
                let name = &decl[i..];
                if is_ident(name) {
                    out.push(name.to_string());
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn diags(src: &str, family: Family) -> Vec<Diagnostic> {
        run(&scan(src), &[family], false)
    }

    #[test]
    fn map_iteration_is_flagged_but_lookup_is_not() {
        let src = "use std::collections::HashMap;\n\
                   fn f(scores: &HashMap<String, f64>) -> Vec<String> {\n\
                       let mut out = Vec::new();\n\
                       for (k, v) in scores.iter() { out.push(format!(\"{k}{v}\")); }\n\
                       let _ = scores.get(\"x\");\n\
                       out\n\
                   }\n";
        let d = diags(src, Family::Determinism);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, MAP_ITER);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn for_loop_over_map_is_flagged_and_btreemap_is_not() {
        let src = "use std::collections::{BTreeMap, HashSet};\n\
                   fn f(seen: HashSet<u32>, sorted: BTreeMap<u32, u32>) {\n\
                       for x in &seen { emit(x); }\n\
                       for (k, v) in &sorted { emit2(k, v); }\n\
                   }\n";
        let d = diags(src, Family::Determinism);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn wall_clock_and_env_reads_are_flagged() {
        let src = "fn f() {\n\
                       let t = std::time::Instant::now();\n\
                       let h = std::env::var(\"HOME\");\n\
                       let ok = std::env::var(\"TSX_THREADS\");\n\
                   }\n";
        let d = diags(src, Family::Determinism);
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].rule, WALL_CLOCK);
        assert_eq!(d[1].rule, ENV_READ);
        assert_eq!(d[1].line, 3);
    }

    #[test]
    fn env_reads_through_documented_const_aliases_are_clean() {
        let src = "pub const THREADS_ENV: &str = \"TSX_THREADS\";\n\
                   fn f() { let _ = std::env::var(THREADS_ENV); }\n";
        assert!(diags(src, Family::Determinism).is_empty());
    }

    #[test]
    fn unwraps_and_panics_flag_outside_tests_only() {
        let src = "fn live() { x.unwrap(); y.expect(\"no\"); panic!(\"boom\"); }\n\
                   fn ok() { z.unwrap_or_else(|e| e.into_inner()); }\n\
                   #[cfg(test)]\n\
                   mod tests { fn t() { q.unwrap(); panic!(); } }\n";
        let d = diags(src, Family::PanicFree);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|x| x.line == 1));
    }

    #[test]
    fn second_lock_under_a_held_guard_is_flagged() {
        let src = "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                       let ga = a.lock().unwrap_or_else(|e| e.into_inner());\n\
                       let gb = b.lock().unwrap_or_else(|e| e.into_inner());\n\
                   }\n";
        let d = diags(src, Family::Locks);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, LOCK_ORDER);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn statement_temporaries_do_not_open_guard_scopes() {
        let src = "fn f(m: &RwLock<Vec<u32>>, n: &Mutex<u32>) {\n\
                       m.write().unwrap_or_else(|e| e.into_inner()).push(1);\n\
                       let g = n.lock().unwrap_or_else(|e| e.into_inner());\n\
                   }\n";
        assert!(diags(src, Family::Locks).is_empty());
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                       let ga = a.lock().unwrap_or_else(|e| e.into_inner());\n\
                       drop(ga);\n\
                       let gb = b.lock().unwrap_or_else(|e| e.into_inner());\n\
                   }\n";
        assert!(diags(src, Family::Locks).is_empty());
    }

    #[test]
    fn fsync_under_guard_is_flagged() {
        let src = "fn f(m: &Mutex<File>) -> std::io::Result<()> {\n\
                       let g = m.lock().unwrap_or_else(|e| e.into_inner());\n\
                       g.sync_all()?;\n\
                       Ok(())\n\
                   }\n";
        let d = diags(src, Family::Locks);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, FSYNC_UNDER_LOCK);
    }

    #[test]
    fn let_else_guards_scope_to_the_enclosing_block() {
        let src = "fn f(gate: &Mutex<()>, h: &Mutex<u32>) {\n\
                       let Ok(_g) = gate.try_lock() else { return };\n\
                       let Ok(s) = h.lock() else { return };\n\
                   }\n";
        let d = diags(src, Family::Locks);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn if_let_guard_scopes_to_its_block_only() {
        let src = "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                       if let Ok(g) = a.try_lock() {\n\
                           use_it(&g);\n\
                       }\n\
                       let h = b.lock().unwrap_or_else(|e| e.into_inner());\n\
                   }\n";
        assert!(diags(src, Family::Locks).is_empty());
    }

    #[test]
    fn io_write_with_args_is_not_an_acquisition() {
        let src = "fn f(m: &Mutex<File>) {\n\
                       let g = m.lock().unwrap_or_else(|e| e.into_inner());\n\
                       g.write_all(b\"x\").ok();\n\
                       other.write(buf).ok();\n\
                   }\n";
        assert!(diags(src, Family::Locks).is_empty());
    }
}
