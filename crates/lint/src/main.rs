//! `tsx-lint` — run the workspace-invariant static-analysis pass.
//!
//! ```text
//! tsx-lint [--root <dir>] [--format human|json] [--deny] [--baseline <file>]
//! ```
//!
//! Walks `crates/*/src/**/*.rs`, applies the scoped rule families
//! (determinism / panic-freedom / lock discipline), subtracts the
//! committed baseline, and prints `file:line: rule: message` diagnostics
//! (or a JSON report). Exits 1 under `--deny` when findings remain; always
//! exits 2 on usage or IO errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use tsexplain_lint::{apply_baseline, json_report, lint_workspace, load_baseline, rules};

struct Options {
    root: Option<PathBuf>,
    format: Format,
    deny: bool,
    baseline: Option<PathBuf>,
    list_rules: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

const USAGE: &str = "usage: tsx-lint [--root <dir>] [--format human|json] [--deny] \
                     [--baseline <file>] [--list-rules]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        format: Format::Human,
        deny: false,
        baseline: None,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("human") => opts.format = Format::Human,
                Some("json") => opts.format = Format::Json,
                _ => return Err("--format needs `human` or `json`".to_string()),
            },
            "--deny" => opts.deny = true,
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// The workspace root: `--root` if given, else the nearest ancestor of
/// the current directory whose `Cargo.toml` declares `[workspace]`.
fn find_root(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(root) = explicit {
        return if root.join("Cargo.toml").is_file() {
            Ok(root)
        } else {
            Err(format!("{}: no Cargo.toml there", root.display()))
        };
    }
    let mut dir = std::env::current_dir().map_err(|e| format!("cwd unavailable: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml above the current directory \
                        (pass --root)"
                .to_string());
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for rule in rules::ALL_RULES {
            println!("{rule}");
        }
        return ExitCode::SUCCESS;
    }
    let root = match find_root(opts.root) {
        Ok(root) => root,
        Err(msg) => {
            eprintln!("tsx-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut findings = lint_workspace(&root);

    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.json"));
    if baseline_path.is_file() {
        match load_baseline(&baseline_path) {
            Ok(baseline) => findings = apply_baseline(findings, &baseline),
            Err(msg) => {
                eprintln!("tsx-lint: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    match opts.format {
        Format::Human => {
            for d in &findings {
                println!("{d}");
            }
            if findings.is_empty() {
                eprintln!("tsx-lint: workspace clean");
            } else {
                eprintln!("tsx-lint: {} finding(s)", findings.len());
            }
        }
        Format::Json => {
            let report = json_report(&findings);
            match serde_json::to_string_pretty(&report) {
                Ok(text) => println!("{text}"),
                Err(e) => {
                    eprintln!("tsx-lint: report encoding failed: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    if opts.deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
