//! `tsexplain-lint` — workspace-invariant static analysis.
//!
//! The workspace's load-bearing guarantees are behavioural: byte-identical
//! explanations at any thread count, panic-free request paths, and a fixed
//! lock order (registry → session → store WAL) with fsync-before-ack only
//! where durability demands it. Proptests and goldens catch violations
//! *dynamically*, after the fact; this crate makes the same invariants
//! *structural* — a textual pass over the sources that fails CI the moment
//! a nondeterministic emission, a panicking request path, or an
//! out-of-order acquisition is written.
//!
//! Three rule families, scoped by path (see [`families_for`]):
//!
//! | family | rules | scope |
//! |---|---|---|
//! | determinism | `map-iter`, `wall-clock`, `env-read` | `cube`, `segment`, `diff`, `baselines`, `parallel` |
//! | panic-freedom | `no-unwrap`, `no-panic` | server request paths, `registry.rs`, `pipeline.rs`, `deadline.rs`, `cancel.rs` |
//! | lock/IO discipline | `lock-order`, `fsync-under-lock` | `registry.rs`, `durability.rs`, `store` |
//!
//! Deliberate violations are silenced inline with a reasoned directive:
//!
//! ```text
//! // tsx-lint: allow(wall-clock, feeds StageTimers; golden-stripped)
//! let t0 = Instant::now();
//! ```
//!
//! A same-line directive covers its own line; a standalone directive line
//! covers the statement that follows (through the next line containing
//! `;`, `{`, or `}`). The reason is mandatory — an allow without a why is
//! itself a finding (`bad-directive`), and a directive that suppressed
//! nothing is flagged as `unused-allow` so stale exemptions cannot
//! accumulate.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]

pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

use serde::{Serialize, Value};

/// Directive syntax errors and unknown rule names.
pub const BAD_DIRECTIVE: &str = "bad-directive";
/// An allow directive that suppressed no finding.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// One rule family; a file may be in several.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// No hash-ordered emission, wall-clock, or undocumented env reads.
    Determinism,
    /// No unwrap/expect/panic-class macros in request paths.
    PanicFree,
    /// No nested acquisitions or fsync under a held guard without a
    /// directive citing the documented order.
    Locks,
}

/// One finding, addressed `file:line: rule: message`.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id, e.g. `map-iter`.
    pub rule: String,
    /// Human explanation with the suggested remedy.
    pub message: String,
}

impl Diagnostic {
    /// A finding with the file left blank, filled in by the driver.
    pub fn at(line: usize, rule: &str, message: String) -> Self {
        Diagnostic {
            file: String::new(),
            line,
            rule: rule.to_string(),
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl Serialize for Diagnostic {
    fn serialize(&self) -> Value {
        Value::object([
            ("file", Value::String(self.file.clone())),
            ("line", Value::Number(self.line as f64)),
            ("rule", Value::String(self.rule.clone())),
            ("message", Value::String(self.message.clone())),
        ])
    }
}

/// The rule families that apply to a workspace-relative path.
///
/// Scope is deliberately narrow and explicit: determinism binds the five
/// pure-compute crates whose output feeds goldens; panic-freedom binds the
/// request path from socket to pipeline; lock discipline binds the three
/// modules that take more than one lock. Everything else — tests, bins,
/// benches, the obs side channel — is out of scope by construction.
pub fn families_for(rel_path: &str) -> Vec<Family> {
    let mut out = Vec::new();
    const DETERMINISM_CRATES: &[&str] = &["cube", "segment", "diff", "baselines", "parallel"];
    if DETERMINISM_CRATES
        .iter()
        .any(|c| rel_path.starts_with(&format!("crates/{c}/src/")))
    {
        out.push(Family::Determinism);
    }
    const PANIC_FILES: &[&str] = &[
        "crates/server/src/router.rs",
        "crates/server/src/server.rs",
        "crates/server/src/http.rs",
        "crates/server/src/wire.rs",
        "crates/server/src/error.rs",
        "crates/server/src/reactor.rs",
        "crates/server/src/admission.rs",
        "crates/server/src/pool.rs",
        "crates/core/src/registry.rs",
        "crates/core/src/pipeline.rs",
        // Deadline/cancellation primitives run inside every request; a
        // panic while checking "should I stop?" would defeat the whole
        // point of graceful 504s.
        "crates/core/src/deadline.rs",
        "crates/parallel/src/cancel.rs",
    ];
    // The epoll crate sits under every connection the reactor multiplexes:
    // a panic there takes the whole serving thread down, so the entire
    // crate is in the panic-free scope.
    if PANIC_FILES.contains(&rel_path) || rel_path.starts_with("crates/epoll/src/") {
        out.push(Family::PanicFree);
    }
    const LOCK_FILES: &[&str] = &[
        "crates/core/src/registry.rs",
        "crates/core/src/durability.rs",
    ];
    if LOCK_FILES.contains(&rel_path) || rel_path.starts_with("crates/store/src/") {
        out.push(Family::Locks);
    }
    out
}

/// Whether a file is a golden-stripped timing module, exempt from the
/// wall-clock rule (its entire job is to observe time).
fn wall_clock_exempt(rel_path: &str) -> bool {
    let stem = rel_path
        .rsplit('/')
        .next()
        .unwrap_or(rel_path)
        .trim_end_matches(".rs");
    stem == "timers" || stem.starts_with("latency")
}

/// A parsed `// tsx-lint: allow(rule, reason)` directive.
#[derive(Clone, Debug)]
struct Directive {
    rule: String,
    /// Inclusive line range the directive covers.
    covers: (usize, usize),
    line: usize,
    used: bool,
}

const DIRECTIVE_TAG: &str = "tsx-lint:";

/// Extracts directives from a file's comments; malformed ones become
/// `bad-directive` findings.
fn parse_directives(scan: &lexer::Scan, out: &mut Vec<Diagnostic>) -> Vec<Directive> {
    let mut directives = Vec::new();
    for comment in &scan.comments {
        let Some(tag) = comment.text.find(DIRECTIVE_TAG) else {
            continue;
        };
        let body = comment.text[tag + DIRECTIVE_TAG.len()..].trim();
        let parsed = (|| -> Result<(String, String), String> {
            let body = body
                .strip_prefix("allow(")
                .ok_or_else(|| "expected `allow(<rule>, <reason>)`".to_string())?;
            let close = body
                .rfind(')')
                .ok_or_else(|| "missing closing `)`".to_string())?;
            let inner = &body[..close];
            let comma = inner
                .find(',')
                .ok_or_else(|| "missing `, <reason>` — every allow must say why".to_string())?;
            let rule = inner[..comma].trim().to_string();
            let reason = inner[comma + 1..].trim().to_string();
            if !rules::ALL_RULES.contains(&rule.as_str()) {
                return Err(format!(
                    "unknown rule `{rule}` (rules: {})",
                    rules::ALL_RULES.join(", ")
                ));
            }
            if reason.is_empty() {
                return Err("empty reason — every allow must say why".to_string());
            }
            Ok((rule, reason))
        })();
        match parsed {
            Err(why) => out.push(Diagnostic::at(
                comment.line,
                BAD_DIRECTIVE,
                format!("malformed tsx-lint directive: {why}"),
            )),
            Ok((rule, _reason)) => {
                let covers = if comment.code_before {
                    (comment.line, comment.line)
                } else {
                    // Standalone directive: cover the statement that
                    // follows — every line up to and including the first
                    // subsequent line whose code reaches a statement
                    // boundary (`;`, `{`, or `}`).
                    let mut end = comment.line + 1;
                    let last = scan.line_starts.len();
                    while end < last {
                        let text = line_text(scan, end);
                        if text.contains(';') || text.contains('{') || text.contains('}') {
                            break;
                        }
                        end += 1;
                    }
                    (comment.line + 1, end)
                };
                directives.push(Directive {
                    rule,
                    covers,
                    line: comment.line,
                    used: false,
                });
            }
        }
    }
    directives
}

/// The sanitized text of one 1-based line.
fn line_text(scan: &lexer::Scan, line: usize) -> &str {
    let start = scan.line_starts[line - 1];
    let end = scan
        .line_starts
        .get(line)
        .copied()
        .unwrap_or(scan.code.len());
    &scan.code[start..end]
}

/// Lints one file's source. `rel_path` scopes the rule families and is
/// stamped into every finding.
///
/// Files with no family in scope are left entirely alone — including
/// their comments, so prose that merely *describes* the directive syntax
/// (this crate's own docs, for instance) is never parsed as a directive.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let families = families_for(rel_path);
    if families.is_empty() {
        return Vec::new();
    }
    let scan = lexer::scan(source);
    let mut out = Vec::new();
    let mut directives = parse_directives(&scan, &mut out);
    let raw = rules::run(&scan, &families, wall_clock_exempt(rel_path));
    for diag in raw {
        let suppressed = directives
            .iter_mut()
            .find(|d| d.rule == diag.rule && d.covers.0 <= diag.line && diag.line <= d.covers.1);
        match suppressed {
            Some(d) => d.used = true,
            None => out.push(diag),
        }
    }
    for d in &directives {
        if !d.used {
            out.push(Diagnostic::at(
                d.line,
                UNUSED_ALLOW,
                format!(
                    "allow({}) suppressed nothing — stale exemption, remove it",
                    d.rule
                ),
            ));
        }
    }
    for diag in &mut out {
        diag.file = rel_path.to_string();
    }
    out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out
}

/// Walks `crates/*/src/**/*.rs` under `root` in sorted order and lints
/// every file. IO errors become findings (line 0) rather than aborting
/// the pass.
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    collect_crate_sources(&crates_dir, &mut files);
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let rel = rel_path_of(root, &path);
        match std::fs::read_to_string(&path) {
            Ok(source) => out.extend(lint_source(&rel, &source)),
            Err(e) => out.push(Diagnostic {
                file: rel,
                line: 0,
                rule: "io-error".to_string(),
                message: format!("could not read file: {e}"),
            }),
        }
    }
    out
}

fn rel_path_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Every `.rs` file under `crates/*/src`, recursively.
fn collect_crate_sources(crates_dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(crates_dir) else {
        return;
    };
    let mut krates: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    krates.sort();
    for krate in krates {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs_files(&src, out);
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The committed-baseline shape: findings grandfathered by exact
/// `(file, line, rule)` triple. The target state is an empty list — CI
/// asserts it — but the mechanism exists so an emergency land can record
/// debt explicitly instead of deleting the gate.
pub fn load_baseline(path: &Path) -> Result<Vec<(String, usize, String)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read baseline: {e}", path.display()))?;
    let value =
        serde_json::parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    let findings = value
        .get("findings")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{}: missing `findings` array", path.display()))?;
    let mut out = Vec::new();
    for entry in findings {
        let file: String = entry
            .field("file")
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let line: usize = entry
            .field("line")
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let rule: String = entry
            .field("rule")
            .map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((file, line, rule));
    }
    Ok(out)
}

/// Drops findings present in the baseline.
pub fn apply_baseline(
    findings: Vec<Diagnostic>,
    baseline: &[(String, usize, String)],
) -> Vec<Diagnostic> {
    findings
        .into_iter()
        .filter(|d| {
            !baseline
                .iter()
                .any(|(f, l, r)| *f == d.file && *l == d.line && *r == d.rule)
        })
        .collect()
}

/// The machine-readable report: `{"findings": [...]}` with findings
/// already sorted by the caller's walk order (file, then line, then rule).
pub fn json_report(findings: &[Diagnostic]) -> Value {
    Value::object([(
        "findings",
        Value::Array(findings.iter().map(Serialize::serialize).collect()),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_map_binds_the_documented_files() {
        assert_eq!(
            families_for("crates/cube/src/cube.rs"),
            vec![Family::Determinism]
        );
        assert_eq!(
            families_for("crates/core/src/registry.rs"),
            vec![Family::PanicFree, Family::Locks]
        );
        assert_eq!(
            families_for("crates/store/src/store.rs"),
            vec![Family::Locks]
        );
        assert!(families_for("crates/obs/src/latency.rs").is_empty());
        assert!(families_for("crates/server/src/metrics.rs").is_empty());
        // The cancellation primitives sit on every request path: the
        // token lives in a determinism crate (and is additionally
        // panic-free), the deadline clock is panic-free only.
        assert_eq!(
            families_for("crates/parallel/src/cancel.rs"),
            vec![Family::Determinism, Family::PanicFree]
        );
        assert_eq!(
            families_for("crates/core/src/deadline.rs"),
            vec![Family::PanicFree]
        );
    }

    #[test]
    fn admission_and_reactor_modules_are_panic_free_scope() {
        for path in [
            "crates/server/src/reactor.rs",
            "crates/server/src/admission.rs",
            "crates/server/src/pool.rs",
            "crates/epoll/src/lib.rs",
            "crates/epoll/src/anything_future.rs",
        ] {
            assert_eq!(families_for(path), vec![Family::PanicFree], "{path}");
        }
        // The epoll crate's tests and fixtures stay out of scope.
        assert!(families_for("crates/epoll/tests/smoke.rs").is_empty());
    }

    #[test]
    fn same_line_directive_suppresses_and_standalone_covers_next_statement() {
        let src = "fn f() {\n\
                   let t = std::time::Instant::now(); // tsx-lint: allow(wall-clock, timing-only)\n\
                   // tsx-lint: allow(wall-clock, spans the wrapped statement)\n\
                   let u = std::time::Instant::now()\n\
                       .elapsed();\n\
                   }\n";
        let d = lint_source("crates/cube/src/x.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unused_allow_and_bad_directive_are_findings() {
        let src = "// tsx-lint: allow(map-iter, nothing here iterates)\n\
                   fn f() {}\n\
                   // tsx-lint: allow(wall-clock)\n\
                   fn g() {}\n\
                   // tsx-lint: allow(made-up-rule, with reason)\n\
                   fn h() {}\n";
        let d = lint_source("crates/cube/src/x.rs", src);
        let rules: Vec<&str> = d.iter().map(|x| x.rule.as_str()).collect();
        assert_eq!(
            rules,
            vec![UNUSED_ALLOW, BAD_DIRECTIVE, BAD_DIRECTIVE],
            "{d:?}"
        );
    }

    #[test]
    fn reasons_may_contain_parens() {
        let src = "fn f() {\n\
                   let t = std::time::Instant::now(); // tsx-lint: allow(wall-clock, feeds StageTimers (golden-stripped))\n\
                   }\n";
        assert!(lint_source("crates/segment/src/x.rs", src).is_empty());
    }

    #[test]
    fn out_of_scope_files_produce_no_findings() {
        let src = "fn f() { x.unwrap(); let t = std::time::Instant::now(); }\n";
        assert!(lint_source("crates/obs/src/log.rs", src).is_empty());
    }

    #[test]
    fn baseline_filters_exact_triples() {
        let findings = vec![
            Diagnostic {
                file: "a.rs".into(),
                line: 3,
                rule: "no-unwrap".into(),
                message: "m".into(),
            },
            Diagnostic {
                file: "a.rs".into(),
                line: 9,
                rule: "no-unwrap".into(),
                message: "m".into(),
            },
        ];
        let baseline = vec![("a.rs".to_string(), 3usize, "no-unwrap".to_string())];
        let left = apply_baseline(findings, &baseline);
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].line, 9);
    }
}
