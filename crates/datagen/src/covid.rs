//! The Covid workload simulator (paper §7.1.2, "Covid").
//!
//! The original JHU repository (paper ref. 20) records per-state daily and cumulative
//! confirmed cases for 58 US states/territories over 2020-01-22 through
//! 2020-12-31 (n = 345, ε = 58 with explain-by = `state`). This generator
//! reproduces that shape with the 2020 wave structure the paper's case
//! study narrates: WA/NY seed the outbreak, the NY/NJ/MA spring surge,
//! CA's rise from late April, the FL/TX/CA summer wave, the IL/WI-led fall
//! wave, and the CA/TX-dominated winter explosion.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

use crate::dates::dates_from;
use crate::rng::gaussian;
use crate::workload::Workload;

/// Number of days in the window (2020-01-22 ..= 2020-12-31).
pub const N_DAYS: usize = 345;

/// The 58 JHU reporting units: 50 states, DC, 5 territories, 2 cruise
/// ships.
pub const STATES: [&str; 58] = [
    "AL",
    "AK",
    "AZ",
    "AR",
    "CA",
    "CO",
    "CT",
    "DE",
    "FL",
    "GA",
    "HI",
    "ID",
    "IL",
    "IN",
    "IA",
    "KS",
    "KY",
    "LA",
    "ME",
    "MD",
    "MA",
    "MI",
    "MN",
    "MS",
    "MO",
    "MT",
    "NE",
    "NV",
    "NH",
    "NJ",
    "NM",
    "NY",
    "NC",
    "ND",
    "OH",
    "OK",
    "OR",
    "PA",
    "RI",
    "SC",
    "SD",
    "TN",
    "TX",
    "UT",
    "VT",
    "VA",
    "WA",
    "WV",
    "WI",
    "WY",
    "DC",
    "PR",
    "GU",
    "VI",
    "AS",
    "MP",
    "Diamond Princess",
    "Grand Princess",
];

/// A Gaussian daily-case wave: `total` cases spread around day `peak` with
/// the given `width` (standard deviation, days).
#[derive(Clone, Copy, Debug)]
struct Wave {
    peak: f64,
    width: f64,
    total: f64,
}

impl Wave {
    fn at(&self, day: usize) -> f64 {
        let z = (day as f64 - self.peak) / self.width;
        // Normal density scaled so the wave integrates to `total`.
        self.total * (-0.5 * z * z).exp() / (self.width * (std::f64::consts::TAU).sqrt())
    }
}

/// Per-state wave mixture. Days are offsets from 2020-01-22; key dates:
/// 3/14 ≈ 52, 4/7 ≈ 76, 5/25 ≈ 124, 7/16 ≈ 176, 9/9 ≈ 231, 11/10 ≈ 293.
fn waves_for(state: &str, weight: f64) -> Vec<Wave> {
    let w = |peak: f64, width: f64, total: f64| Wave { peak, width, total };
    match state {
        // The early epicentre, huge spring wave, winter resurgence.
        "NY" => vec![w(75.0, 14.0, 360_000.0), w(350.0, 35.0, 700_000.0)],
        "NJ" => vec![w(79.0, 14.0, 150_000.0), w(345.0, 38.0, 250_000.0)],
        "MA" => vec![w(84.0, 15.0, 100_000.0), w(345.0, 40.0, 180_000.0)],
        "CT" => vec![w(82.0, 15.0, 45_000.0), w(345.0, 40.0, 90_000.0)],
        "PA" => vec![w(80.0, 16.0, 70_000.0), w(330.0, 32.0, 330_000.0)],
        // First detected cases + modest waves.
        "WA" => vec![
            w(42.0, 14.0, 11_000.0),
            w(200.0, 40.0, 50_000.0),
            w(330.0, 35.0, 130_000.0),
        ],
        // Slow spring rise, summer wave, enormous winter wave.
        "CA" => vec![
            w(48.0, 18.0, 9_000.0),
            w(105.0, 30.0, 110_000.0),
            w(182.0, 26.0, 330_000.0),
            w(338.0, 24.0, 1_700_000.0),
        ],
        "TX" => vec![
            w(175.0, 22.0, 330_000.0),
            w(290.0, 32.0, 300_000.0),
            w(340.0, 30.0, 420_000.0),
        ],
        "FL" => vec![w(172.0, 20.0, 340_000.0), w(335.0, 30.0, 330_000.0)],
        "AZ" => vec![w(170.0, 18.0, 110_000.0), w(340.0, 28.0, 170_000.0)],
        "GA" => vec![w(180.0, 25.0, 150_000.0), w(330.0, 32.0, 160_000.0)],
        // The late-spring rise the news reported [50], then a fall wave that
        // crests before December.
        "IL" => vec![w(108.0, 20.0, 110_000.0), w(287.0, 22.0, 420_000.0)],
        "WI" => vec![w(280.0, 20.0, 200_000.0), w(330.0, 40.0, 60_000.0)],
        "MN" => vec![w(285.0, 22.0, 150_000.0)],
        "MI" => vec![w(80.0, 15.0, 55_000.0), w(300.0, 25.0, 250_000.0)],
        "OH" => vec![w(110.0, 30.0, 50_000.0), w(320.0, 28.0, 300_000.0)],
        "IN" => vec![w(100.0, 28.0, 35_000.0), w(315.0, 28.0, 180_000.0)],
        // Cruise ships: a tiny burst at the very start, then nothing.
        "Diamond Princess" => vec![w(25.0, 6.0, 46.0)],
        "Grand Princess" => vec![w(45.0, 6.0, 103.0)],
        // Generic profile scaled by a size weight: small spring, medium
        // summer, large fall/winter.
        _ => vec![
            w(85.0, 22.0, 25_000.0 * weight),
            w(190.0, 30.0, 45_000.0 * weight),
            w(315.0, 30.0, 140_000.0 * weight),
        ],
    }
}

/// Rough relative size of each generic state (drives case volume).
fn state_weight(state: &str) -> f64 {
    match state {
        "NC" | "VA" | "TN" | "MO" | "MD" => 1.4,
        "AL" | "SC" | "LA" | "KY" | "OK" | "OR" | "CO" => 1.0,
        "KS" | "AR" | "MS" | "IA" | "NV" | "UT" | "NM" | "NE" | "WV" | "ID" => 0.6,
        "ME" | "NH" | "RI" | "MT" | "DE" | "SD" | "ND" | "AK" | "HI" | "WY" | "DC" => 0.3,
        "PR" => 0.4,
        "GU" | "VI" | "AS" | "MP" => 0.03,
        _ => 1.0,
    }
}

/// The generated Covid dataset: one relation with both measures.
#[derive(Clone, Debug)]
pub struct CovidData {
    /// Schema: `(date, state, daily_confirmed_cases, total_confirmed_cases)`.
    pub relation: Relation,
}

/// Generates the Covid workload (deterministic per seed).
pub fn generate(seed: u64) -> CovidData {
    let mut rng = StdRng::seed_from_u64(seed);
    let dates = dates_from(2020, 1, 22, 2, N_DAYS);
    let schema = Schema::new(vec![
        Field::dimension("date"),
        Field::dimension("state"),
        Field::measure("daily_confirmed_cases"),
        Field::measure("total_confirmed_cases"),
    ])
    .expect("static schema");
    let mut b = Relation::builder(schema);

    for state in STATES {
        let waves = waves_for(state, state_weight(state));
        let mut cumulative = 0.0;
        for (day, date) in dates.iter().enumerate() {
            let expected: f64 = waves.iter().map(|w| w.at(day)).sum();
            // Mild multiplicative reporting noise.
            let noisy = (expected * (1.0 + gaussian(&mut rng, 0.0, 0.08))).max(0.0);
            let daily = noisy.round();
            cumulative += daily;
            b.push_row(vec![
                Datum::from(date.as_str()),
                Datum::from(state),
                Datum::from(daily),
                Datum::from(cumulative),
            ])
            .expect("schema-conformant row");
        }
    }
    CovidData {
        relation: b.finish(),
    }
}

impl CovidData {
    /// `SELECT date, SUM(total_confirmed_cases) … GROUP BY date` — the
    /// paper's Fig. 11 series.
    pub fn total_workload(&self) -> Workload {
        Workload::new(
            "total-confirmed-cases",
            self.relation.clone(),
            AggQuery::sum("date", "total_confirmed_cases"),
            vec!["state".to_string()],
        )
    }

    /// `SELECT date, SUM(daily_confirmed_cases) … GROUP BY date` — the
    /// paper's Fig. 12 series.
    pub fn daily_workload(&self) -> Workload {
        Workload::new(
            "daily-confirmed-cases",
            self.relation.clone(),
            AggQuery::sum("date", "daily_confirmed_cases"),
            vec!["state".to_string()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table6() {
        let d = generate(0);
        assert_eq!(d.relation.n_rows(), 58 * N_DAYS);
        let ts = d.total_workload().query.run(&d.relation).unwrap();
        assert_eq!(ts.len(), N_DAYS); // n = 345
        let states = d.relation.dim_column("state").unwrap();
        assert_eq!(states.dict().len(), 58); // ε = 58 for order-1
    }

    #[test]
    fn totals_are_cumulative_and_monotone() {
        let d = generate(0);
        let ts = d.total_workload().query.run(&d.relation).unwrap();
        assert!(ts.values.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        // Year-end total in the (simulated) tens of millions of case-days…
        // at least several million cases nationally.
        assert!(*ts.values.last().unwrap() > 5e6);
    }

    #[test]
    fn narrative_states_dominate_their_phases() {
        let d = generate(0);
        let daily = d.daily_workload();
        let rel = &d.relation;
        let slice_sum = |state: &str, lo: usize, hi: usize| -> f64 {
            let states = rel.dim_column("state").unwrap();
            let code = states.dict().code_of(&state.into()).unwrap();
            let dailies = rel.measure("daily_confirmed_cases").unwrap();
            let dates = rel.dim_column("date").unwrap();
            (0..rel.n_rows())
                .filter(|&r| states.codes()[r] == code)
                .filter(|&r| {
                    let day = dates.codes()[r] as usize;
                    day >= lo && day < hi
                })
                .map(|r| dailies[r])
                .sum()
        };
        // Spring (day 50..90): NY above CA and FL.
        assert!(slice_sum("NY", 50, 90) > slice_sum("CA", 50, 90));
        assert!(slice_sum("NY", 50, 90) > slice_sum("FL", 50, 90));
        // Summer (day 160..200): FL/TX above NY.
        assert!(slice_sum("FL", 160, 200) > slice_sum("NY", 160, 200));
        assert!(slice_sum("TX", 160, 200) > slice_sum("NY", 160, 200));
        // Winter (day 320..345): CA leads everything.
        for other in ["NY", "TX", "FL", "IL"] {
            assert!(slice_sum("CA", 320, 345) > slice_sum(other, 320, 345));
        }
        let _ = daily;
    }

    #[test]
    fn deterministic() {
        let a = generate(7);
        let b = generate(7);
        assert_eq!(
            a.relation.measure("daily_confirmed_cases").unwrap(),
            b.relation.measure("daily_confirmed_cases").unwrap()
        );
    }
}
