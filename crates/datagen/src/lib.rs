//! # tsexplain-datagen
//!
//! Seeded, deterministic workload generators for the TSExplain
//! reproduction.
//!
//! The paper evaluates on one synthetic corpus (§4.2.1, §7.1.1) and four
//! real-world datasets (§7.1.2, §8). The original CSVs (JHU Covid, S&P 500
//! constituents, Iowa liquor sales, CDC deaths) are not available offline,
//! so each is replaced by a generator that reproduces the statistics the
//! paper reports (Table 6: ε, filtered ε, n) and the qualitative structure
//! the case studies rely on — see DESIGN.md §5 for the substitution
//! rationale.
//!
//! * [`synthetic`] — the ground-truth corpus: piecewise-linear per-category
//!   series with alternating trends and Gaussian noise at SNR dB levels.
//! * [`covid`] — 58 states × 345 days, total- and daily-confirmed-cases.
//! * [`sp500`] — 503 stocks in a sector → industry → stock hierarchy over
//!   the 2020 crash/rebound window.
//! * [`liquor`] — Iowa-style purchase transactions over
//!   BottleVolume/Pack/Category/Vendor with the pandemic shift.
//! * [`covid_deaths`] — weekly deaths by age-group × vaccination status
//!   (the time-varying-attribute case study, §8).

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
pub mod covid;
pub mod covid_deaths;
mod dates;
pub mod liquor;
mod noise;
mod rng;
pub mod sp500;
pub mod synthetic;
mod workload;

pub use dates::{trading_days_2020, weekdays, DateIter};
pub use noise::{add_gaussian_noise, signal_power, snr_sigma};
pub use rng::gaussian;
pub use workload::Workload;
