//! The synthetic ground-truth corpus (paper §4.2.1, §7.1.1).
//!
//! Each dataset is one relation with schema `(T, category, sales)`. Every
//! category's time series is piecewise linear with randomly placed cutting
//! points and *alternating* up/down trends, which makes every per-category
//! cut necessary; the ground-truth segmentation of the aggregate is the
//! union of the per-category cuts. Gaussian noise is added per category at
//! a configurable SNR (dB).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

use crate::noise::add_gaussian_noise;
use crate::workload::Workload;

/// Configuration of one synthetic dataset.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Series length n (paper: 100).
    pub n_points: usize,
    /// Number of categories (paper: 3, named a1, a2, a3).
    pub n_categories: usize,
    /// Cuts per category are drawn from `1..=max_cuts_per_category`.
    pub max_cuts_per_category: usize,
    /// Minimum distance between any two ground-truth cuts and from the
    /// endpoints (paper Fig. 4: observed minimum segment length 6).
    pub min_segment_len: usize,
    /// Gaussian noise level; `None` = clean (paper sweeps 20..=50 dB).
    pub snr_db: Option<f64>,
    /// RNG seed; every dataset is fully determined by its config.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            n_points: 100,
            n_categories: 3,
            max_cuts_per_category: 3,
            min_segment_len: 6,
            snr_db: None,
            seed: 0,
        }
    }
}

/// A generated synthetic dataset with its ground truth.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// The generating configuration.
    pub config: SyntheticConfig,
    /// Category labels (`a1`, `a2`, …).
    pub categories: Vec<String>,
    /// Noise-free per-category series.
    pub clean_series: Vec<Vec<f64>>,
    /// Noisy per-category series (equals `clean_series` when `snr_db` is
    /// `None`); values are clamped at 0 so the relation stays physical.
    pub noisy_series: Vec<Vec<f64>>,
    /// Per-category cutting points.
    pub category_cuts: Vec<Vec<usize>>,
    /// Ground-truth cuts of the aggregate: the union of category cuts.
    pub ground_truth_cuts: Vec<usize>,
}

impl SyntheticDataset {
    /// Generates a dataset from `config`.
    pub fn generate(config: SyntheticConfig) -> Self {
        assert!(config.n_points >= 10, "series too short");
        assert!(config.n_categories >= 1);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Rejection-sample per-category cuts until the union respects the
        // minimum gap, so ground-truth segments stay identifiable.
        let mut category_cuts: Vec<Vec<usize>> = Vec::new();
        let mut union: Vec<usize> = Vec::new();
        for attempt in 0..200 {
            category_cuts.clear();
            for _ in 0..config.n_categories {
                category_cuts.push(sample_cuts(&mut rng, &config));
            }
            union = category_cuts.iter().flatten().copied().collect();
            union.sort_unstable();
            union.dedup();
            let mut ok = union
                .windows(2)
                .all(|w| w[1] - w[0] >= config.min_segment_len);
            ok &= union.first().is_none_or(|&c| c >= config.min_segment_len);
            ok &= union
                .last()
                .is_none_or(|&c| config.n_points - 1 - c >= config.min_segment_len);
            if ok || attempt == 199 {
                break;
            }
        }

        let mut clean_series = Vec::with_capacity(config.n_categories);
        for cuts in &category_cuts {
            clean_series.push(piecewise_linear(&mut rng, config.n_points, cuts));
        }

        let mut noisy_series = clean_series.clone();
        if let Some(snr) = config.snr_db {
            for series in &mut noisy_series {
                add_gaussian_noise(series, snr, &mut rng);
                for v in series.iter_mut() {
                    *v = v.max(0.0);
                }
            }
        }

        let categories = (1..=config.n_categories).map(|i| format!("a{i}")).collect();
        SyntheticDataset {
            config,
            categories,
            clean_series,
            noisy_series,
            category_cuts,
            ground_truth_cuts: union,
        }
    }

    /// The ground-truth number of segments K.
    pub fn ground_truth_k(&self) -> usize {
        self.ground_truth_cuts.len() + 1
    }

    /// The aggregated (noisy) series: the sum over categories.
    pub fn aggregate(&self) -> Vec<f64> {
        let mut agg = vec![0.0; self.config.n_points];
        for series in &self.noisy_series {
            for (a, v) in agg.iter_mut().zip(series) {
                *a += v;
            }
        }
        agg
    }

    /// Materializes the dataset as a relation with schema
    /// `(T, category, sales)` and one row per `(t, category)`.
    ///
    /// The paper's query is `COUNT(sales)`; with one row per point carrying
    /// the series value as a SUM measure the aggregated series is
    /// identical, so [`SyntheticDataset::query`] uses `SUM(sales)`.
    pub fn to_relation(&self) -> Relation {
        // Category-major row order, kept bit-for-bit as it has always
        // been: row order seeds candidate-enumeration order, so changing
        // it could silently reshuffle tie-breaks in downstream results.
        let mut b = Relation::builder(self.schema());
        for (c, series) in self.noisy_series.iter().enumerate() {
            for (t, &v) in series.iter().enumerate() {
                b.push_row(vec![
                    Datum::Attr((t as i64).into()),
                    Datum::from(self.categories[c].as_str()),
                    Datum::from(v),
                ])
                .expect("schema-conformant row");
            }
        }
        b.finish()
    }

    /// The `(T, category, sales)` schema of [`SyntheticDataset::to_relation`].
    pub fn schema(&self) -> Schema {
        Schema::new(vec![
            Field::dimension("T"),
            Field::dimension("category"),
            Field::measure("sales"),
        ])
        .expect("static schema")
    }

    /// Raw rows (schema order) for timestamps `[lo, hi)`, in time-major
    /// order — the single source of truth for replaying this dataset into
    /// `ExplainSession::append_rows` or a serving wire protocol in
    /// windowed chunks (tail appends require non-decreasing timestamps,
    /// which [`SyntheticDataset::to_relation`]'s category-major order
    /// would violate).
    pub fn rows_between(&self, lo: usize, hi: usize) -> Vec<Vec<Datum>> {
        let hi = hi.min(self.config.n_points);
        let mut rows = Vec::new();
        for t in lo..hi {
            for (c, series) in self.noisy_series.iter().enumerate() {
                rows.push(vec![
                    Datum::Attr((t as i64).into()),
                    Datum::from(self.categories[c].as_str()),
                    Datum::from(series[t]),
                ]);
            }
        }
        rows
    }

    /// The aggregated-time-series query for this dataset.
    pub fn query(&self) -> AggQuery {
        AggQuery::sum("T", "sales")
    }

    /// The complete workload (relation + query + explain-by).
    pub fn workload(&self) -> Workload {
        Workload::new(
            format!("synthetic-seed{}", self.config.seed),
            self.to_relation(),
            self.query(),
            vec!["category".to_string()],
        )
    }
}

/// Draws cut positions for one category: `1..=max` cuts, each respecting
/// the minimum gap within the category.
fn sample_cuts(rng: &mut StdRng, config: &SyntheticConfig) -> Vec<usize> {
    let n = config.n_points;
    let gap = config.min_segment_len;
    let n_cuts = rng.random_range(1..=config.max_cuts_per_category);
    let mut cuts: Vec<usize> = Vec::with_capacity(n_cuts);
    for _ in 0..200 {
        if cuts.len() == n_cuts {
            break;
        }
        let c = rng.random_range(gap..n - gap);
        if cuts.iter().all(|&x: &usize| x.abs_diff(c) >= gap) {
            cuts.push(c);
        }
    }
    cuts.sort_unstable();
    cuts
}

/// Builds a piecewise-linear series over the segments defined by `cuts`,
/// with strictly alternating up/down trends (paper §4.2.1).
fn piecewise_linear(rng: &mut StdRng, n: usize, cuts: &[usize]) -> Vec<f64> {
    let mut anchors_pos = Vec::with_capacity(cuts.len() + 2);
    anchors_pos.push(0);
    anchors_pos.extend_from_slice(cuts);
    anchors_pos.push(n - 1);

    let mut up = rng.random_bool(0.5);
    let mut value: f64 = rng.random_range(200.0..600.0);
    let mut anchors_val = vec![value];
    for _ in 1..anchors_pos.len() {
        let delta = rng.random_range(100.0..400.0);
        value = if up { value + delta } else { value - delta };
        // Keep the series comfortably positive; alternation means the next
        // move reverses, so a one-off clamp cannot accumulate.
        value = value.max(30.0);
        anchors_val.push(value);
        up = !up;
    }

    let mut series = vec![0.0; n];
    for w in 0..anchors_pos.len() - 1 {
        let (p0, p1) = (anchors_pos[w], anchors_pos[w + 1]);
        let (v0, v1) = (anchors_val[w], anchors_val[w + 1]);
        #[allow(clippy::needless_range_loop)] // anchor-relative positions
        for t in p0..=p1 {
            let frac = if p1 == p0 {
                0.0
            } else {
                (t - p0) as f64 / (p1 - p0) as f64
            };
            series[t] = v0 + frac * (v1 - v0);
        }
    }
    series
}

/// The paper's synthetic corpus: 20 base datasets at each of the 7 SNR
/// levels `{20, 25, …, 50}` dB (§7.1.1: 140 datasets total).
pub fn paper_corpus() -> Vec<SyntheticDataset> {
    let mut out = Vec::with_capacity(140);
    for snr_step in 0..7 {
        let snr_db = 20.0 + 5.0 * snr_step as f64;
        for seed in 0..20u64 {
            out.push(SyntheticDataset::generate(SyntheticConfig {
                snr_db: Some(snr_db),
                seed,
                ..SyntheticConfig::default()
            }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticDataset::generate(SyntheticConfig::default());
        let b = SyntheticDataset::generate(SyntheticConfig::default());
        assert_eq!(a.clean_series, b.clean_series);
        assert_eq!(a.ground_truth_cuts, b.ground_truth_cuts);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticDataset::generate(SyntheticConfig::default());
        let b = SyntheticDataset::generate(SyntheticConfig {
            seed: 1,
            ..SyntheticConfig::default()
        });
        assert_ne!(a.clean_series, b.clean_series);
    }

    #[test]
    fn ground_truth_is_union_of_category_cuts() {
        let d = SyntheticDataset::generate(SyntheticConfig::default());
        for cuts in &d.category_cuts {
            for c in cuts {
                assert!(d.ground_truth_cuts.contains(c));
            }
        }
        assert!(d.ground_truth_cuts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn cuts_respect_min_gap() {
        for seed in 0..10 {
            let d = SyntheticDataset::generate(SyntheticConfig {
                seed,
                ..SyntheticConfig::default()
            });
            let gap = d.config.min_segment_len;
            let gt = &d.ground_truth_cuts;
            assert!(gt.windows(2).all(|w| w[1] - w[0] >= gap), "seed {seed}");
            assert!(gt
                .iter()
                .all(|&c| c >= gap && d.config.n_points - 1 - c >= gap));
        }
    }

    #[test]
    fn trends_alternate_in_clean_series() {
        let d = SyntheticDataset::generate(SyntheticConfig::default());
        for (cat, cuts) in d.category_cuts.iter().enumerate() {
            let series = &d.clean_series[cat];
            let mut bounds = vec![0];
            bounds.extend_from_slice(cuts);
            bounds.push(d.config.n_points - 1);
            let dirs: Vec<bool> = bounds
                .windows(2)
                .map(|w| series[w[1]] > series[w[0]])
                .collect();
            for w in dirs.windows(2) {
                assert_ne!(w[0], w[1], "adjacent segments must alternate");
            }
        }
    }

    #[test]
    fn series_stay_positive() {
        for seed in 0..5 {
            let d = SyntheticDataset::generate(SyntheticConfig {
                seed,
                snr_db: Some(20.0),
                ..SyntheticConfig::default()
            });
            for series in &d.noisy_series {
                assert!(series.iter().all(|&v| v >= 0.0));
            }
        }
    }

    #[test]
    fn relation_roundtrip_matches_aggregate() {
        let d = SyntheticDataset::generate(SyntheticConfig {
            snr_db: Some(35.0),
            seed: 4,
            ..SyntheticConfig::default()
        });
        let ts = d.query().run(&d.to_relation()).unwrap();
        let agg = d.aggregate();
        assert_eq!(ts.len(), d.config.n_points);
        for (a, b) in ts.values.iter().zip(&agg) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_corpus_shape() {
        let corpus = paper_corpus();
        assert_eq!(corpus.len(), 140);
        let ks: Vec<usize> = corpus.iter().map(|d| d.ground_truth_k()).collect();
        // K varies across the corpus (paper Fig. 4: 2..10).
        assert!(ks.iter().min().unwrap() >= &2);
        assert!(ks.iter().max().unwrap() <= &10);
        assert!(ks.iter().collect::<std::collections::HashSet<_>>().len() > 2);
    }
}
