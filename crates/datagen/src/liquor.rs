//! The Liquor workload simulator (paper §7.1.2, "Liquor").
//!
//! Iowa liquor purchase transactions from 2020-01-02 to 2020-06-30
//! (state liquor sales are reported on business days; n = 128 in the
//! paper). Explain-by attributes: `BV` (Bottle Volume ml), `P` (Pack),
//! `CN` (Category Name), `VN` (Vendor Name).
//!
//! The generator reproduces the pandemic drinking-behaviour shift the case
//! study surfaces (Table 5): a post-holiday dip until 1/20; a large-pack
//! (P = 12/24/48) surge through spring; the BV=1000 collapse after Iowa's
//! 3/17 closure proclamation (bars/restaurants supplied by independent
//! stores) and its recovery after the late-April reopening, led by
//! BV=1000 & P=12; and the oscillating BV=1750 & P=6 / BV=750 & P=12
//! movements in between.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

use crate::dates::weekdays;
use crate::rng::gaussian;
use crate::workload::Workload;

/// Bottle volumes (ml) on offer.
pub const BOTTLE_VOLUMES: [i64; 7] = [200, 375, 500, 750, 1000, 1500, 1750];
/// Pack sizes on offer.
pub const PACKS: [i64; 7] = [1, 2, 4, 6, 12, 24, 48];

const N_CATEGORIES: usize = 42;
const N_VENDORS: usize = 78;
/// Catalogue size: distinct (BV, P, CN, VN) products.
const N_PRODUCTS: usize = 2100;

/// One catalogue product.
#[derive(Clone, Copy, Debug)]
struct Product {
    bv: i64,
    pack: i64,
    category: usize,
    vendor: usize,
    /// Baseline average bottles/day.
    weight: f64,
}

/// Calendar anchors as business-day indices (1/2 = 0):
/// 1/20 ≈ 12, 3/6 ≈ 45, 3/17 ≈ 52, 3/31 ≈ 62, 4/21 ≈ 77, 5/8 ≈ 89,
/// 6/10 ≈ 111.
fn ramp(day: f64, from_day: f64, to_day: f64, from: f64, to: f64) -> f64 {
    if day <= from_day {
        from
    } else if day >= to_day {
        to
    } else {
        from + (to - from) * (day - from_day) / (to_day - from_day)
    }
}

/// The pandemic demand multiplier for a product at business day `d`.
fn multiplier(p: &Product, d: f64) -> f64 {
    let mut m = 1.0;
    // Post-holiday dip: packaged liquor (P = 6/12) declines into 1/20.
    if p.pack == 6 || p.pack == 12 {
        m *= ramp(d, 0.0, 12.0, 1.35, 1.0);
    }
    // Pandemic stock-up: large packs surge from 1/20 onwards.
    match p.pack {
        12 => m *= ramp(d, 12.0, 62.0, 1.0, 2.4) * ramp(d, 77.0, 89.0, 1.0, 1.25),
        24 => m *= ramp(d, 12.0, 62.0, 1.0, 2.1),
        48 => m *= ramp(d, 12.0, 62.0, 1.0, 2.6),
        _ => {}
    }
    // Large-volume bottles gain through the pandemic.
    if p.bv == 750 || p.bv == 1750 {
        m *= ramp(d, 12.0, 62.0, 1.0, 1.5);
    }
    // BV=1000: bar/restaurant supply via independent stores — collapse
    // after the 3/17 proclamation, recovery after the late-April
    // reopening; P=12 recovers first (4/21–5/8), the rest by 6/10 and
    // beyond.
    if p.bv == 1000 {
        m *= ramp(d, 50.0, 58.0, 1.0, 0.22);
        if p.pack == 12 {
            m *= ramp(d, 77.0, 89.0, 1.0, 4.0);
        } else {
            m *= ramp(d, 89.0, 111.0, 1.0, 4.2) * ramp(d, 111.0, 128.0, 1.0, 1.15);
        }
    }
    // BV=1750 & P=6 oscillates: up into 3/31, down to 4/21, flat, down to
    // 6/10, up again (Table 5 rows 3, 4, 6, 7).
    if p.bv == 1750 && p.pack == 6 {
        m *= ramp(d, 45.0, 62.0, 1.0, 1.9)
            * ramp(d, 62.0, 77.0, 1.0, 0.62)
            * ramp(d, 89.0, 111.0, 1.0, 0.70)
            * ramp(d, 111.0, 128.0, 1.0, 1.55);
    }
    // BV=750 & P=12 rises into 3/31 then gives some back after 5/8.
    if p.bv == 750 && p.pack == 12 {
        m *= ramp(d, 45.0, 62.0, 1.0, 1.6) * ramp(d, 89.0, 111.0, 1.0, 0.75);
    }
    m
}

/// The generated Liquor dataset.
#[derive(Clone, Debug)]
pub struct LiquorData {
    /// Schema: `(date, BV, P, CN, VN, bottles_sold)`; one row per
    /// (business day, catalogue product) with the day's total bottles.
    pub relation: Relation,
    /// Business-day calendar.
    pub dates: Vec<String>,
}

/// Generates the Liquor workload (deterministic per seed).
pub fn generate(seed: u64) -> LiquorData {
    let mut rng = StdRng::seed_from_u64(seed);
    // Business days 2020-01-02 .. 2020-06-30, skipping Memorial Day.
    let mut dates = weekdays(2020, 1, 2, 3, "2020-06-30");
    dates.retain(|d| d != "2020-05-25" && d != "2020-01-20");
    let n_days = dates.len();

    // Build the catalogue. Pack/volume popularity is skewed towards the
    // common formats; category and vendor assignment is random but fixed.
    let mut products = Vec::with_capacity(N_PRODUCTS);
    for _ in 0..N_PRODUCTS {
        let bv = BOTTLE_VOLUMES[rng.random_range(0..BOTTLE_VOLUMES.len())];
        let pack = PACKS[rng.random_range(0..PACKS.len())];
        let category = rng.random_range(0..N_CATEGORIES);
        let vendor = rng.random_range(0..N_VENDORS);
        // Heavy-tailed popularity: most catalogue entries sell a handful of
        // bottles a day (and get support-filtered), a few are blockbusters
        // — matching the paper's filtered-ε ratio on the Iowa data.
        let u: f64 = rng.random::<f64>();
        let tail = 0.3 + 60.0 * u.powi(4);
        let popularity = match (bv, pack) {
            (750, _) | (1000, _) => tail * rng.random_range(1.5..3.0),
            (_, 6) | (_, 12) => tail * rng.random_range(1.2..2.5),
            _ => tail,
        };
        products.push(Product {
            bv,
            pack,
            category,
            vendor,
            weight: popularity,
        });
    }

    let schema = Schema::new(vec![
        Field::dimension("date"),
        Field::dimension("BV"),
        Field::dimension("P"),
        Field::dimension("CN"),
        Field::dimension("VN"),
        Field::measure("bottles_sold"),
    ])
    .expect("static schema");
    let mut b = Relation::builder(schema);

    for (day, date) in dates.iter().enumerate() {
        for p in &products {
            let expected = p.weight * multiplier(p, day as f64);
            let qty = (expected * (1.0 + gaussian(&mut rng, 0.0, 0.15)))
                .max(0.0)
                .round();
            if qty <= 0.0 {
                continue;
            }
            b.push_row(vec![
                Datum::from(date.as_str()),
                Datum::from(p.bv),
                Datum::from(p.pack),
                Datum::from(format!("category-{:02}", p.category)),
                Datum::from(format!("vendor-{:02}", p.vendor)),
                Datum::from(qty),
            ])
            .expect("schema-conformant row");
        }
    }

    let _ = n_days;
    LiquorData {
        relation: b.finish(),
        dates,
    }
}

impl LiquorData {
    /// `SELECT date, SUM(bottles_sold) … GROUP BY date` with the paper's
    /// four explain-by attributes.
    pub fn workload(&self) -> Workload {
        Workload::new(
            "liquor",
            self.relation.clone(),
            AggQuery::sum("date", "bottles_sold"),
            vec![
                "BV".to_string(),
                "P".to_string(),
                "CN".to_string(),
                "VN".to_string(),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day_of(dates: &[String], date: &str) -> usize {
        dates.iter().position(|d| d.as_str() >= date).unwrap()
    }

    #[test]
    fn calendar_shape_matches_paper_band() {
        let d = generate(0);
        // Paper: n = 128 business days.
        assert!(
            (120..=132).contains(&d.dates.len()),
            "n = {}",
            d.dates.len()
        );
        assert_eq!(d.dates.first().unwrap(), "2020-01-02");
        assert_eq!(d.dates.last().unwrap(), "2020-06-30");
    }

    #[test]
    fn slice_trends_match_case_study() {
        let d = generate(0);
        let rel = &d.relation;
        let dates_col = rel.dim_column("date").unwrap();
        let bv = rel.dim_column("BV").unwrap();
        let pack = rel.dim_column("P").unwrap();
        let qty = rel.measure("bottles_sold").unwrap();
        let sum_where = |bv_val: Option<i64>, p_val: Option<i64>, lo: usize, hi: usize| -> f64 {
            (0..rel.n_rows())
                .filter(|&r| {
                    let day = dates_col.codes()[r] as usize;
                    day >= lo && day < hi
                })
                .filter(|&r| {
                    bv_val.is_none_or(|v| {
                        bv.dict()
                            .code_of(&v.into())
                            .is_some_and(|c| bv.codes()[r] == c)
                    })
                })
                .filter(|&r| {
                    p_val.is_none_or(|v| {
                        pack.dict()
                            .code_of(&v.into())
                            .is_some_and(|c| pack.codes()[r] == c)
                    })
                })
                .map(|r| qty[r])
                .sum()
        };
        let d0120 = day_of(&d.dates, "2020-01-20");
        let d0331 = day_of(&d.dates, "2020-03-31");
        let d0421 = day_of(&d.dates, "2020-04-21");
        let d0610 = day_of(&d.dates, "2020-06-10");
        let n = d.dates.len();
        // Large packs surge between late January and late April.
        let early = sum_where(None, Some(12), 0, d0120) / d0120 as f64;
        let spring = sum_where(None, Some(12), d0331, d0421) / (d0421 - d0331) as f64;
        assert!(spring > early * 1.5, "P=12: early {early} spring {spring}");
        // BV=1000 collapses after mid-March and recovers by June.
        let before = sum_where(Some(1000), None, 0, d0120) / d0120 as f64;
        let closed = sum_where(Some(1000), None, d0331, d0421) / (d0421 - d0331) as f64;
        let reopened = sum_where(Some(1000), None, d0610, n) / (n - d0610) as f64;
        assert!(closed < before * 0.45, "closure {closed} vs {before}");
        assert!(reopened > closed * 2.0, "reopen {reopened} vs {closed}");
    }

    #[test]
    fn candidate_count_in_thousands() {
        // The paper reports ε ≈ 8197 for order ≤ 3 over the 4 attributes.
        // Exact counts depend on the catalogue draw; assert the magnitude.
        let d = generate(0);
        let rel = &d.relation;
        use std::collections::HashSet;
        let bv = rel.dim_column("BV").unwrap();
        let p = rel.dim_column("P").unwrap();
        let cn = rel.dim_column("CN").unwrap();
        let vn = rel.dim_column("VN").unwrap();
        let mut triples: HashSet<(u32, u32, u32)> = HashSet::new();
        for r in 0..rel.n_rows() {
            triples.insert((bv.codes()[r], p.codes()[r], cn.codes()[r]));
        }
        let mut order1 = bv.dict().len() + p.dict().len() + cn.dict().len() + vn.dict().len();
        assert!(order1 < 150, "order-1 candidates: {order1}");
        order1 += triples.len(); // just one of the four triple families
        assert!(order1 > 800, "at least hundreds of high-order candidates");
    }

    #[test]
    fn deterministic() {
        let a = generate(5);
        let b = generate(5);
        assert_eq!(a.relation.n_rows(), b.relation.n_rows());
        assert_eq!(
            a.relation.measure("bottles_sold").unwrap(),
            b.relation.measure("bottles_sold").unwrap()
        );
    }
}
