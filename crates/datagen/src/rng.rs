use rand::{Rng, RngExt};

/// Samples one standard-normal-derived Gaussian via the Box–Muller
/// transform.
///
/// `rand_distr` is not among the approved offline crates, and Box–Muller is
/// all the generators need (see DESIGN.md §8).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    // Avoid ln(0): u1 ∈ (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_approximately_right() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(gaussian(&mut a, 0.0, 1.0), gaussian(&mut b, 0.0, 1.0));
        }
    }

    #[test]
    fn zero_std_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(gaussian(&mut rng, 5.0, 0.0), 5.0);
        }
    }
}
