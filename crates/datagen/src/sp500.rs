//! The S&P 500 workload simulator (paper §7.1.2, "S&P 500").
//!
//! 503 constituents in a `category → subcategory → stock` hierarchy over
//! the 2020 window 2020-01-02 .. 2020-10-01. The index is
//! `SUM(price · share) / divisor`. The generator reproduces the story the
//! paper's case study tells (Table 4): a tech/internet-retail-led rise
//! into early February with energy sliding, the 2/20–3/23 crash led by
//! technology, financial and communication, a tech-led recovery in which
//! financial conspicuously does *not* bounce back, and the
//! late-August-to-October pullback.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tsexplain_relation::{AggFn, AggQuery, Datum, Field, MeasureExpr, Relation, Schema};

use crate::dates::trading_days_2020;
use crate::rng::gaussian;
use crate::workload::Workload;

/// Index divisor (scales `SUM(price·share)` into index points).
pub const DIVISOR: f64 = 8.0e9;

/// Sector table: name, cap-weight share, stock count share, industries.
const SECTORS: [(&str, f64, &[&str]); 11] = [
    (
        "technology",
        0.27,
        &[
            "software",
            "semiconductors",
            "hardware",
            "it services",
            "cloud",
        ],
    ),
    (
        "healthcare",
        0.14,
        &[
            "pharma",
            "biotech",
            "medical devices",
            "health insurance",
            "diagnostics",
        ],
    ),
    (
        "financial",
        0.11,
        &[
            "banks",
            "insurance",
            "asset management",
            "credit services",
            "exchanges",
        ],
    ),
    (
        "communication",
        0.10,
        &[
            "internet content",
            "telecom",
            "media",
            "entertainment",
            "advertising",
        ],
    ),
    (
        "consumer cyclical",
        0.10,
        &[
            "internet retail",
            "autos",
            "restaurants",
            "apparel",
            "travel",
        ],
    ),
    (
        "industrials",
        0.08,
        &[
            "aerospace",
            "railroads",
            "machinery",
            "airlines",
            "logistics",
        ],
    ),
    (
        "consumer defensive",
        0.07,
        &[
            "household products",
            "beverages",
            "discount stores",
            "packaged foods",
            "tobacco",
        ],
    ),
    (
        "energy",
        0.04,
        &[
            "oil majors",
            "exploration",
            "pipelines",
            "refining",
            "services",
        ],
    ),
    (
        "utilities",
        0.03,
        &["electric", "gas", "water", "renewables", "multi-utility"],
    ),
    (
        "real estate",
        0.03,
        &[
            "reit office",
            "reit retail",
            "reit residential",
            "reit data",
            "reit health",
        ],
    ),
    (
        "basic materials",
        0.03,
        &[
            "chemicals",
            "metals",
            "mining",
            "paper",
            "construction materials",
        ],
    ),
];

/// Total number of constituents (the paper keeps the 503 companies present
/// through the whole period).
pub const N_STOCKS: usize = 503;

/// Market phases as (start-day, end-day, market log-return over the phase).
/// Day indices are in trading days (~188 total); key calendar anchors:
/// 2/6 ≈ 24, 2/19 ≈ 33, 3/23 ≈ 56, 8/25 ≈ 163, 9/23 ≈ 183.
const PHASES: [(usize, usize, f64); 5] = [
    (0, 33, 0.055),     // new-year rally into 2/19
    (33, 56, -0.42),    // covid crash to 3/23
    (56, 163, 0.50),    // recovery into late August
    (163, 183, -0.085), // September pullback
    (183, 200, 0.015),  // stabilisation into 10/1
];

/// Per-sector extra log-drift per phase (same phase boundaries).
fn sector_drift(sector: &str) -> [f64; 5] {
    match sector {
        "technology" => [0.050, -0.10, 0.33, -0.055, 0.0],
        "financial" => [0.000, -0.16, -0.06, -0.035, 0.0],
        "communication" => [0.020, -0.11, 0.16, -0.045, 0.0],
        "consumer cyclical" => [0.010, -0.05, 0.22, -0.010, 0.0],
        "energy" => [-0.120, -0.25, 0.04, -0.020, 0.0],
        "healthcare" => [0.000, 0.04, 0.05, 0.010, 0.0],
        "consumer defensive" => [0.000, 0.06, 0.02, 0.010, 0.0],
        "utilities" => [0.010, 0.03, 0.00, 0.000, 0.0],
        "real estate" => [0.000, -0.06, -0.02, 0.000, 0.0],
        "industrials" => [0.000, -0.08, 0.08, -0.010, 0.0],
        "basic materials" => [0.000, -0.04, 0.06, 0.000, 0.0],
        _ => [0.0; 5],
    }
}

/// Per-industry extra log-drift per phase (on top of the sector's).
fn industry_drift(industry: &str) -> [f64; 5] {
    match industry {
        "internet retail" => [0.080, 0.05, 0.18, -0.02, 0.0],
        "airlines" | "travel" => [-0.020, -0.25, -0.08, 0.00, 0.0],
        "banks" => [0.000, -0.05, -0.04, -0.01, 0.0],
        "internet content" => [0.020, 0.00, 0.10, -0.02, 0.0],
        _ => [0.0; 5],
    }
}

/// Daily log-return contribution of a phase table at `day`.
fn phase_daily(drifts: &[f64; 5], day: usize) -> f64 {
    for (i, &(start, end, _)) in PHASES.iter().enumerate() {
        if day >= start && day < end {
            return drifts[i] / (end - start) as f64;
        }
    }
    0.0
}

fn market_daily(day: usize) -> f64 {
    for &(start, end, total) in &PHASES {
        if day >= start && day < end {
            return total / (end - start) as f64;
        }
    }
    0.0
}

/// The generated S&P 500 dataset.
#[derive(Clone, Debug)]
pub struct Sp500Data {
    /// Schema: `(date, category, subcategory, stock, price, share)`.
    pub relation: Relation,
    /// The trading-day calendar used.
    pub dates: Vec<String>,
}

/// Generates the S&P 500 workload (deterministic per seed).
pub fn generate(seed: u64) -> Sp500Data {
    let mut rng = StdRng::seed_from_u64(seed);
    let dates = trading_days_2020();
    let n_days = dates.len();

    // Allocate stocks to sectors proportionally to cap weight.
    let mut stocks: Vec<(String, &str, &str, f64, f64)> = Vec::with_capacity(N_STOCKS);
    // (ticker, sector, industry, base price, shares)
    let total_weight: f64 = SECTORS.iter().map(|s| s.1).sum();
    for (si, &(sector, weight, industries)) in SECTORS.iter().enumerate() {
        let count = if si == SECTORS.len() - 1 {
            N_STOCKS - stocks.len()
        } else {
            ((weight / total_weight) * N_STOCKS as f64).round() as usize
        };
        for j in 0..count {
            let industry = industries[j % industries.len()];
            let ticker = format!("{}{:03}", sector_ticker_prefix(sector), j);
            let base_price = rng.random_range(40.0..400.0);
            // Cap share within the sector is skewed: a few mega-caps.
            let cap = weight * 28e12 / count as f64
                * rng.random_range(0.4..2.2)
                * if j < 3 { 3.0 } else { 1.0 };
            let shares = cap / base_price;
            stocks.push((ticker, sector, industry, base_price, shares));
        }
    }
    debug_assert_eq!(stocks.len(), N_STOCKS);

    let schema = Schema::new(vec![
        Field::dimension("date"),
        Field::dimension("category"),
        Field::dimension("subcategory"),
        Field::dimension("stock"),
        Field::measure("price"),
        Field::measure("share"),
    ])
    .expect("static schema");
    let mut b = Relation::builder(schema);

    for (ticker, sector, industry, base_price, shares) in &stocks {
        let sdrift = sector_drift(sector);
        let idrift = industry_drift(industry);
        let mut log_price = base_price.ln();
        for (day, date) in dates.iter().enumerate().take(n_days) {
            if day > 0 {
                let ret = market_daily(day)
                    + phase_daily(&sdrift, day)
                    + phase_daily(&idrift, day)
                    + gaussian(&mut rng, 0.0, 0.006);
                log_price += ret;
            }
            b.push_row(vec![
                Datum::from(date.as_str()),
                Datum::from(*sector),
                Datum::from(*industry),
                Datum::from(ticker.as_str()),
                Datum::from(log_price.exp()),
                Datum::from(*shares),
            ])
            .expect("schema-conformant row");
        }
    }

    Sp500Data {
        relation: b.finish(),
        dates,
    }
}

fn sector_ticker_prefix(sector: &str) -> String {
    sector
        .split_whitespace()
        .map(|w| w.chars().next().unwrap_or('X').to_ascii_uppercase())
        .collect::<String>()
        + "T"
}

impl Sp500Data {
    /// `SELECT date, SUM(price*share)/divisor … GROUP BY date`.
    pub fn workload(&self) -> Workload {
        Workload::new(
            "sp500",
            self.relation.clone(),
            AggQuery::new(
                "date",
                AggFn::Sum,
                MeasureExpr::product("price", "share").scaled(1.0 / DIVISOR),
            ),
            vec![
                "category".to_string(),
                "subcategory".to_string(),
                "stock".to_string(),
            ],
        )
    }

    /// Index level at day `idx` (for tests).
    pub fn index_at(&self, idx: usize) -> f64 {
        let w = self.workload();
        let ts = w.query.run(&self.relation).expect("valid query");
        ts.values[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day_of(dates: &[String], date: &str) -> usize {
        dates.iter().position(|d| d.as_str() >= date).unwrap()
    }

    #[test]
    fn shape() {
        let d = generate(0);
        let n_days = d.dates.len();
        assert_eq!(d.relation.n_rows(), N_STOCKS * n_days);
        assert_eq!(
            d.relation.dim_column("stock").unwrap().dict().len(),
            N_STOCKS
        );
        assert_eq!(d.relation.dim_column("category").unwrap().dict().len(), 11);
        let subcats = d.relation.dim_column("subcategory").unwrap().dict().len();
        assert!((50..=60).contains(&subcats), "{subcats}");
    }

    #[test]
    fn index_follows_crash_and_rebound() {
        let d = generate(0);
        let w = d.workload();
        let ts = w.query.run(&d.relation).unwrap();
        let peak = day_of(&d.dates, "2020-02-19");
        let trough = day_of(&d.dates, "2020-03-23");
        let summer = day_of(&d.dates, "2020-08-25");
        let crash = ts.values[trough] / ts.values[peak];
        assert!(crash < 0.75, "crash ratio {crash}");
        assert!(ts.values[summer] > ts.values[trough] * 1.3);
        // September pullback.
        assert!(*ts.values.last().unwrap() < ts.values[summer]);
    }

    #[test]
    fn sector_stories_hold() {
        let d = generate(0);
        let rel = &d.relation;
        let cats = rel.dim_column("category").unwrap();
        let dates_col = rel.dim_column("date").unwrap();
        let prices = rel.measure("price").unwrap();
        let shares = rel.measure("share").unwrap();
        let cap = |sector: &str, date_idx: usize| -> f64 {
            let code = cats.dict().code_of(&sector.into()).unwrap();
            (0..rel.n_rows())
                .filter(|&r| cats.codes()[r] == code && dates_col.codes()[r] as usize == date_idx)
                .map(|r| prices[r] * shares[r])
                .sum()
        };
        let trough = day_of(&d.dates, "2020-03-23");
        let summer = day_of(&d.dates, "2020-08-25");
        // Tech rebounds strongly; financial barely moves off the bottom.
        let tech_rebound = cap("technology", summer) / cap("technology", trough);
        let fin_rebound = cap("financial", summer) / cap("financial", trough);
        assert!(tech_rebound > 1.5, "tech {tech_rebound}");
        assert!(fin_rebound < tech_rebound * 0.75, "fin {fin_rebound}");
        // Energy declines into early February.
        let feb = day_of(&d.dates, "2020-02-06");
        assert!(cap("energy", feb) < cap("energy", 0));
    }

    #[test]
    fn deterministic() {
        let a = generate(3);
        let b = generate(3);
        assert_eq!(
            a.relation.measure("price").unwrap(),
            b.relation.measure("price").unwrap()
        );
    }
}
