//! The time-varying-attribute case study (paper §8, Fig. 18).
//!
//! CDC-style weekly Covid deaths for weeks 14–52 of 2021, broken down by
//! `age-group` (static per person) and `vaccinated` (time-varying: people
//! move from NO to YES as coverage grows). The generated dynamics
//! reproduce the paper's reading: before ~week 31 the unvaccinated
//! population drives the death toll (including unvaccinated young people),
//! afterwards age-group=50+ dominates as breakthrough deaths among
//! vaccinated elders rise while young unvaccinated deaths recede.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

use crate::rng::gaussian;
use crate::workload::Workload;

/// First and last reporting weeks (2021).
pub const FIRST_WEEK: usize = 14;
/// Last reporting week.
pub const LAST_WEEK: usize = 52;

/// Age groups used by the CDC surveillance table.
pub const AGE_GROUPS: [&str; 3] = ["18-29", "30-49", "50+"];

fn wave(week: f64, peak: f64, width: f64, height: f64) -> f64 {
    let z = (week - peak) / width;
    height * (-0.5 * z * z).exp()
}

/// A logistic ramp from 0 to `height` centred at `mid` with slope scale
/// `rate` (weeks).
fn rise(week: f64, mid: f64, rate: f64, height: f64) -> f64 {
    height / (1.0 + (-(week - mid) / rate).exp())
}

/// Expected weekly deaths for one (age-group, vaccinated) slice.
///
/// Designed so that over the early phase (weeks ≲ 31) the `vaccinated=NO`
/// slice moves most (the delta wave hits the unvaccinated of *all* ages),
/// while over the late phase the `age-group=50+` slice moves most: deaths
/// among vaccinated elders rise sharply (waning protection) and
/// unvaccinated elders keep climbing into winter, whereas young
/// unvaccinated deaths recede — inside the NO slice the late elder rise is
/// cancelled by the young decline.
fn expected(age: &str, vaccinated: bool, week: usize) -> f64 {
    let w = week as f64;
    match (age, vaccinated) {
        ("50+", false) => 500.0 + wave(w, 32.0, 5.0, 1200.0) + rise(w, 45.0, 2.5, 1700.0),
        ("50+", true) => 15.0 + rise(w, 45.0, 2.5, 1950.0),
        ("30-49", false) => 80.0 + wave(w, 32.0, 4.5, 800.0),
        ("30-49", true) => 4.0 + rise(w, 46.0, 3.0, 60.0),
        ("18-29", false) => 25.0 + wave(w, 32.0, 4.5, 240.0),
        ("18-29", true) => 1.0 + rise(w, 46.0, 3.0, 12.0),
        _ => 0.0,
    }
}

/// The generated weekly-deaths dataset.
#[derive(Clone, Debug)]
pub struct CovidDeathsData {
    /// Schema: `(week, age-group, vaccinated, deaths)`.
    pub relation: Relation,
}

/// Generates the weekly-deaths workload (deterministic per seed).
pub fn generate(seed: u64) -> CovidDeathsData {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new(vec![
        Field::dimension("week"),
        Field::dimension("age-group"),
        Field::dimension("vaccinated"),
        Field::measure("deaths"),
    ])
    .expect("static schema");
    let mut b = Relation::builder(schema);
    for week in FIRST_WEEK..=LAST_WEEK {
        for age in AGE_GROUPS {
            for vaccinated in [false, true] {
                let mean = expected(age, vaccinated, week);
                let deaths = (mean * (1.0 + gaussian(&mut rng, 0.0, 0.05)))
                    .max(0.0)
                    .round();
                b.push_row(vec![
                    Datum::Attr((week as i64).into()),
                    Datum::from(age),
                    Datum::from(if vaccinated { "YES" } else { "NO" }),
                    Datum::from(deaths),
                ])
                .expect("schema-conformant row");
            }
        }
    }
    CovidDeathsData {
        relation: b.finish(),
    }
}

impl CovidDeathsData {
    /// `SELECT week, SUM(deaths) … GROUP BY week` with the two explain-by
    /// attributes of §8.
    pub fn workload(&self) -> Workload {
        Workload::new(
            "covid-deaths",
            self.relation.clone(),
            AggQuery::sum("week", "deaths"),
            vec!["age-group".to_string(), "vaccinated".to_string()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice_delta(
        d: &CovidDeathsData,
        age: Option<&str>,
        vax: Option<&str>,
        w0: usize,
        w1: usize,
    ) -> f64 {
        let rel = &d.relation;
        let weeks = rel.dim_column("week").unwrap();
        let ages = rel.dim_column("age-group").unwrap();
        let vaxed = rel.dim_column("vaccinated").unwrap();
        let deaths = rel.measure("deaths").unwrap();
        let sum_at = |week: usize| -> f64 {
            let wcode = weeks.dict().code_of(&(week as i64).into()).unwrap();
            (0..rel.n_rows())
                .filter(|&r| weeks.codes()[r] == wcode)
                .filter(|&r| {
                    age.is_none_or(|a| {
                        ages.dict()
                            .code_of(&a.into())
                            .is_some_and(|c| ages.codes()[r] == c)
                    })
                })
                .filter(|&r| {
                    vax.is_none_or(|v| {
                        vaxed
                            .dict()
                            .code_of(&v.into())
                            .is_some_and(|c| vaxed.codes()[r] == c)
                    })
                })
                .map(|r| deaths[r])
                .sum()
        };
        sum_at(w1) - sum_at(w0)
    }

    #[test]
    fn shape() {
        let d = generate(0);
        assert_eq!(d.relation.n_rows(), 39 * 3 * 2);
        let ts = d.workload().query.run(&d.relation).unwrap();
        assert_eq!(ts.len(), 39);
    }

    #[test]
    fn unvaccinated_dominates_early_rise() {
        let d = generate(0);
        // Over the delta ramp-up (weeks 20 → 31) the NO slice moves more
        // than the 50+ slice (unvaccinated young people add to it).
        let no = slice_delta(&d, None, Some("NO"), 20, 31).abs();
        let elders = slice_delta(&d, Some("50+"), None, 20, 31).abs();
        assert!(no > elders, "NO {no} vs 50+ {elders}");
    }

    #[test]
    fn elders_dominate_late_phase() {
        let d = generate(0);
        // From week 31 to 52 the 50+ slice (vaccinated elders surging,
        // unvaccinated elders climbing into winter) moves more than the NO
        // slice, where the young unvaccinated decline cancels the elders.
        let no = slice_delta(&d, None, Some("NO"), 31, 52).abs();
        let elders = slice_delta(&d, Some("50+"), None, 31, 52).abs();
        assert!(elders > no, "50+ {elders} vs NO {no}");
    }

    #[test]
    fn deterministic() {
        let a = generate(1);
        let b = generate(1);
        assert_eq!(
            a.relation.measure("deaths").unwrap(),
            b.relation.measure("deaths").unwrap()
        );
    }
}
