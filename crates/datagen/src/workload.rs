use tsexplain_relation::{AggQuery, Relation};

/// A ready-to-explain workload: the relation, the "what happened" query and
/// the explain-by attributes the paper's experiments use for it.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short dataset name (used by the bench harness's table rows).
    pub name: String,
    /// The base relation.
    pub relation: Relation,
    /// The aggregated-time-series query.
    pub query: AggQuery,
    /// The explain-by attributes A.
    pub explain_by: Vec<String>,
}

impl Workload {
    /// Bundles the pieces of a workload.
    pub fn new(
        name: impl Into<String>,
        relation: Relation,
        query: AggQuery,
        explain_by: Vec<String>,
    ) -> Self {
        Workload {
            name: name.into(),
            relation,
            query,
            explain_by,
        }
    }
}
