use rand::Rng;

use crate::rng::gaussian;

/// Signal power used as the SNR reference: the *AC power* (population
/// variance) of the series.
///
/// The synthetic series are positive-valued trends with a large DC offset;
/// referencing noise to the mean square would make even high-dB noise
/// dwarf the per-step slope signal. Using the variance matches the
/// difficulty the paper reports (near-perfect recovery above 35 dB,
/// graceful degradation at 20 dB — §4.2.2, §7.3).
pub fn signal_power(signal: &[f64]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    let n = signal.len() as f64;
    let mean = signal.iter().sum::<f64>() / n;
    signal.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n
}

/// The Gaussian noise σ that yields the requested `SNR_dB` for `signal`:
/// `SNR_dB = 10 · log10(P_signal / σ²)`.
pub fn snr_sigma(signal: &[f64], snr_db: f64) -> f64 {
    (signal_power(signal) / 10f64.powf(snr_db / 10.0)).sqrt()
}

/// Adds `N(0, σ²)` noise to `signal` in place, with σ derived from
/// `snr_db`. The lower the SNR, the noisier the series (§4.2.1).
pub fn add_gaussian_noise<R: Rng + ?Sized>(signal: &mut [f64], snr_db: f64, rng: &mut R) {
    let sigma = snr_sigma(signal, snr_db);
    for x in signal.iter_mut() {
        *x += gaussian(rng, 0.0, sigma);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_is_variance() {
        // Constant signals carry no AC power.
        assert_eq!(signal_power(&[2.0; 10]), 0.0);
        assert_eq!(signal_power(&[]), 0.0);
        // A ±1 square wave has variance 1 regardless of offset.
        let sq: Vec<f64> = (0..100)
            .map(|i| 7.0 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!((signal_power(&sq) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sigma_follows_db_scale() {
        let sq: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 10.0 } else { -10.0 })
            .collect();
        // P = 100; SNR 20 dB → σ² = 1.
        assert!((snr_sigma(&sq, 20.0) - 1.0).abs() < 1e-12);
        // Every +10 dB divides σ² by 10.
        let s30 = snr_sigma(&sq, 30.0);
        assert!((s30 * s30 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn realized_snr_close_to_requested() {
        let mut rng = StdRng::seed_from_u64(3);
        let clean: Vec<f64> = (0..20_000).map(|i| 100.0 + (i % 50) as f64).collect();
        let mut noisy = clean.clone();
        add_gaussian_noise(&mut noisy, 25.0, &mut rng);
        let noise_power = clean
            .iter()
            .zip(&noisy)
            .map(|(c, n)| (n - c).powi(2))
            .sum::<f64>()
            / clean.len() as f64;
        let realized_db = 10.0 * (signal_power(&clean) / noise_power).log10();
        assert!((realized_db - 25.0).abs() < 0.5, "realized {realized_db}");
    }

    #[test]
    fn lower_snr_is_noisier() {
        let signal: Vec<f64> = (0..1000).map(|i| 50.0 + (i % 10) as f64).collect();
        let clean = signal.clone();
        let mut rng = StdRng::seed_from_u64(9);
        let mut noisy20 = signal.clone();
        add_gaussian_noise(&mut noisy20, 20.0, &mut rng);
        let mut noisy50 = signal;
        add_gaussian_noise(&mut noisy50, 50.0, &mut rng);
        let dev = |v: &[f64]| -> f64 {
            v.iter()
                .zip(&clean)
                .map(|(x, c)| (x - c).abs())
                .sum::<f64>()
                / v.len() as f64
        };
        assert!(dev(&noisy20) > dev(&noisy50) * 5.0);
    }
}
