//! Minimal Gregorian date handling for the workload generators — enough to
//! produce real ISO-formatted calendars (which sort chronologically as
//! strings) without a date crate.

/// Days per month for a given year (Gregorian).
fn month_lengths(year: u32) -> [u32; 12] {
    let leap = (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400);
    [
        31,
        if leap { 29 } else { 28 },
        31,
        30,
        31,
        30,
        31,
        31,
        30,
        31,
        30,
        31,
    ]
}

/// An iterator over consecutive calendar dates formatted as `YYYY-MM-DD`.
#[derive(Clone, Debug)]
pub struct DateIter {
    year: u32,
    month: u32,
    day: u32,
    /// Day of week, 0 = Monday.
    weekday: u32,
}

impl DateIter {
    /// Starts at the given date. `weekday_of_start` is 0 = Monday.
    ///
    /// Reference points used by the generators: 2020-01-01 was a Wednesday
    /// (2), 2021-01-01 a Friday (4).
    pub fn new(year: u32, month: u32, day: u32, weekday_of_start: u32) -> Self {
        assert!((1..=12).contains(&month));
        assert!(day >= 1 && day <= month_lengths(year)[month as usize - 1]);
        DateIter {
            year,
            month,
            day,
            weekday: weekday_of_start % 7,
        }
    }

    /// The current date as `YYYY-MM-DD`.
    pub fn format(&self) -> String {
        format!("{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }

    /// Day of week of the current date, 0 = Monday … 6 = Sunday.
    pub fn weekday(&self) -> u32 {
        self.weekday
    }

    /// Whether the current date falls on Saturday or Sunday.
    pub fn is_weekend(&self) -> bool {
        self.weekday >= 5
    }

    /// Advances to the next calendar day.
    pub fn advance(&mut self) {
        self.weekday = (self.weekday + 1) % 7;
        self.day += 1;
        if self.day > month_lengths(self.year)[self.month as usize - 1] {
            self.day = 1;
            self.month += 1;
            if self.month > 12 {
                self.month = 1;
                self.year += 1;
            }
        }
    }
}

impl Iterator for DateIter {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        let out = self.format();
        self.advance();
        Some(out)
    }
}

/// `n` consecutive calendar dates starting at the given date.
pub fn dates_from(year: u32, month: u32, day: u32, weekday: u32, n: usize) -> Vec<String> {
    DateIter::new(year, month, day, weekday).take(n).collect()
}

/// All weekdays (Mon–Fri) between the start date and `end` (inclusive,
/// `YYYY-MM-DD`).
pub fn weekdays(year: u32, month: u32, day: u32, weekday: u32, end: &str) -> Vec<String> {
    let mut it = DateIter::new(year, month, day, weekday);
    let mut out = Vec::new();
    loop {
        let current = it.format();
        if current.as_str() > end {
            break;
        }
        if !it.is_weekend() {
            out.push(current);
        }
        it.advance();
    }
    out
}

/// The 2020 US-market trading calendar between 2020-01-02 and 2020-10-01:
/// weekdays minus the major NYSE holidays in that window.
pub fn trading_days_2020() -> Vec<String> {
    const HOLIDAYS: [&str; 6] = [
        "2020-01-20", // MLK day
        "2020-02-17", // Presidents day
        "2020-04-10", // Good Friday
        "2020-05-25", // Memorial day
        "2020-07-03", // Independence day (observed)
        "2020-09-07", // Labor day
    ];
    // 2020-01-02 was a Thursday (weekday 3).
    weekdays(2020, 1, 2, 3, "2020-10-01")
        .into_iter()
        .filter(|d| !HOLIDAYS.contains(&d.as_str()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_and_advances_over_month_boundary() {
        let dates = dates_from(2020, 1, 30, 3, 4);
        assert_eq!(
            dates,
            vec!["2020-01-30", "2020-01-31", "2020-02-01", "2020-02-02"]
        );
    }

    #[test]
    fn leap_year_february() {
        let dates = dates_from(2020, 2, 28, 4, 3);
        assert_eq!(dates, vec!["2020-02-28", "2020-02-29", "2020-03-01"]);
        let dates = dates_from(2021, 2, 28, 6, 2);
        assert_eq!(dates, vec!["2021-02-28", "2021-03-01"]);
    }

    #[test]
    fn year_rollover() {
        let dates = dates_from(2020, 12, 31, 3, 2);
        assert_eq!(dates, vec!["2020-12-31", "2021-01-01"]);
    }

    #[test]
    fn covid_window_has_345_days() {
        // 2020-01-22 (Wednesday) through 2020-12-31 — the paper's n = 345.
        let dates = dates_from(2020, 1, 22, 2, 345);
        assert_eq!(dates.first().unwrap(), "2020-01-22");
        assert_eq!(dates.last().unwrap(), "2020-12-31");
    }

    #[test]
    fn weekday_tracking_matches_calendar() {
        // 2020-01-22 was a Wednesday; 2020-01-25 a Saturday.
        let mut it = DateIter::new(2020, 1, 22, 2);
        assert_eq!(it.weekday(), 2);
        it.advance();
        it.advance();
        it.advance();
        assert_eq!(it.format(), "2020-01-25");
        assert!(it.is_weekend());
    }

    #[test]
    fn weekdays_excludes_weekends() {
        // 2020-06-01 (Monday) .. 2020-06-14 (Sunday): 10 weekdays.
        let w = weekdays(2020, 6, 1, 0, "2020-06-14");
        assert_eq!(w.len(), 10);
        assert!(!w.contains(&"2020-06-06".to_string()));
    }

    #[test]
    fn trading_days_shape() {
        let days = trading_days_2020();
        assert_eq!(days.first().unwrap(), "2020-01-02");
        assert_eq!(days.last().unwrap(), "2020-10-01");
        assert!(!days.contains(&"2020-04-10".to_string()));
        // ~9 months of weekdays minus holidays.
        assert!(days.len() > 180 && days.len() < 195, "{}", days.len());
        assert!(days.windows(2).all(|w| w[0] < w[1]));
    }
}
