//! Criterion bench: the Cascading Analysts algorithm per segment — exact
//! vs guess-and-verify at several initial guesses (the O1 ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsexplain_cube::{CubeConfig, ExplanationCube};
use tsexplain_datagen::{liquor, sp500};
use tsexplain_diff::{CascadingAnalysts, DiffMetric, GuessVerify};

fn bench_workload(c: &mut Criterion, name: &str, cube: &ExplanationCube) {
    let n = cube.n_points();
    let seg = (0, n - 1);
    let mut group = c.benchmark_group(format!("cascading/{name}"));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("exact", |b| {
        let mut ca = CascadingAnalysts::new(cube, DiffMetric::AbsoluteChange, 3);
        b.iter(|| black_box(ca.top_m(seg).total_score()))
    });
    for initial in [10usize, 30, 100] {
        group.bench_function(format!("guess_verify/m0={initial}"), |b| {
            let mut ca = CascadingAnalysts::new(cube, DiffMetric::AbsoluteChange, 3);
            let mut gv = GuessVerify::new(cube, initial);
            b.iter(|| {
                let (top, _) = gv.top_m(&mut ca, seg);
                black_box(top.total_score())
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    let sp = sp500::generate(0).workload();
    let sp_cube = ExplanationCube::build(
        &sp.relation,
        &sp.query,
        &CubeConfig::new(sp.explain_by.iter().map(String::as_str)).with_filter_ratio(0.001),
    )
    .unwrap();
    bench_workload(c, "sp500", &sp_cube);

    let lq = liquor::generate(0).workload();
    let lq_cube = ExplanationCube::build(
        &lq.relation,
        &lq.query,
        &CubeConfig::new(lq.explain_by.iter().map(String::as_str)).with_filter_ratio(0.001),
    )
    .unwrap();
    bench_workload(c, "liquor", &lq_cube);
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = benches
}
criterion_main!(group);
