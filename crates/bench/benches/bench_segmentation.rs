//! Criterion bench: module (c) — cost computation + DP — and the tse vs
//! alternative variance metrics ablation on the Covid workload.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsexplain_cube::{CubeConfig, ExplanationCube};
use tsexplain_datagen::covid;
use tsexplain_diff::{DiffMetric, TopExplStrategy};
use tsexplain_segment::{k_segmentation, SegmentationContext, VarianceMetric};

fn benches(c: &mut Criterion) {
    let workload = covid::generate(0).total_workload();
    let cube = ExplanationCube::build(
        &workload.relation,
        &workload.query,
        &CubeConfig::new(workload.explain_by.iter().map(String::as_str)).with_filter_ratio(0.001),
    )
    .unwrap();
    let n = cube.n_points();

    let mut group = c.benchmark_group("segmentation/covid-total");
    group.sample_size(10);

    // Full dense cost matrix + DP under the paper's tse metric and the
    // one-sided alternatives (the §4.2.2 design ablation).
    for metric in [
        VarianceMetric::Tse,
        VarianceMetric::Dist1,
        VarianceMetric::Dist2,
    ] {
        group.bench_function(format!("dense_costs+dp/{metric}"), |b| {
            b.iter(|| {
                let mut ctx = SegmentationContext::new(
                    &cube,
                    DiffMetric::AbsoluteChange,
                    3,
                    TopExplStrategy::GuessVerify { initial_guess: 30 },
                    metric,
                );
                let positions: Vec<usize> = (0..n).collect();
                let costs = ctx.compute_costs(&positions, None);
                let dp = k_segmentation(&costs, 20);
                black_box(dp.total_cost(6))
            })
        });
    }

    // Banded (sketch phase I) costs.
    group.bench_function("banded_costs/L=20", |b| {
        b.iter(|| {
            let mut ctx = SegmentationContext::new(
                &cube,
                DiffMetric::AbsoluteChange,
                3,
                TopExplStrategy::GuessVerify { initial_guess: 30 },
                VarianceMetric::Tse,
            );
            let positions: Vec<usize> = (0..n).collect();
            let costs = ctx.compute_costs(&positions, Some(20));
            black_box(costs.n_pos())
        })
    });
    group.finish();
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = benches
}
criterion_main!(group);
