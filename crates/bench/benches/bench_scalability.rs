//! Criterion bench: optimized-pipeline latency vs series length (the
//! statistical companion of the Fig. 17 harness; the harness covers the
//! long tail with the 100 s cutoff).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tsexplain::{ExplainRequest, ExplainSession, Optimizations};
use tsexplain_datagen::synthetic::{SyntheticConfig, SyntheticDataset};

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability/optimized");
    group.sample_size(10);
    for n in [100usize, 200, 400, 800] {
        let dataset = SyntheticDataset::generate(SyntheticConfig {
            n_points: n,
            snr_db: Some(35.0),
            min_segment_len: (n / 20).max(6),
            seed: 0,
            ..SyntheticConfig::default()
        });
        let workload = dataset.workload();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &workload, |b, w| {
            let request =
                ExplainRequest::new(w.explain_by.clone()).with_optimizations(Optimizations::all());
            let mut session = ExplainSession::new(w.relation.clone(), w.query.clone()).unwrap();
            b.iter(|| {
                session.invalidate();
                let result = session.explain(&request).unwrap();
                black_box(result.chosen_k)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = benches
}
criterion_main!(group);
