//! Criterion bench: the three shape-baseline segmenters on the Covid
//! aggregate, across window sizes for the windowed methods.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsexplain_baselines::{bottom_up, fluss, nnsegment};
use tsexplain_datagen::covid;

fn benches(c: &mut Criterion) {
    let workload = covid::generate(0).total_workload();
    let series = workload.query.run(&workload.relation).unwrap().values;
    let k = 6;

    let mut group = c.benchmark_group("baselines/covid-total");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("bottom_up", |b| b.iter(|| black_box(bottom_up(&series, k))));
    for window in [10usize, 15, 25] {
        group.bench_function(format!("fluss/w={window}"), |b| {
            b.iter(|| black_box(fluss(&series, k, window)))
        });
        group.bench_function(format!("nnsegment/w={window}"), |b| {
            b.iter(|| black_box(nnsegment(&series, k, window)))
        });
    }
    group.finish();
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = benches
}
criterion_main!(group);
