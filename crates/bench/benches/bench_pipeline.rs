//! Criterion bench: end-to-end `explain()` under the Fig. 15 optimization
//! bundles (Vanilla / w filter / O1 / O2 / O1+O2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsexplain::{Optimizations, TsExplain, TsExplainConfig};
use tsexplain_datagen::{covid, liquor, sp500, Workload};

fn bench_bundles(c: &mut Criterion, workload: &Workload, bundles: &[(&str, Optimizations)]) {
    let mut group = c.benchmark_group(format!("pipeline/{}", workload.name));
    group.sample_size(10);
    for (name, optimizations) in bundles {
        group.bench_function(*name, |b| {
            let engine = TsExplain::new(
                TsExplainConfig::new(workload.explain_by.clone())
                    .with_optimizations(*optimizations),
            );
            b.iter(|| {
                let result = engine.explain(&workload.relation, &workload.query).unwrap();
                black_box(result.chosen_k)
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    let all = [
        ("vanilla", Optimizations::none()),
        ("filter", Optimizations::filter_only()),
        ("o1", Optimizations::o1()),
        ("o2", Optimizations::o2()),
        ("o1+o2", Optimizations::all()),
    ];
    let covid_data = covid::generate(0);
    bench_bundles(c, &covid_data.total_workload(), &all);
    bench_bundles(c, &sp500::generate(0).workload(), &all);
    // Liquor's vanilla run takes seconds; bench only the optimized bundles.
    let optimized = [
        ("o1", Optimizations::o1()),
        ("o2", Optimizations::o2()),
        ("o1+o2", Optimizations::all()),
    ];
    bench_bundles(c, &liquor::generate(0).workload(), &optimized);
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = benches
}
criterion_main!(group);
