//! Criterion bench: end-to-end `explain()` under the Fig. 15 optimization
//! bundles (Vanilla / w filter / O1 / O2 / O1+O2), plus the four
//! segmentation strategies on one dataset (baseline-vs-DP pipeline cost).
//!
//! Each iteration invalidates the session's cube cache first, so the
//! measured cost is precompute + pipeline — the one-shot serving cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsexplain::{default_window_for, ExplainRequest, ExplainSession, Optimizations, SegmenterSpec};
use tsexplain_datagen::synthetic::{SyntheticConfig, SyntheticDataset};
use tsexplain_datagen::{covid, liquor, sp500, Workload};

fn bench_bundles(c: &mut Criterion, workload: &Workload, bundles: &[(&str, Optimizations)]) {
    let mut group = c.benchmark_group(format!("pipeline/{}", workload.name));
    group.sample_size(10);
    for (name, optimizations) in bundles {
        group.bench_function(*name, |b| {
            let request =
                ExplainRequest::new(workload.explain_by.clone()).with_optimizations(*optimizations);
            let mut session =
                ExplainSession::new(workload.relation.clone(), workload.query.clone()).unwrap();
            b.iter(|| {
                session.invalidate();
                let result = session.explain(&request).unwrap();
                black_box(result.chosen_k)
            })
        });
    }
    group.finish();
}

/// Per-strategy serving cost over a warm cube: what a `/compare` fan-out
/// pays per strategy after the shared precompute.
fn bench_strategies(c: &mut Criterion, workload: &Workload) {
    let mut group = c.benchmark_group(format!("segmenter/{}", workload.name));
    group.sample_size(10);
    let n = workload
        .relation
        .dim_column(workload.query.time_attr())
        .map(|c| c.dict().len())
        .unwrap_or(100);
    let window = default_window_for(n);
    for spec in [
        SegmenterSpec::Dp,
        SegmenterSpec::BottomUp,
        SegmenterSpec::fluss(window),
        SegmenterSpec::nnsegment(window),
    ] {
        group.bench_function(spec.name(), |b| {
            let request = ExplainRequest::new(workload.explain_by.clone())
                .with_optimizations(Optimizations::all())
                .with_segmenter(spec);
            let mut session =
                ExplainSession::new(workload.relation.clone(), workload.query.clone()).unwrap();
            session.explain(&request).unwrap(); // warm the cube
            b.iter(|| {
                let result = session.explain(&request).unwrap();
                black_box(result.chosen_k)
            })
        });
    }
    group.finish();
}

/// The intra-query parallelism dimension of `segmenter/*`: every strategy
/// on the scalability dataset at 1 / 2 / 4 worker threads, warm cube, so
/// the measured delta is the segment-side fan-out (cost matrix rows, DP
/// layers, auto-K scoring). Answers are byte-identical at any thread
/// count — the parallel layer's determinism contract — so this measures
/// speedup, never drift.
fn bench_parallel_strategies(c: &mut Criterion) {
    let dataset = SyntheticDataset::generate(SyntheticConfig {
        n_points: 400,
        snr_db: Some(35.0),
        min_segment_len: 20,
        seed: 0,
        ..SyntheticConfig::default()
    });
    let workload = dataset.workload();
    let window = default_window_for(400);
    for threads in [1usize, 2, 4] {
        let mut group = c.benchmark_group(format!("segmenter/scalability/threads={threads}"));
        group.sample_size(10);
        for spec in SegmenterSpec::all_with_window(window) {
            group.bench_function(spec.name(), |b| {
                let request = ExplainRequest::new(workload.explain_by.clone())
                    .with_optimizations(Optimizations::all())
                    .with_segmenter(spec)
                    .with_threads(threads);
                let mut session =
                    ExplainSession::new(workload.relation.clone(), workload.query.clone()).unwrap();
                session.explain(&request).unwrap(); // warm the cube
                b.iter(|| {
                    let result = session.explain(&request).unwrap();
                    black_box(result.chosen_k)
                })
            });
        }
        group.finish();
    }
}

fn benches(c: &mut Criterion) {
    let all = [
        ("vanilla", Optimizations::none()),
        ("filter", Optimizations::filter_only()),
        ("o1", Optimizations::o1()),
        ("o2", Optimizations::o2()),
        ("o1+o2", Optimizations::all()),
    ];
    let covid_data = covid::generate(0);
    bench_bundles(c, &covid_data.total_workload(), &all);
    bench_bundles(c, &sp500::generate(0).workload(), &all);
    bench_strategies(c, &sp500::generate(0).workload());
    bench_parallel_strategies(c);
    // Liquor's vanilla run takes seconds; bench only the optimized bundles.
    let optimized = [
        ("o1", Optimizations::o1()),
        ("o2", Optimizations::o2()),
        ("o1+o2", Optimizations::all()),
    ];
    bench_bundles(c, &liquor::generate(0).workload(), &optimized);
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = benches
}
criterion_main!(group);
