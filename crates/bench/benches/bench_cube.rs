//! Criterion bench: cube construction (pipeline module a) per workload,
//! with and without the support filter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsexplain_cube::{CubeConfig, ExplanationCube};
use tsexplain_datagen::{covid, liquor, sp500, Workload};

fn bench_build(c: &mut Criterion, workload: &Workload, filtered: bool) {
    let mut config = CubeConfig::new(workload.explain_by.iter().map(String::as_str));
    if filtered {
        config = config.with_filter_ratio(0.001);
    }
    let label = format!(
        "cube_build/{}{}",
        workload.name,
        if filtered { "/filter" } else { "" }
    );
    c.bench_function(&label, |b| {
        b.iter(|| {
            let cube =
                ExplanationCube::build(&workload.relation, &workload.query, &config).unwrap();
            black_box(cube.n_candidates())
        })
    });
}

fn benches(c: &mut Criterion) {
    let covid_data = covid::generate(0);
    bench_build(c, &covid_data.total_workload(), false);
    bench_build(c, &covid_data.total_workload(), true);
    bench_build(c, &sp500::generate(0).workload(), true);
    bench_build(c, &liquor::generate(0).workload(), true);
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = benches
}
criterion_main!(group);
