//! Criterion bench: cube construction (pipeline module a) per workload,
//! with and without the support filter, plus the intra-query parallel
//! build at several thread counts (the speedup dimension; answers are
//! byte-identical by the parallel layer's determinism contract).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsexplain_cube::{CubeConfig, ExplanationCube, ParallelCtx};
use tsexplain_datagen::{covid, liquor, sp500, Workload};

fn bench_build(c: &mut Criterion, workload: &Workload, filtered: bool) {
    let mut config = CubeConfig::new(workload.explain_by.iter().map(String::as_str));
    if filtered {
        config = config.with_filter_ratio(0.001);
    }
    let label = format!(
        "cube_build/{}{}",
        workload.name,
        if filtered { "/filter" } else { "" }
    );
    c.bench_function(&label, |b| {
        b.iter(|| {
            let cube =
                ExplanationCube::build(&workload.relation, &workload.query, &config).unwrap();
            black_box(cube.n_candidates())
        })
    });
}

/// The parallel build dimension: the same cube at 1 / 2 / 4 worker
/// threads. Candidate enumeration fans the independent attribute subsets
/// across the workers, so the speedup needs a multi-attribute explain-by
/// set — liquor's (Table 6's densest) is the reference.
fn bench_build_threads(c: &mut Criterion, workload: &Workload) {
    let config =
        CubeConfig::new(workload.explain_by.iter().map(String::as_str)).with_filter_ratio(0.001);
    for threads in [1usize, 2, 4] {
        let ctx = ParallelCtx::new(threads);
        let label = format!("cube_build/{}/threads={threads}", workload.name);
        c.bench_function(&label, |b| {
            b.iter(|| {
                let cube =
                    ExplanationCube::build_with(&workload.relation, &workload.query, &config, &ctx)
                        .unwrap();
                black_box(cube.n_candidates())
            })
        });
    }
}

fn benches(c: &mut Criterion) {
    let covid_data = covid::generate(0);
    bench_build(c, &covid_data.total_workload(), false);
    bench_build(c, &covid_data.total_workload(), true);
    bench_build(c, &sp500::generate(0).workload(), true);
    let liquor_workload = liquor::generate(0).workload();
    bench_build(c, &liquor_workload, true);
    bench_build_threads(c, &liquor_workload);
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = benches
}
criterion_main!(group);
