//! Figure 10: distance percent of TSExplain vs the three shape baselines
//! across SNR levels, with the oracle K (§7.3).
//!
//! `--datasets N` (default 20 per SNR) trades fidelity for speed.

use tsexplain::{Optimizations, Segmentation};
use tsexplain_bench::{arg_usize, baseline_cuts, explain_with, BASELINES};
use tsexplain_datagen::synthetic::{SyntheticConfig, SyntheticDataset};
use tsexplain_eval::distance_percent;

fn main() {
    let n_datasets = arg_usize("--datasets", 20);
    let window = arg_usize("--window", 10);
    let snrs = [20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0];

    println!("Figure 10 — distance percent (%) vs SNR ({n_datasets} datasets/SNR, oracle K)");
    println!(
        "{:<8}{:<12}{:<12}{:<12}{:<12}",
        "SNR", "TSExplain", "Bottom-Up", "FLUSS", "NNSegment"
    );

    for &snr in &snrs {
        let mut totals = [0.0f64; 4];
        for seed in 0..n_datasets as u64 {
            let dataset = SyntheticDataset::generate(SyntheticConfig {
                snr_db: Some(snr),
                seed,
                ..SyntheticConfig::default()
            });
            let n = dataset.config.n_points;
            let k = dataset.ground_truth_k();
            let gt = &dataset.ground_truth_cuts;
            let aggregate = dataset.aggregate();

            let workload = dataset.workload();
            let ours = explain_with(&workload, Optimizations::none(), Some(k), 1);
            totals[0] += distance_percent(&ours.segmentation, gt);

            for (i, name) in BASELINES.iter().enumerate() {
                let cuts = baseline_cuts(name, &aggregate, k, window);
                let scheme = Segmentation::new(n, cuts).expect("valid baseline cuts");
                totals[i + 1] += distance_percent(&scheme, gt);
            }
        }
        print!("{:<8}", snr);
        for t in totals {
            print!("{:<12.3}", t / n_datasets as f64);
        }
        println!();
    }
    println!("\n(lower is better; the paper reports TSExplain best at every SNR,");
    println!(" near 0 for SNR > 35, with Bottom-Up the closest baseline)");
}
