//! Figure 18: the time-varying-attribute case study — weekly Covid deaths
//! by age-group × vaccination status (weeks 14..52 of 2021). The top
//! contributor flips from `vaccinated=NO` to `age-group=50+` around
//! week 31.

use tsexplain::{Optimizations, TsExplain, TsExplainConfig};
use tsexplain_datagen::covid_deaths;

fn main() {
    let data = covid_deaths::generate(0);
    let workload = data.workload();

    // Fig. 18 plots a single contributor per segment → m = 1.
    let engine = TsExplain::new(
        TsExplainConfig::new(workload.explain_by.clone())
            .with_optimizations(Optimizations::none())
            .with_top_m(1),
    );
    let result = engine
        .explain(&workload.relation, &workload.query)
        .expect("explainable");

    println!(
        "Figure 18 — weekly total deaths by age-group × vaccinated (n = {}, ε = {})",
        result.stats.n_points, result.stats.epsilon
    );
    println!("TSExplain chose K = {}", result.chosen_k);
    for seg in &result.segments {
        let top = seg
            .explanations
            .first()
            .map(|e| format!("{} ({})", e.label, e.effect))
            .unwrap_or_else(|| "-".into());
        println!("  week {} ~ {}: {}", seg.start_time, seg.end_time, top);
    }

    // The two-segment reading of the paper.
    let engine = TsExplain::new(
        TsExplainConfig::new(workload.explain_by.clone())
            .with_optimizations(Optimizations::none())
            .with_top_m(1)
            .with_fixed_k(2),
    );
    let result = engine
        .explain(&workload.relation, &workload.query)
        .expect("explainable");
    println!("\nwith K = 2 (the paper's figure):");
    for seg in &result.segments {
        let top = seg
            .explanations
            .first()
            .map(|e| format!("{} ({})", e.label, e.effect))
            .unwrap_or_else(|| "-".into());
        println!("  week {} ~ {}: {}", seg.start_time, seg.end_time, top);
    }
    println!("\n(paper: vaccinated=NO before ~week 31, age-group=50+ afterwards)");
}
