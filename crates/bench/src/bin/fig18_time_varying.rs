//! Figure 18: the time-varying-attribute case study — weekly Covid deaths
//! by age-group × vaccination status (weeks 14..52 of 2021). The top
//! contributor flips from `vaccinated=NO` to `age-group=50+` around
//! week 31.

use tsexplain::{ExplainRequest, ExplainSession, Optimizations};
use tsexplain_datagen::covid_deaths;

fn main() {
    let data = covid_deaths::generate(0);
    let workload = data.workload();

    // One session serves both readings of the figure from one cube.
    let mut session = ExplainSession::new(workload.relation.clone(), workload.query.clone())
        .expect("workload registers");

    // Fig. 18 plots a single contributor per segment → m = 1.
    let base = ExplainRequest::new(workload.explain_by.clone())
        .with_optimizations(Optimizations::none())
        .with_top_m(1);
    let result = session.explain(&base).expect("explainable");

    println!(
        "Figure 18 — weekly total deaths by age-group × vaccinated (n = {}, ε = {})",
        result.stats.n_points, result.stats.epsilon
    );
    println!("TSExplain chose K = {}", result.chosen_k);
    for seg in &result.segments {
        let top = seg
            .explanations
            .first()
            .map(|e| format!("{} ({})", e.label, e.effect))
            .unwrap_or_else(|| "-".into());
        println!("  week {} ~ {}: {}", seg.start_time, seg.end_time, top);
    }

    // The two-segment reading of the paper (served from the cached cube).
    let result = session.explain(&base.with_fixed_k(2)).expect("explainable");
    assert!(
        result.stats.cube_from_cache,
        "second request reuses the cube"
    );
    println!("\nwith K = 2 (the paper's figure):");
    for seg in &result.segments {
        let top = seg
            .explanations
            .first()
            .map(|e| format!("{} ({})", e.label, e.effect))
            .unwrap_or_else(|| "-".into());
        println!("  week {} ~ {}: {}", seg.start_time, seg.end_time, top);
    }
    println!("\n(paper: vaccinated=NO before ~week 31, age-group=50+ afterwards)");
}
