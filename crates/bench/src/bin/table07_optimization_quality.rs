//! Table 7: result quality of the optimization bundles — the segmentation
//! objective `Σ |P_i| var(P_i)` of Vanilla vs O1+O2 on the real-world
//! workloads (the paper reports < 1% drift on Covid, exact equality on
//! S&P 500 and Liquor).

use tsexplain::Optimizations;
use tsexplain_bench::explain_with;
use tsexplain_datagen::{covid, liquor, sp500, Workload};

fn run(workload: &Workload, smoothing: usize) {
    // Compare at the same K: let the optimized pipeline choose, then pin.
    let optimized = explain_with(workload, Optimizations::all(), None, smoothing);
    let k = optimized.chosen_k;
    let vanilla = explain_with(workload, Optimizations::none(), Some(k), smoothing);
    let optimized = explain_with(workload, Optimizations::all(), Some(k), smoothing);
    let drift = (optimized.total_variance - vanilla.total_variance).abs()
        / vanilla.total_variance.max(1e-12);
    println!(
        "{:<28}{:>6}{:>18.4}{:>18.4}{:>10.3}%",
        workload.name,
        k,
        vanilla.total_variance,
        optimized.total_variance,
        100.0 * drift
    );
}

fn main() {
    println!("Table 7 — quality of optimization strategies (same K)");
    println!(
        "{:<28}{:>6}{:>18}{:>18}{:>11}",
        "dataset", "K", "Var(Vanilla)", "Var(O1+O2)", "drift"
    );
    let covid_data = covid::generate(0);
    run(&covid_data.total_workload(), 1);
    run(&covid_data.daily_workload(), 7);
    run(&sp500::generate(0).workload(), 1);
    run(&liquor::generate(0).workload(), 1);
    println!("\n(paper: 22.602→22.744 and 91.619→91.994 on Covid; identical on S&P/Liquor)");
}
