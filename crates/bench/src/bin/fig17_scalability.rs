//! Figure 17: scalability — VanillaTSExplain vs fully-optimized TSExplain
//! on synthetic series of length 100..6400 (5 series per length, average
//! latency). Vanilla stops once a run exceeds the 100 s cutoff, exactly as
//! in the paper.
//!
//! `--max-n N` (default 6400) and `--reps R` (default 5) control cost.

use std::time::{Duration, Instant};

use tsexplain::Optimizations;
use tsexplain_bench::{arg_usize, explain_with};
use tsexplain_datagen::synthetic::{SyntheticConfig, SyntheticDataset};

const CUTOFF: Duration = Duration::from_secs(100);

fn main() {
    let max_n = arg_usize("--max-n", 6400);
    let reps = arg_usize("--reps", 5);
    let lengths: Vec<usize> = [100usize, 200, 400, 800, 1600, 3200, 6400]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();

    println!("Figure 17 — latency vs series length ({reps} series per length, 100 s cutoff)");
    println!(
        "{:<10}{:>20}{:>20}",
        "length", "VanillaTSExplain", "TSExplain"
    );

    let mut vanilla_alive = true;
    for &n in &lengths {
        let datasets: Vec<SyntheticDataset> = (0..reps as u64)
            .map(|seed| {
                SyntheticDataset::generate(SyntheticConfig {
                    n_points: n,
                    snr_db: Some(35.0),
                    seed,
                    max_cuts_per_category: 4,
                    min_segment_len: (n / 20).max(6),
                    ..SyntheticConfig::default()
                })
            })
            .collect();

        let mut optimized_total = Duration::ZERO;
        for dataset in &datasets {
            let workload = dataset.workload();
            let start = Instant::now();
            let _ = explain_with(&workload, Optimizations::all(), None, 1);
            optimized_total += start.elapsed();
        }
        let optimized_avg = optimized_total / reps as u32;

        let vanilla_cell = if vanilla_alive {
            let mut total = Duration::ZERO;
            for dataset in &datasets {
                let workload = dataset.workload();
                let start = Instant::now();
                let _ = explain_with(&workload, Optimizations::none(), None, 1);
                let elapsed = start.elapsed();
                total += elapsed;
                if elapsed > CUTOFF {
                    vanilla_alive = false;
                    break;
                }
            }
            if vanilla_alive {
                format!("{:>.3}s", (total / reps as u32).as_secs_f64())
            } else {
                "> 100s (stopped)".to_string()
            }
        } else {
            "(stopped)".to_string()
        };

        println!(
            "{:<10}{:>20}{:>20}",
            n,
            vanilla_cell,
            format!("{:.3}s", optimized_avg.as_secs_f64())
        );
    }
    println!("\n(paper: vanilla grows super-quadratically and is stopped past 100 s;");
    println!(" optimized TSExplain explains n = 3200 in under a second on the authors' M1)");
}
