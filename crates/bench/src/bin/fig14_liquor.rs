//! Figure 14 + Table 5: the Liquor case study — the pandemic
//! drinking-behaviour shift explained through BV/P/CN/VN, where top
//! explanations include order-2 conjunctions.

use tsexplain::Segmentation;
use tsexplain_bench::{
    baseline_cuts, explain_default, explain_fixed_segmentation, print_segment_table, segment_rows,
    BASELINES,
};
use tsexplain_datagen::liquor;

fn main() {
    let data = liquor::generate(0);
    let workload = data.workload();
    let result = explain_default(&workload, 1);

    println!(
        "Figure 14 / Table 5 — Liquor (n = {}, ε = {}, filtered ε = {})",
        result.stats.n_points, result.stats.epsilon, result.stats.filtered_epsilon
    );
    println!(
        "TSExplain chose K = {} (paper: 7); latency {}",
        result.chosen_k, result.latency
    );
    print_segment_table(
        "TSExplain segmentation (paper Table 5 format):",
        &segment_rows(&result),
        3,
    );

    let conjunctions: Vec<String> = result
        .segments
        .iter()
        .flat_map(|s| s.explanations.iter())
        .filter(|e| e.label.contains('&'))
        .map(|e| e.label.clone())
        .collect();
    println!(
        "\norder-2+ conjunction explanations surfaced: {}",
        if conjunctions.is_empty() {
            "(none)".into()
        } else {
            conjunctions.join(", ")
        }
    );
    let mentions_vn_cn = result
        .segments
        .iter()
        .flat_map(|s| s.explanations.iter())
        .any(|e| e.label.contains("CN=") || e.label.contains("VN="));
    println!(
        "CN/VN in top explanations: {} (paper: only BV and P surface — the engine \
         identifies the interesting attributes)",
        if mentions_vn_cn { "yes" } else { "no" }
    );

    let aggregate = &result.aggregate;
    let n = aggregate.len();
    for name in BASELINES {
        let cuts = baseline_cuts(name, aggregate, result.chosen_k, 10);
        let dates: Vec<String> = cuts
            .iter()
            .map(|&c| result.timestamps[c].to_string())
            .collect();
        println!("\n{name} cuts: {dates:?}");
        let scheme = Segmentation::new(n, cuts).expect("valid cuts");
        let (rows, _) = explain_fixed_segmentation(&workload, &scheme, 3);
        print_segment_table(&format!("{name} segmentation + CA explanations:"), &rows, 3);
    }
}
