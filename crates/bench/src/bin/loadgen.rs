//! `loadgen`: a concurrent load generator for the tsx-server HTTP
//! subsystem.
//!
//! Boots a server in-process (or targets `--addr` of an already-running
//! one), registers one shared dataset plus one per-client tenant, then
//! fires a mixed explain/append workload from N concurrent clients over
//! keep-alive connections and reports throughput, per-operation latency
//! percentiles, and the server's eviction/cache counters.
//!
//! `--segmenter` selects the segmentation strategy the explain mix runs
//! (`dp`, `bottom_up`, `fluss`, `nnsegment`), or `all` to rotate through
//! every strategy; explain latencies are reported *per strategy*
//! (p50/p90/p99/p99.9), so the bench trajectory can track baseline-vs-DP
//! serving cost side by side. Percentiles come from the same log-bucketed
//! `tsexplain-obs` histogram the server scrapes at `/metrics`, so client-
//! and server-side numbers are directly comparable (and the per-strategy
//! rows are mergers of the per-operation histograms — the same merge the
//! server uses to aggregate worker shards).
//!
//! `--threads` sets the in-process server's intra-query parallelism
//! default (0 = machine default): with the determinism contract, the
//! per-strategy latency percentiles at different `--threads` settings are
//! directly comparable — same answers, different wall-clock.
//!
//! `--data-dir` boots the in-process server on the durable storage
//! engine (WAL + demotion tier), so the summary's demotion/rehydration
//! counters — and the `store` metrics block — exercise the same code
//! path a persistent deployment runs.
//!
//! `--overload` switches to the admission-control drill: every client
//! hammers the shared tenant as fast as it can against a deliberately
//! tight server (queue depth defaults to 2 in this mode; tune with
//! `--queue-depth`/`--max-conns`/`--tenant-rps`, which also apply to the
//! normal mode's in-process server). 429s are counted as outcomes, not
//! failures; the run then asserts the server shed load (`tsx_shed_total`
//! and/or throttles > 0) *and* recovered to 2xx — exiting nonzero
//! otherwise, which is what the CI overload smoke step leans on.
//!
//! `--stall-ms MS` (drill mode) mixes two robustness shapes into the
//! flood: *slow readers* that send a request and then refuse to read the
//! response for MS before hanging up, and *over-budget* requests carrying
//! `"timeout_ms": 0`, which the server must answer `504
//! deadline_exceeded` without wedging a worker. The run then additionally
//! asserts deadline 504s were produced and the pool stayed live.
//! `--retry N` gives every drill client a [`RetryPolicy`] of N retries
//! (capped backoff honoring `retry-after`), and the run asserts the
//! retried flood still produced successes.
//!
//! ```text
//! cargo run --release --bin loadgen -- [--clients 8] [--rounds 30]
//!     [--workers 4] [--budget-mb 8] [--points 100] [--addr HOST:PORT]
//!     [--segmenter dp|bottom_up|fluss|nnsegment|all] [--threads N]
//!     [--data-dir PATH] [--overload] [--max-conns N] [--queue-depth N]
//!     [--tenant-rps R] [--stall-ms MS] [--retry N]
//! ```

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use serde::Value;
use tsexplain::{default_window_for, DiffMetric, ExplainRequest, SegmenterSpec};
use tsexplain_datagen::synthetic::{SyntheticConfig, SyntheticDataset};
use tsexplain_obs::{Histogram, HistogramFamily, HistogramSnapshot};
use tsexplain_server::{Client, ClientError, RetryPolicy, Server, ServerConfig, ServerHandle};

struct Args {
    clients: usize,
    rounds: usize,
    workers: usize,
    budget_mb: usize,
    points: usize,
    addr: Option<String>,
    segmenter: String,
    threads: Option<usize>,
    data_dir: Option<String>,
    overload: bool,
    max_conns: Option<usize>,
    queue_depth: Option<usize>,
    tenant_rps: Option<f64>,
    stall_ms: Option<u64>,
    retry: Option<u32>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            clients: 8,
            rounds: 30,
            workers: 4,
            budget_mb: 8,
            points: 100,
            addr: None,
            segmenter: "dp".into(),
            threads: None,
            data_dir: None,
            overload: false,
            max_conns: None,
            queue_depth: None,
            tenant_rps: None,
            stall_ms: None,
            retry: None,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| panic!("{name} needs a positive integer"))
        };
        match flag.as_str() {
            "--clients" => args.clients = take("--clients").max(1),
            "--rounds" => args.rounds = take("--rounds").max(1),
            "--workers" => args.workers = take("--workers").max(1),
            "--budget-mb" => args.budget_mb = take("--budget-mb"), // 0 = evict always
            "--points" => args.points = take("--points").max(20),
            "--addr" => args.addr = Some(it.next().expect("--addr needs HOST:PORT")),
            "--segmenter" => args.segmenter = it.next().expect("--segmenter needs a strategy name"),
            "--threads" => args.threads = Some(take("--threads")),
            "--data-dir" => args.data_dir = Some(it.next().expect("--data-dir needs a path")),
            "--overload" => args.overload = true,
            "--max-conns" => args.max_conns = Some(take("--max-conns").max(1)),
            "--queue-depth" => args.queue_depth = Some(take("--queue-depth").max(1)),
            "--tenant-rps" => {
                args.tenant_rps = Some(
                    it.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|r| *r >= 0.0 && r.is_finite())
                        .expect("--tenant-rps needs a non-negative rate"),
                )
            }
            "--stall-ms" => args.stall_ms = Some(take("--stall-ms") as u64),
            "--retry" => args.retry = Some(take("--retry") as u32),
            other => panic!("unknown flag {other:?} (see the module docs)"),
        }
    }
    args
}

/// The strategy rotation the explain mix cycles through. The window is
/// sized for the *sliced* horizon, since the mix includes a half-range
/// windowed request.
fn strategy_mix(name: &str, points: usize) -> Vec<SegmenterSpec> {
    let window = default_window_for(points / 2);
    match name {
        "dp" => vec![SegmenterSpec::Dp],
        "bottom_up" => vec![SegmenterSpec::BottomUp],
        "fluss" => vec![SegmenterSpec::fluss(window)],
        "nnsegment" => vec![SegmenterSpec::nnsegment(window)],
        "all" => SegmenterSpec::all_with_window(window).to_vec(),
        other => panic!(
            "unknown --segmenter {other:?} \
             (expected dp, bottom_up, fluss, nnsegment or all)"
        ),
    }
}

/// The rotating explain mix: differing K, top-m, metric, smoothing and
/// window, so both cube keys and snapshots churn.
fn request(i: usize, points: usize) -> ExplainRequest {
    let base = ExplainRequest::new(["category"]);
    match i % 5 {
        0 => base,
        1 => base.with_fixed_k(3),
        2 => base
            .with_top_m(1)
            .with_diff_metric(DiffMetric::RelativeChange),
        3 => base.with_smoothing(5),
        _ => base.with_time_range(0i64, (points / 2) as i64),
    }
}

fn main() {
    let args = parse_args();
    let strategies = strategy_mix(&args.segmenter, args.points);
    let data = SyntheticDataset::generate(SyntheticConfig {
        n_points: args.points,
        seed: 42,
        ..SyntheticConfig::default()
    });

    // Target: an in-process server unless --addr points elsewhere.
    let mut owned: Option<ServerHandle> = None;
    let addr: SocketAddr = match &args.addr {
        Some(addr) => addr.parse().expect("--addr must be HOST:PORT"),
        None => {
            let mut config = ServerConfig {
                workers: args.workers,
                memory_budget: args.budget_mb * 1024 * 1024,
                threads: args.threads,
                data_dir: args.data_dir.as_ref().map(Into::into),
                ..ServerConfig::default()
            };
            if let Some(n) = args.max_conns {
                config.max_conns = n;
            }
            if let Some(r) = args.tenant_rps {
                config.tenant_rps = r;
            }
            match args.queue_depth {
                Some(n) => config.queue_depth = n,
                // The drill needs a queue the flood can actually fill.
                None if args.overload => config.queue_depth = 2,
                None => {}
            }
            let handle = Server::bind(config).expect("bind an ephemeral port");
            let addr = handle.local_addr();
            owned = Some(handle);
            addr
        }
    };
    println!(
        "loadgen: {} clients x {} rounds against http://{addr} \
         ({} workers, {} MiB budget, {} points, segmenter {}, threads {})",
        args.clients,
        args.rounds,
        args.workers,
        args.budget_mb,
        args.points,
        args.segmenter,
        args.threads
            .map(|t| t.to_string())
            .unwrap_or_else(|| "default".into()),
    );

    // The shared tenant everyone explains.
    let schema = data.schema();
    let query = data.query();
    let rows = data.rows_between(0, args.points);
    let mut setup = Client::new(addr);
    let shared = setup
        .register(&schema, &query, &rows)
        .expect("register the shared dataset")
        .dataset_id;

    if args.overload {
        run_overload(&args, addr, shared);
        drop(setup);
        if let Some(mut handle) = owned.take() {
            handle.shutdown();
        }
        return;
    }

    // Fire. Each client owns one connection, one private tenant, and a
    // deterministic mixed workload rotating through the strategy mix.
    let started = Instant::now();
    let workers: Vec<_> = (0..args.clients)
        .map(|c| {
            let schema = schema.clone();
            let query = query.clone();
            let data = data.clone();
            let strategies = strategies.clone();
            let rounds = args.rounds;
            let points = args.points;
            let threads = args.threads;
            std::thread::spawn(move || -> Vec<(String, Duration)> {
                let mut lat = Vec::with_capacity(rounds * 2 + 2);
                let mut client = Client::new(addr);
                // `--threads` rides on every request so it also reaches an
                // external `--addr` server, not only the in-process one.
                let with_threads = |request: ExplainRequest| match threads {
                    Some(t) => request.with_threads(t),
                    None => request,
                };
                let head = points / 2;
                let t0 = Instant::now();
                let own = client
                    .register(&schema, &query, &data.rows_between(0, head))
                    .expect("register a private tenant")
                    .dataset_id;
                lat.push(("register".to_string(), t0.elapsed()));
                // Stream the remaining history in across the rounds.
                let tail: Vec<usize> = (head..points).collect();
                let chunk = (tail.len() / rounds.min(tail.len()).max(1)).max(1);
                let mut fed = head;
                for round in 0..rounds {
                    let spec = strategies[(c + round) % strategies.len()];
                    let shared_request =
                        with_threads(request(c + round, points).with_segmenter(spec));
                    let t0 = Instant::now();
                    client
                        .explain(shared, &shared_request)
                        .expect("shared explain");
                    lat.push((format!("explain(shared,{})", spec.name()), t0.elapsed()));
                    if fed < points {
                        let hi = (fed + chunk).min(points);
                        let t0 = Instant::now();
                        client
                            .append_rows(own, &data.rows_between(fed, hi))
                            .expect("append");
                        lat.push(("append(own)".to_string(), t0.elapsed()));
                        fed = hi;
                    }
                    let own_spec = strategies[round % strategies.len()];
                    let own_request = with_threads(request(round, points).with_segmenter(own_spec));
                    let t0 = Instant::now();
                    client.explain(own, &own_request).expect("own explain");
                    lat.push((format!("explain(own,{})", own_spec.name()), t0.elapsed()));
                }
                lat
            })
        })
        .collect();

    let mut all: Vec<(String, Duration)> = Vec::new();
    for worker in workers {
        all.extend(worker.join().expect("client thread panicked"));
    }
    let wall = started.elapsed();

    // Report: throughput + per-op (and per-strategy) latency percentiles,
    // from the shared obs histogram rather than a hand-rolled sort — the
    // same estimator the server's `/metrics` exposition uses.
    let total = all.len();
    println!(
        "\n{} requests in {:.2?} -> {:.0} req/s over {} concurrent clients\n",
        total,
        wall,
        total as f64 / wall.as_secs_f64(),
        args.clients
    );
    let per_op = HistogramFamily::new();
    for (op, d) in &all {
        per_op.record(op, *d);
    }
    println!(
        "{:<26} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "operation", "count", "p50", "p90", "p99", "p99.9", "max"
    );
    let snapshots = per_op.snapshot_all();
    for (op, snap) in &snapshots {
        print_row(op, snap);
    }

    // Per-strategy rollup: every explain op naming this strategy —
    // shared-tenant and private-tenant alike — merged into one histogram
    // (exercising the same associative merge the proptests pin down).
    let strategy_names: Vec<&str> = strategies.iter().map(|s| s.name()).collect();
    if snapshots.iter().filter(|(op, _)| op.contains(',')).count() > 1 {
        println!(
            "\n{:<26} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "strategy (merged)", "count", "p50", "p90", "p99", "p99.9", "max"
        );
        for name in strategy_names {
            let merged = Histogram::new();
            for (op, _) in &snapshots {
                if op.ends_with(&format!(",{name})")) {
                    merged.merge_from(&per_op.get(op));
                }
            }
            let snap = merged.snapshot();
            if snap.count > 0 {
                print_row(name, &snap);
            }
        }
    }

    // Server-side counters: cache pressure and eviction activity.
    let metrics = setup.metrics().expect("metrics");
    let registry = metrics.get("registry").cloned().unwrap_or(Value::Null);
    let totals = registry.get("totals").cloned().unwrap_or(Value::Null);
    let read = |v: &Value, k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(0.0);
    println!(
        "\nserver: datasets={} cached_cubes={} cache={:.1} MiB / budget={:.1} MiB",
        read(&registry, "datasets"),
        read(&registry, "cached_cubes"),
        read(&registry, "cache_bytes") / (1024.0 * 1024.0),
        read(&registry, "memory_budget") / (1024.0 * 1024.0),
    );
    println!(
        "        requests={} cubes_built={} cache_hits={} refreshes={} \
         evictions={} demotions={} rehydrations={}",
        read(&totals, "requests"),
        read(&totals, "cubes_built"),
        read(&totals, "cube_cache_hits"),
        read(&totals, "cube_refreshes"),
        read(&totals, "cube_evictions"),
        read(&totals, "cube_demotions"),
        read(&totals, "cube_rehydrations"),
    );
    let store = metrics.get("store").cloned().unwrap_or(Value::Null);
    if !matches!(store, Value::Null) {
        println!(
            "store:  wal_appends={} wal_bytes={} snapshots={} recoveries={} \
             demotions={} rehydrations={}",
            read(&store, "wal_appends"),
            read(&store, "wal_bytes"),
            read(&store, "snapshots"),
            read(&store, "recoveries"),
            read(&store, "demotions"),
            read(&store, "rehydrations"),
        );
    }

    drop(setup);
    if let Some(mut handle) = owned.take() {
        handle.shutdown();
    }
}

/// A slow reader: sends one well-formed explain request and then refuses
/// to read a byte of the response for `stall`, then hangs up without
/// ever reading it. The server's bounded write path must absorb this —
/// the worker finishes (or times out) the write and moves on; the
/// connection is the client's loss alone.
fn stall_reader(addr: SocketAddr, shared: u64, points: usize, stall: Duration) {
    use serde::Serialize;
    use std::io::Write;
    let Ok(mut stream) = std::net::TcpStream::connect(addr) else {
        return; // connection shed at accept — also a valid drill outcome
    };
    let body =
        serde_json::to_string(&request(0, points).serialize()).expect("explain requests encode");
    let head = format!(
        "POST /datasets/{shared}/explain HTTP/1.1\r\nhost: tsx\r\n\
         content-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    std::thread::sleep(stall);
    // Dropped unread: the response rots in the socket buffer.
}

/// The admission-control drill: every client fires explains at the
/// shared tenant as fast as it can, counting 429s as outcomes instead of
/// failures; afterwards the run verifies the server both *shed* (bounded
/// behavior under overload) and *recovered* (2xx once the flood passed),
/// exiting nonzero otherwise.
///
/// With `--stall-ms` the flood also interleaves slow readers and
/// over-budget (`timeout_ms: 0`) requests; deadline 504s are counted as
/// their own outcome and asserted to have happened. With `--retry` every
/// client retries per [`RetryPolicy`], and the run asserts the retried
/// flood still got answers.
fn run_overload(args: &Args, addr: SocketAddr, shared: u64) {
    let points = args.points;
    let stall = args.stall_ms.map(Duration::from_millis);
    let retry = args.retry;
    let started = Instant::now();
    let workers: Vec<_> = (0..args.clients)
        .map(|c| {
            let rounds = args.rounds;
            std::thread::spawn(move || -> (u64, u64, u64, u64, u64) {
                let (mut ok, mut shed, mut throttled, mut deadlined, mut failed) =
                    (0u64, 0u64, 0u64, 0u64, 0u64);
                let mut client = Client::new(addr);
                if let Some(n) = retry {
                    client = client.with_retry(RetryPolicy::retries(n));
                }
                for round in 0..rounds {
                    // With the stall drill on, every 5th slot is a slow
                    // reader and every 7th an over-budget request; the
                    // rest stay plain floods.
                    if let Some(stall) = stall {
                        if round % 5 == 3 {
                            stall_reader(addr, shared, points, stall);
                            continue;
                        }
                    }
                    let over_budget = stall.is_some() && round % 7 == 5;
                    let request = if over_budget {
                        // Zero budget: deterministically over-deadline at
                        // the pipeline's entry poll.
                        request(c + round, points).with_timeout_ms(0)
                    } else {
                        request(c + round, points)
                    };
                    match client.explain_value(shared, &request) {
                        Ok(_) => ok += 1,
                        Err(ClientError::Api(e)) if e.status == 429 && e.kind == "throttled" => {
                            throttled += 1;
                        }
                        Err(ClientError::Api(e)) if e.status == 429 => shed += 1,
                        Err(ClientError::Api(e))
                            if e.status == 504 && e.kind == "deadline_exceeded" =>
                        {
                            deadlined += 1;
                        }
                        Err(_) => failed += 1,
                    }
                }
                (ok, shed, throttled, deadlined, failed)
            })
        })
        .collect();
    let (mut ok, mut shed, mut throttled, mut deadlined, mut failed) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for worker in workers {
        let (o, s, t, d, f) = worker.join().expect("client thread panicked");
        ok += o;
        shed += s;
        throttled += t;
        deadlined += d;
        failed += f;
    }
    let wall = started.elapsed();
    println!(
        "\noverload: {ok} answered, {shed} shed (429 overloaded), \
         {throttled} throttled (429 per-tenant), deadlined={deadlined} \
         (504 deadline_exceeded), {failed} transport errors in {wall:.2?}"
    );

    // Recovery: the server must answer 2xx again once the flood stops.
    let mut client = Client::new(addr);
    let deadline = Instant::now() + Duration::from_secs(10);
    let recovered_in = loop {
        match client.raw("GET", "/healthz", None, &[]) {
            Ok(response) if response.status == 200 => break Some(started.elapsed()),
            _ if Instant::now() > deadline => break None,
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    let exposition = client.metrics_prometheus().expect("scrape the exposition");
    let scrape = |name: &str| {
        exposition
            .lines()
            .find_map(|line| line.strip_prefix(name))
            .and_then(|v| v.trim().parse::<f64>().ok())
            .unwrap_or(0.0)
    };
    let shed_total = scrape("tsx_shed_total ");
    let throttled_total = scrape("tsx_throttled_total ");
    let deadline_total = scrape("tsx_deadline_exceeded_total ");
    let metrics = client.metrics().expect("metrics");
    let admission = metrics
        .get("server")
        .and_then(|s| s.get("admission"))
        .cloned()
        .unwrap_or(Value::Null);
    let read = |k: &str| admission.get(k).and_then(Value::as_f64).unwrap_or(0.0);
    println!(
        "server: tsx_shed_total={shed_total} tsx_throttled_total={throttled_total} \
         tsx_deadline_exceeded_total={deadline_total} \
         queue_depth={}/{} open_connections={} idle_reaped={}",
        read("queue_depth"),
        read("queue_capacity"),
        read("open_connections"),
        read("idle_reaped"),
    );
    match recovered_in {
        Some(at) => println!("recovered: /healthz answered 200 at {at:.2?}"),
        None => println!("recovery FAILED: /healthz never answered 200"),
    }
    assert!(
        recovered_in.is_some(),
        "the server must answer 2xx after the flood"
    );
    // With retries on, clients absorb 429s and resend until answered —
    // the server-side shed/throttle counters still prove admission
    // control engaged even when no 429 survives to the client tally.
    assert!(
        shed_total + throttled_total > 0.0,
        "the overload run produced no sheds or throttles — \
         raise --clients or lower --queue-depth"
    );
    if args.retry.is_none() {
        assert!(
            shed + throttled > 0,
            "no client observed a 429 — raise --clients or lower --queue-depth"
        );
    } else {
        assert!(
            ok > 0,
            "retrying clients never succeeded — the pool did not stay live"
        );
    }
    if args.stall_ms.is_some() {
        assert!(
            deadlined > 0 && deadline_total > 0.0,
            "the stall drill produced no deadline 504s — \
             the over-budget requests were not answered honestly"
        );
    }
}

fn print_row(label: &str, snap: &HistogramSnapshot) {
    println!(
        "{:<26} {:>7} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?}",
        label,
        snap.count,
        snap.p50(),
        snap.p90(),
        snap.p99(),
        snap.p999(),
        snap.max(),
    );
}
