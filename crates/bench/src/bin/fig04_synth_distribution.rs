//! Figure 4: distribution of the ground-truth segment count K and segment
//! lengths across the synthetic corpus.

use tsexplain_datagen::synthetic::paper_corpus;

fn main() {
    let corpus = paper_corpus();
    println!("Figure 4 — synthetic corpus ({} datasets)", corpus.len());

    let mut k_hist = std::collections::BTreeMap::<usize, usize>::new();
    let mut len_hist = std::collections::BTreeMap::<usize, usize>::new();
    for dataset in &corpus {
        *k_hist.entry(dataset.ground_truth_k()).or_default() += 1;
        let mut bounds = vec![0usize];
        bounds.extend(&dataset.ground_truth_cuts);
        bounds.push(dataset.config.n_points - 1);
        for w in bounds.windows(2) {
            // Bucket lengths by 10 as in the paper's histogram.
            *len_hist.entry((w[1] - w[0]) / 10 * 10).or_default() += 1;
        }
    }

    println!("\nSegment number K   frequency (unique base datasets share K across SNRs)");
    for (k, count) in &k_hist {
        println!(
            "  K = {k:>2}          {:>4}  {}",
            count,
            "#".repeat(count / 7)
        );
    }

    println!("\nSegment length     frequency");
    for (bucket, count) in &len_hist {
        println!(
            "  {:>3}..{:<3}        {:>4}  {}",
            bucket,
            bucket + 9,
            count,
            "#".repeat(count / 20)
        );
    }

    let (k_min, k_max) = (k_hist.keys().min().unwrap(), k_hist.keys().max().unwrap());
    let lens: Vec<usize> = corpus
        .iter()
        .flat_map(|d| {
            let mut b = vec![0usize];
            b.extend(&d.ground_truth_cuts);
            b.push(d.config.n_points - 1);
            b.windows(2).map(|w| w[1] - w[0]).collect::<Vec<_>>()
        })
        .collect();
    println!(
        "\nsummary: K in {k_min}..{k_max} (paper: 2..10), segment length in {}..{} (paper: 6..84)",
        lens.iter().min().unwrap(),
        lens.iter().max().unwrap()
    );
}
