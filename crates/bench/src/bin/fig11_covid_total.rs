//! Figures 2 + 11: the Covid total-confirmed-cases case study — TSExplain's
//! segmentation with top-3 explanations, and the three baselines' cuts
//! (given TSExplain's K) for comparison.

use tsexplain::Segmentation;
use tsexplain_bench::{
    baseline_cuts, explain_default, explain_fixed_segmentation, print_segment_table, segment_rows,
    BASELINES,
};
use tsexplain_datagen::covid;

fn main() {
    let data = covid::generate(0);
    let workload = data.total_workload();
    let result = explain_default(&workload, 1);

    println!(
        "Figure 11 — Covid total-confirmed-cases (n = {}, ε = {}, filtered ε = {})",
        result.stats.n_points, result.stats.epsilon, result.stats.filtered_epsilon
    );
    println!(
        "TSExplain chose K = {} (paper: 6); latency {}",
        result.chosen_k, result.latency
    );
    println!(
        "TSExplain cuts (dates): {:?}",
        result
            .cut_times()
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
    );
    print_segment_table("TSExplain segmentation:", &segment_rows(&result), 3);

    // Baselines with the same K (§7.4 protocol).
    let aggregate = &result.aggregate;
    let n = aggregate.len();
    for name in BASELINES {
        let cuts = baseline_cuts(name, aggregate, result.chosen_k, 15);
        let dates: Vec<String> = cuts
            .iter()
            .map(|&c| result.timestamps[c].to_string())
            .collect();
        println!("\n{name} cuts: {dates:?}");
        let scheme = Segmentation::new(n, cuts).expect("valid cuts");
        let (rows, _) = explain_fixed_segmentation(&workload, &scheme, 3);
        print_segment_table(&format!("{name} segmentation + CA explanations:"), &rows, 3);
    }
}
