//! Figure 15: per-module latency breakdown of TSExplain under the five
//! optimization bundles (Vanilla / w filter / O1 / O2 / O1+O2) on the four
//! real-world workloads. K is unspecified — elbow selection is included in
//! the timing, as in the paper.

use tsexplain::Optimizations;
use tsexplain_bench::{explain_with, fmt_ms};
use tsexplain_datagen::{covid, liquor, sp500, Workload};

fn bundles() -> [(&'static str, Optimizations); 5] {
    [
        ("Vanilla", Optimizations::none()),
        ("w filter", Optimizations::filter_only()),
        ("O1", Optimizations::o1()),
        ("O2", Optimizations::o2()),
        ("O1+O2", Optimizations::all()),
    ]
}

fn run(workload: &Workload, smoothing: usize) {
    println!("\n--- {} ---", workload.name);
    println!(
        "{:<10}{:>14}{:>14}{:>14}{:>14}{:>10}",
        "variant", "precompute", "cascading", "segmentation", "total", "K"
    );
    for (name, optimizations) in bundles() {
        let result = explain_with(workload, optimizations, None, smoothing);
        println!(
            "{:<10}{:>14}{:>14}{:>14}{:>14}{:>10}",
            name,
            fmt_ms(result.latency.precompute),
            fmt_ms(result.latency.cascading),
            fmt_ms(result.latency.segmentation),
            fmt_ms(result.latency.total()),
            result.chosen_k
        );
    }
}

fn main() {
    println!("Figure 15 — latency breakdown across optimization bundles");
    let covid_data = covid::generate(0);
    run(&covid_data.total_workload(), 1);
    run(&covid_data.daily_workload(), 7);
    run(&sp500::generate(0).workload(), 1);
    run(&liquor::generate(0).workload(), 1);
    println!("\n(paper reference totals: total-confirmed 175ms→33ms, daily 217ms→43ms,");
    println!(" S&P 500 →102ms, Liquor 9888ms→756ms; absolute numbers differ by machine,");
    println!(" the shape — which optimization helps which dataset — should match)");
}
