//! Figure 6: effectiveness of the eight within-segment variance designs.
//!
//! Protocol (§4.2.2): per dataset and metric, rank the ground-truth
//! segmentation's objective among `--samples` random schemes of the same
//! K; then rank the eight metrics against each other per dataset; report
//! each metric's average rank per SNR level. Lower rank = better metric;
//! the paper finds `tse` best at every SNR.
//!
//! `--datasets N` (default 20 per SNR) and `--samples N` (default 10000)
//! trade fidelity for speed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsexplain_bench::arg_usize;
use tsexplain_cube::{CubeConfig, ExplanationCube};
use tsexplain_datagen::synthetic::{SyntheticConfig, SyntheticDataset};
use tsexplain_diff::{DiffMetric, TopExplStrategy};
use tsexplain_eval::{
    average_ranks, ground_truth_rank, random_segmentation, rank_ascending, CachedObjective,
};
use tsexplain_segment::{Segmentation, SegmentationContext, VarianceMetric};

fn main() {
    let n_datasets = arg_usize("--datasets", 20);
    let n_samples = arg_usize("--samples", 10_000);
    let snrs = [20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0];

    println!(
        "Figure 6 — average metric rank vs SNR ({n_datasets} datasets/SNR, {n_samples} samples)"
    );
    print!("{:<8}", "SNR");
    for metric in VarianceMetric::ALL {
        print!("{:<10}", metric.to_string());
    }
    println!();

    for &snr in &snrs {
        let mut per_dataset_ranks: Vec<Vec<f64>> = Vec::new();
        for seed in 0..n_datasets as u64 {
            let dataset = SyntheticDataset::generate(SyntheticConfig {
                snr_db: Some(snr),
                seed,
                ..SyntheticConfig::default()
            });
            let relation = dataset.to_relation();
            let cube =
                ExplanationCube::build(&relation, &dataset.query(), &CubeConfig::new(["category"]))
                    .expect("cube");
            let n = dataset.config.n_points;
            let gt = Segmentation::new(n, dataset.ground_truth_cuts.clone()).expect("valid gt");

            // The same sampled schemes are scored under every metric.
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let samples: Vec<Segmentation> = (0..n_samples)
                .map(|_| random_segmentation(&mut rng, n, gt.k()))
                .collect();

            let gt_ranks: Vec<f64> = VarianceMetric::ALL
                .iter()
                .map(|&metric| {
                    let mut ctx = SegmentationContext::new(
                        &cube,
                        DiffMetric::AbsoluteChange,
                        3,
                        TopExplStrategy::Exact,
                        metric,
                    );
                    let mut objective = CachedObjective::new(&mut ctx);
                    ground_truth_rank(&mut objective, &gt, &samples) as f64
                })
                .collect();
            per_dataset_ranks.push(rank_ascending(&gt_ranks));
        }
        let avg = average_ranks(&per_dataset_ranks);
        print!("{:<8}", snr);
        for a in &avg {
            print!("{:<10.2}", a);
        }
        println!();
    }
    println!("\n(lower is better; the paper reports tse with the best rank at every SNR)");
}
