//! Figure 5: one synthetic dataset at SNR = 35 dB — the per-category
//! series, the aggregate, and the ground-truth cutting points (rendered as
//! a rough ASCII plot).

use tsexplain_datagen::synthetic::{SyntheticConfig, SyntheticDataset};

fn main() {
    let dataset = SyntheticDataset::generate(SyntheticConfig {
        snr_db: Some(35.0),
        seed: 0,
        ..SyntheticConfig::default()
    });
    println!(
        "Figure 5 — synthetic example (SNR = 35 dB, seed 0), n = {}",
        dataset.config.n_points
    );
    for (c, cuts) in dataset.category_cuts.iter().enumerate() {
        println!("  category {} cuts: {:?}", dataset.categories[c], cuts);
    }
    println!(
        "  ground truth (union): {:?}  (K = {})",
        dataset.ground_truth_cuts,
        dataset.ground_truth_k()
    );

    // ASCII sparkline of the aggregate with cut markers.
    let aggregate = dataset.aggregate();
    let max = aggregate.iter().cloned().fold(f64::MIN, f64::max);
    let min = aggregate.iter().cloned().fold(f64::MAX, f64::min);
    let rows = 12usize;
    println!("\naggregate ('|' marks a ground-truth cut):");
    for row in (0..rows).rev() {
        let lo = min + (max - min) * row as f64 / rows as f64;
        let line: String = aggregate
            .iter()
            .enumerate()
            .map(|(t, &v)| {
                if dataset.ground_truth_cuts.contains(&t) {
                    '|'
                } else if v >= lo {
                    '*'
                } else {
                    ' '
                }
            })
            .collect();
        println!("  {line}");
    }
    println!("\nper-category first/last values:");
    for (c, series) in dataset.noisy_series.iter().enumerate() {
        println!(
            "  {}: {:.0} -> {:.0}",
            dataset.categories[c],
            series.first().unwrap(),
            series.last().unwrap()
        );
    }
}
