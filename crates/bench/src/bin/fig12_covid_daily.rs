//! Figure 12 + Table 3: the Covid daily-confirmed-cases case study (a
//! fuzzy series — smoothed with a moving average per §7.4), plus the
//! baselines' cuts under the same K.

use tsexplain::Segmentation;
use tsexplain_bench::{
    baseline_cuts, explain_default, explain_fixed_segmentation, print_segment_table, segment_rows,
    BASELINES,
};
use tsexplain_datagen::covid;

fn main() {
    let data = covid::generate(0);
    let workload = data.daily_workload();
    let result = explain_default(&workload, 7);

    println!(
        "Figure 12 / Table 3 — Covid daily-confirmed-cases (n = {}, ε = {}, filtered ε = {})",
        result.stats.n_points, result.stats.epsilon, result.stats.filtered_epsilon
    );
    println!(
        "TSExplain chose K = {} (paper: 7); latency {}",
        result.chosen_k, result.latency
    );
    println!("K-Variance curve:");
    for (k, v) in result.k_variance_curve.iter().take(12) {
        let marker = if *k == result.chosen_k {
            "  <- elbow"
        } else {
            ""
        };
        println!("  K = {k:>2}: {v:>12.4}{marker}");
    }
    print_segment_table(
        "TSExplain segmentation (paper Table 3 format):",
        &segment_rows(&result),
        3,
    );

    let aggregate = &result.aggregate;
    let n = aggregate.len();
    for name in BASELINES {
        let cuts = baseline_cuts(name, aggregate, result.chosen_k, 15);
        let dates: Vec<String> = cuts
            .iter()
            .map(|&c| result.timestamps[c].to_string())
            .collect();
        println!("\n{name} cuts: {dates:?}");
        let scheme = Segmentation::new(n, cuts).expect("valid cuts");
        let (rows, _) = explain_fixed_segmentation(&workload, &scheme, 3);
        print_segment_table(&format!("{name} segmentation + CA explanations:"), &rows, 3);
    }
}
