//! Figure 13 + Table 4: the S&P 500 case study — crash and rebound
//! explained through the category ⊃ subcategory ⊃ stock hierarchy.

use tsexplain::Segmentation;
use tsexplain_bench::{
    baseline_cuts, explain_default, explain_fixed_segmentation, print_segment_table, segment_rows,
    BASELINES,
};
use tsexplain_datagen::sp500;

fn main() {
    let data = sp500::generate(0);
    let workload = data.workload();
    let result = explain_default(&workload, 1);

    println!(
        "Figure 13 / Table 4 — S&P 500 (n = {}, ε = {}, filtered ε = {})",
        result.stats.n_points, result.stats.epsilon, result.stats.filtered_epsilon
    );
    println!(
        "TSExplain chose K = {} (paper: 4); latency {}",
        result.chosen_k, result.latency
    );
    println!("K-Variance curve:");
    for (k, v) in result.k_variance_curve.iter().take(10) {
        let marker = if *k == result.chosen_k {
            "  <- elbow"
        } else {
            ""
        };
        println!("  K = {k:>2}: {v:>12.4}{marker}");
    }
    print_segment_table(
        "TSExplain segmentation (paper Table 4 format):",
        &segment_rows(&result),
        3,
    );

    let aggregate = &result.aggregate;
    let n = aggregate.len();
    for name in BASELINES {
        let cuts = baseline_cuts(name, aggregate, result.chosen_k, 12);
        let dates: Vec<String> = cuts
            .iter()
            .map(|&c| result.timestamps[c].to_string())
            .collect();
        println!("\n{name} cuts: {dates:?}");
        let scheme = Segmentation::new(n, cuts).expect("valid cuts");
        let (rows, _) = explain_fixed_segmentation(&workload, &scheme, 3);
        print_segment_table(&format!("{name} segmentation + CA explanations:"), &rows, 3);
    }
}
