//! Table 6: real-world dataset statistics — candidate explanations ε,
//! filtered ε (support filter at ratio 0.001), and series length n.

use tsexplain_cube::{CubeConfig, ExplanationCube};
use tsexplain_datagen::{covid, liquor, sp500, Workload};

fn stats_row(workload: &Workload) -> (String, usize, usize, usize) {
    let cube = ExplanationCube::build(
        &workload.relation,
        &workload.query,
        &CubeConfig::new(workload.explain_by.iter().map(String::as_str)).with_filter_ratio(0.001),
    )
    .expect("cube");
    (
        workload.name.clone(),
        cube.n_candidates(),
        cube.n_selectable(),
        cube.n_points(),
    )
}

fn main() {
    println!("Table 6 — real-world dataset statistics");
    println!("{:<28}{:>10}{:>14}{:>8}", "dataset", "ε", "filtered ε", "n");

    let covid_data = covid::generate(0);
    let sp500_data = sp500::generate(0);
    let liquor_data = liquor::generate(0);
    let rows = [
        stats_row(&covid_data.total_workload()),
        stats_row(&covid_data.daily_workload()),
        stats_row(&sp500_data.workload()),
        stats_row(&liquor_data.workload()),
    ];
    for (name, eps, filtered, n) in rows {
        println!("{name:<28}{eps:>10}{filtered:>14}{n:>8}");
    }
    println!("\npaper reference:");
    println!(
        "{:<28}{:>10}{:>14}{:>8}",
        "total-confirmed-cases", 58, 54, 345
    );
    println!(
        "{:<28}{:>10}{:>14}{:>8}",
        "daily-confirmed-cases", 58, 55, 345
    );
    println!("{:<28}{:>10}{:>14}{:>8}", "S&P 500", 610, 329, 151);
    println!("{:<28}{:>10}{:>14}{:>8}", "Liquor", 8197, 1812, 128);
}
